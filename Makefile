# Development entry points. `make verify` is the pre-merge gate.

CARGO ?= cargo

.PHONY: verify fmt clippy build test sweep bench bench-smoke

verify: fmt clippy test sweep

fmt:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

# Tier-1: the whole workspace must build in release and every test pass.
test: build
	$(CARGO) test -q

# Strided crash-point sweep: fault injection at many persistence events,
# recovery verified differentially (see DESIGN.md, "Crash testing").
sweep:
	$(CARGO) test -q --test crash_sweep

bench:
	$(CARGO) bench --workspace

# Scaled-down figure run that must emit a parseable metrics artifact
# (target/metrics/fig10_write_throughput.json) covering every system.
bench-smoke:
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench fig10_write_throughput
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench fig11_read_throughput
	CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) run -q -p cachekv-bench --bin validate_metrics -- \
		$(CURDIR)/target/metrics/fig10_write_throughput.json \
		$(CURDIR)/target/metrics/fig11_read_throughput.json
