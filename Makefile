# Development entry points. `make verify` is the pre-merge gate.

CARGO ?= cargo

.PHONY: verify fmt clippy build test sweep bench bench-smoke serve

verify: fmt clippy test sweep

fmt:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

# Tier-1: the whole workspace must build in release and every test pass.
test: build
	$(CARGO) test -q

# Strided crash-point sweep: fault injection at many persistence events,
# recovery verified differentially (see DESIGN.md, "Crash testing"), plus
# the service-layer ack-contract sweep (tests/server_crash.rs).
sweep:
	$(CARGO) test -q --test crash_sweep
	$(CARGO) test -q --test server_crash

# Sharded CacheKV service over TCP (see DESIGN.md, "Service layer").
# Override with e.g. `make serve ADDR=0.0.0.0:7000 SHARDS=4`.
ADDR ?= 127.0.0.1:4840
SHARDS ?= 2
serve:
	$(CARGO) run --release -p cachekv-server --bin cachekv_serve -- $(ADDR) $(SHARDS)

bench:
	$(CARGO) bench --workspace

# Scaled-down figure run that must emit a parseable metrics artifact
# (target/metrics/fig10_write_throughput.json) covering every system.
bench-smoke:
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench fig10_write_throughput
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench fig11_read_throughput
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench server_loopback
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench fig_scan
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		CACHEKV_AB_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench server_cache
	CACHEKV_OPS=2000 CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		CACHEKV_AB_DIR=$(CURDIR)/target/metrics \
		$(CARGO) bench -p cachekv-bench --bench write_ab
	CACHEKV_METRICS_DIR=$(CURDIR)/target/metrics \
		$(CARGO) run -q -p cachekv-bench --bin validate_metrics -- \
		$(CURDIR)/target/metrics/fig10_write_throughput.json \
		$(CURDIR)/target/metrics/fig11_read_throughput.json \
		$(CURDIR)/target/metrics/server_loopback.json \
		$(CURDIR)/target/metrics/fig_scan.json \
		$(CURDIR)/target/metrics/server_cache.json \
		$(CURDIR)/target/metrics/write_ab.json
