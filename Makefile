# Development entry points. `make verify` is the pre-merge gate.

CARGO ?= cargo

.PHONY: verify fmt clippy build test sweep bench

verify: fmt clippy test sweep

fmt:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release

# Tier-1: the whole workspace must build in release and every test pass.
test: build
	$(CARGO) test -q

# Strided crash-point sweep: fault injection at many persistence events,
# recovery verified differentially (see DESIGN.md, "Crash testing").
sweep:
	$(CARGO) test -q --test crash_sweep

bench:
	$(CARGO) bench --workspace
