//! A persistent-memory B+-tree, the global index SLM-DB keeps in PMem.
//!
//! PMem-friendly design in the spirit of FAST&FAIR/NBTree: leaf entries are
//! *unsorted* (an insert appends one key slot and one value slot instead of
//! shifting), interior nodes are sorted and rewritten only on the rare
//! split. All node bytes live in a [`PmemSpace`], so every access pays
//! simulated PMem cost and every update follows the space's flush
//! discipline.
//!
//! Keys are bounded at [`MAX_KEY`] bytes (workload keys are 16 B); values
//! are fixed 16-byte payloads (SLM-DB stores KV *locations*, not bytes).

use cachekv_lsm::kv::{Error, Result};
use cachekv_lsm::{MemSpace, PmemSpace};

/// Maximum key length storable in a node slot.
pub const MAX_KEY: usize = 24;
/// Fixed value payload size.
pub const VAL: usize = 16;
/// Keys per node.
const FANOUT: usize = 20;
/// Node slot size in the region.
const NODE: u64 = 1024;

const KEY_SLOT: usize = 1 + MAX_KEY; // klen u8 + bytes
const HDR: usize = 8; // [is_leaf u8][count u8][pad u16][next_leaf u32]

/// Offsets within a node.
const KEYS_OFF: usize = HDR;
const PAYLOAD_OFF: usize = HDR + FANOUT * KEY_SLOT;

/// Region header: [magic u32][root u32][next_free u32][pad].
const META_MAGIC: u32 = 0xB7EE_0001;

#[derive(Clone)]
struct Node {
    id: u32,
    is_leaf: bool,
    count: usize,
    next_leaf: u32,
    keys: Vec<Vec<u8>>,      // count entries
    payload: Vec<[u8; VAL]>, // leaf: count values
    children: Vec<u32>,      // interior: count+1 children
}

impl Node {
    fn leaf(id: u32) -> Self {
        Node {
            id,
            is_leaf: true,
            count: 0,
            next_leaf: 0,
            keys: vec![],
            payload: vec![],
            children: vec![],
        }
    }
}

/// The B+-tree handle. Externally synchronized (SLM-DB's global mutex).
pub struct BpTree {
    space: PmemSpace,
    root: u32,
    next_free: u32,
    max_nodes: u32,
    len: usize,
}

impl BpTree {
    /// Create an empty tree in `space`.
    pub fn create(space: PmemSpace) -> Self {
        let max_nodes = (space.capacity() / NODE) as u32;
        assert!(max_nodes >= 4, "B+-tree region too small");
        let t = BpTree {
            space,
            root: 1,
            next_free: 2,
            max_nodes,
            len: 0,
        };
        let root = Node::leaf(1);
        t.write_node(&root);
        t.write_meta();
        t
    }

    fn write_meta(&self) {
        let mut b = [0u8; 16];
        b[0..4].copy_from_slice(&META_MAGIC.to_le_bytes());
        b[4..8].copy_from_slice(&self.root.to_le_bytes());
        b[8..12].copy_from_slice(&self.next_free.to_le_bytes());
        self.space.write(0, &b);
        self.space.persist(0, 16);
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc_node(&mut self) -> Result<u32> {
        if self.next_free >= self.max_nodes {
            return Err(Error::OutOfSpace("B+-tree node region".into()));
        }
        let id = self.next_free;
        self.next_free += 1;
        Ok(id)
    }

    fn read_node(&self, id: u32) -> Node {
        let mut raw = vec![0u8; NODE as usize];
        self.space.read(id as u64 * NODE, &mut raw);
        let is_leaf = raw[0] == 1;
        let count = raw[1] as usize;
        let next_leaf = u32::from_le_bytes(raw[4..8].try_into().unwrap());
        let mut keys = Vec::with_capacity(count);
        for i in 0..count {
            let s = KEYS_OFF + i * KEY_SLOT;
            let klen = raw[s] as usize;
            keys.push(raw[s + 1..s + 1 + klen].to_vec());
        }
        let mut payload = Vec::new();
        let mut children = Vec::new();
        if is_leaf {
            for i in 0..count {
                let s = PAYLOAD_OFF + i * VAL;
                payload.push(raw[s..s + VAL].try_into().unwrap());
            }
        } else {
            for i in 0..=count {
                let s = PAYLOAD_OFF + i * 4;
                children.push(u32::from_le_bytes(raw[s..s + 4].try_into().unwrap()));
            }
        }
        Node {
            id,
            is_leaf,
            count,
            next_leaf,
            keys,
            payload,
            children,
        }
    }

    fn write_node(&self, n: &Node) {
        let mut raw = vec![0u8; NODE as usize];
        raw[0] = n.is_leaf as u8;
        raw[1] = n.count as u8;
        raw[4..8].copy_from_slice(&n.next_leaf.to_le_bytes());
        for (i, k) in n.keys.iter().enumerate() {
            let s = KEYS_OFF + i * KEY_SLOT;
            raw[s] = k.len() as u8;
            raw[s + 1..s + 1 + k.len()].copy_from_slice(k);
        }
        if n.is_leaf {
            for (i, v) in n.payload.iter().enumerate() {
                let s = PAYLOAD_OFF + i * VAL;
                raw[s..s + VAL].copy_from_slice(v);
            }
        } else {
            for (i, c) in n.children.iter().enumerate() {
                let s = PAYLOAD_OFF + i * 4;
                raw[s..s + 4].copy_from_slice(&c.to_le_bytes());
            }
        }
        self.space.write(n.id as u64 * NODE, &raw);
        self.space.persist(n.id as u64 * NODE, NODE as usize);
    }

    /// Targeted in-place leaf append: one key slot, one value slot, header.
    fn append_leaf_slot(&self, n: &Node, key: &[u8], val: &[u8; VAL]) {
        let base = n.id as u64 * NODE;
        let i = n.count;
        let mut kslot = [0u8; KEY_SLOT];
        kslot[0] = key.len() as u8;
        kslot[1..1 + key.len()].copy_from_slice(key);
        self.space
            .write(base + (KEYS_OFF + i * KEY_SLOT) as u64, &kslot);
        self.space
            .persist(base + (KEYS_OFF + i * KEY_SLOT) as u64, KEY_SLOT);
        self.space.write(base + (PAYLOAD_OFF + i * VAL) as u64, val);
        self.space
            .persist(base + (PAYLOAD_OFF + i * VAL) as u64, VAL);
        // Publish by bumping the count last (crash-safe append).
        self.space.write(base + 1, &[(n.count + 1) as u8]);
        self.space.persist(base + 1, 1);
    }

    fn overwrite_leaf_value(&self, n: &Node, slot: usize, val: &[u8; VAL]) {
        let base = n.id as u64 * NODE;
        self.space
            .write(base + (PAYLOAD_OFF + slot * VAL) as u64, val);
        self.space
            .persist(base + (PAYLOAD_OFF + slot * VAL) as u64, VAL);
    }

    /// Find the leaf for `key`, recording the descent path `(node, child
    /// index)` for split propagation.
    fn descend(&self, key: &[u8]) -> (Node, Vec<(Node, usize)>) {
        let mut path = Vec::new();
        let mut cur = self.read_node(self.root);
        while !cur.is_leaf {
            // Sorted interior node: first key > target decides the child.
            let idx = cur.keys.partition_point(|k| k.as_slice() <= key);
            let child = cur.children[idx];
            path.push((cur, idx));
            cur = self.read_node(child);
        }
        (cur, path)
    }

    /// Insert or overwrite. Returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], val: &[u8; VAL]) -> Result<Option<[u8; VAL]>> {
        assert!(key.len() <= MAX_KEY, "key exceeds B+-tree slot size");
        assert!(!key.is_empty(), "empty key");
        let (leaf, path) = self.descend(key);
        // Unsorted leaf: linear probe for overwrite.
        for i in 0..leaf.count {
            if leaf.keys[i] == key {
                let old = leaf.payload[i];
                self.overwrite_leaf_value(&leaf, i, val);
                return Ok(Some(old));
            }
        }
        if leaf.count < FANOUT {
            self.append_leaf_slot(&leaf, key, val);
            self.len += 1;
            return Ok(None);
        }
        // Split: sort, halve, write both, propagate the separator.
        let mut pairs: Vec<(Vec<u8>, [u8; VAL])> =
            leaf.keys.into_iter().zip(leaf.payload).collect();
        pairs.push((key.to_vec(), *val));
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mid = pairs.len() / 2;
        let right_id = self.alloc_node()?;
        let sep = pairs[mid].0.clone();
        let right_pairs = pairs.split_off(mid);

        let right = Node {
            id: right_id,
            is_leaf: true,
            count: right_pairs.len(),
            next_leaf: leaf.next_leaf,
            keys: right_pairs.iter().map(|p| p.0.clone()).collect(),
            payload: right_pairs.iter().map(|p| p.1).collect(),
            children: vec![],
        };
        let left = Node {
            id: leaf.id,
            is_leaf: true,
            count: pairs.len(),
            next_leaf: right_id,
            keys: pairs.iter().map(|p| p.0.clone()).collect(),
            payload: pairs.iter().map(|p| p.1).collect(),
            children: vec![],
        };
        self.write_node(&right);
        self.write_node(&left);
        self.len += 1;
        self.insert_separator(path, sep, right_id)
    }

    /// Propagate a separator key up the recorded path.
    fn insert_separator(
        &mut self,
        mut path: Vec<(Node, usize)>,
        mut sep: Vec<u8>,
        mut right_id: u32,
    ) -> Result<Option<[u8; VAL]>> {
        loop {
            match path.pop() {
                None => {
                    // Split reached the root: grow the tree.
                    let new_root_id = self.alloc_node()?;
                    let new_root = Node {
                        id: new_root_id,
                        is_leaf: false,
                        count: 1,
                        next_leaf: 0,
                        keys: vec![sep],
                        payload: vec![],
                        children: vec![self.root, right_id],
                    };
                    self.write_node(&new_root);
                    self.root = new_root_id;
                    self.write_meta();
                    return Ok(None);
                }
                Some((mut parent, idx)) => {
                    parent.keys.insert(idx, sep);
                    parent.children.insert(idx + 1, right_id);
                    parent.count += 1;
                    if parent.count <= FANOUT {
                        self.write_node(&parent);
                        return Ok(None);
                    }
                    // Interior split.
                    let mid = parent.count / 2;
                    let up = parent.keys[mid].clone();
                    let new_id = self.alloc_node()?;
                    let right_keys = parent.keys.split_off(mid + 1);
                    let promoted = parent.keys.pop().expect("mid key");
                    debug_assert_eq!(promoted, up);
                    let right_children = parent.children.split_off(mid + 1);
                    let right = Node {
                        id: new_id,
                        is_leaf: false,
                        count: right_keys.len(),
                        next_leaf: 0,
                        keys: right_keys,
                        payload: vec![],
                        children: right_children,
                    };
                    parent.count = parent.keys.len();
                    self.write_node(&right);
                    self.write_node(&parent);
                    sep = up;
                    right_id = new_id;
                }
            }
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &[u8]) -> Option<[u8; VAL]> {
        let (leaf, _) = self.descend(key);
        (0..leaf.count)
            .find(|&i| leaf.keys[i] == key)
            .map(|i| leaf.payload[i])
    }

    /// All `(key, value)` pairs in ascending key order (tests and GC).
    pub fn scan_all(&self) -> Vec<(Vec<u8>, [u8; VAL])> {
        // Find the leftmost leaf.
        let mut cur = self.read_node(self.root);
        while !cur.is_leaf {
            cur = self.read_node(cur.children[0]);
        }
        let mut out = Vec::with_capacity(self.len);
        loop {
            let mut pairs: Vec<(Vec<u8>, [u8; VAL])> = cur
                .keys
                .iter()
                .cloned()
                .zip(cur.payload.iter().copied())
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            out.extend(pairs);
            if cur.next_leaf == 0 {
                break;
            }
            cur = self.read_node(cur.next_leaf);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::{CacheConfig, Hierarchy};
    use cachekv_lsm::FlushMode;
    use cachekv_pmem::{PmemConfig, PmemDevice};
    use std::sync::Arc;

    fn tree(mode: FlushMode) -> BpTree {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        BpTree::create(PmemSpace::new(hier, 0, 8 << 20, mode))
    }

    fn val(i: u64) -> [u8; VAL] {
        let mut v = [0u8; VAL];
        v[..8].copy_from_slice(&i.to_le_bytes());
        v
    }

    #[test]
    fn insert_get_small() {
        let mut t = tree(FlushMode::Clflush);
        assert!(t.insert(b"b", &val(2)).unwrap().is_none());
        assert!(t.insert(b"a", &val(1)).unwrap().is_none());
        assert_eq!(t.get(b"a"), Some(val(1)));
        assert_eq!(t.get(b"b"), Some(val(2)));
        assert_eq!(t.get(b"c"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_returns_old() {
        let mut t = tree(FlushMode::Clflush);
        t.insert(b"k", &val(1)).unwrap();
        let old = t.insert(b"k", &val(2)).unwrap();
        assert_eq!(old, Some(val(1)));
        assert_eq!(t.get(b"k"), Some(val(2)));
        assert_eq!(t.len(), 1, "overwrite is not a new key");
    }

    #[test]
    fn thousands_of_keys_split_correctly() {
        let mut t = tree(FlushMode::None);
        let n = 5_000u64;
        for i in 0..n {
            t.insert(format!("user{:010}", i * 7 % n).as_bytes(), &val(i))
                .unwrap();
        }
        assert_eq!(t.len() as u64, n);
        for i in 0..n {
            let k = format!("user{:010}", i);
            assert!(t.get(k.as_bytes()).is_some(), "missing {k}");
        }
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let mut t = tree(FlushMode::None);
        let mut keys: Vec<String> = (0..500).map(|i| format!("k{:06}", i * 13 % 500)).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.as_bytes(), &val(i as u64)).unwrap();
        }
        keys.sort();
        keys.dedup();
        let scanned: Vec<Vec<u8>> = t.scan_all().into_iter().map(|(k, _)| k).collect();
        assert_eq!(scanned.len(), keys.len());
        assert!(
            scanned.windows(2).all(|w| w[0] < w[1]),
            "strictly ascending"
        );
    }

    #[test]
    fn region_exhaustion_errors() {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        // Room for only a handful of nodes.
        let mut t = BpTree::create(PmemSpace::new(hier, 0, 8 * 1024, FlushMode::None));
        let mut failed = false;
        for i in 0..10_000u64 {
            if t.insert(format!("key{i:08}").as_bytes(), &val(i)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "tiny region must run out of nodes");
    }

    #[test]
    #[should_panic(expected = "exceeds B+-tree slot size")]
    fn oversized_key_panics() {
        let mut t = tree(FlushMode::None);
        let _ = t.insert(&[7u8; MAX_KEY + 1], &val(0));
    }
}
