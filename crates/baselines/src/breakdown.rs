//! Write-latency breakdown instrumentation (paper Figure 5(b)).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Accumulated wall-clock nanoseconds per write-path stage.
#[derive(Debug, Default)]
pub struct WriteBreakdown {
    /// Waiting on the shared MemTable mutex.
    pub lock_wait_ns: AtomicU64,
    /// Updating the index structure (skiplist / B+-tree).
    pub index_update_ns: AtomicU64,
    /// Appending KV bytes to the MemTable data region (incl. flushes).
    pub data_write_ns: AtomicU64,
    /// Everything else (rotation, table builds, bookkeeping).
    pub other_ns: AtomicU64,
    /// Number of writes measured.
    pub writes: AtomicU64,
}

/// A point-in-time copy, with ratio helpers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownSnapshot {
    pub lock_wait_ns: u64,
    pub index_update_ns: u64,
    pub data_write_ns: u64,
    pub other_ns: u64,
    pub writes: u64,
}

impl WriteBreakdown {
    /// Time `f` and charge its duration to `counter`.
    #[inline]
    pub fn timed<T>(counter: &AtomicU64, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        counter.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Record one completed write.
    #[inline]
    pub fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> BreakdownSnapshot {
        BreakdownSnapshot {
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
            index_update_ns: self.index_update_ns.load(Ordering::Relaxed),
            data_write_ns: self.data_write_ns.load(Ordering::Relaxed),
            other_ns: self.other_ns.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.lock_wait_ns.store(0, Ordering::Relaxed);
        self.index_update_ns.store(0, Ordering::Relaxed);
        self.data_write_ns.store(0, Ordering::Relaxed);
        self.other_ns.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

impl BreakdownSnapshot {
    /// Total measured nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.lock_wait_ns + self.index_update_ns + self.data_write_ns + self.other_ns
    }

    /// Export as registry-style metrics under the `write.` namespace, for
    /// snapshot parity with CacheKV's phase counters.
    pub fn export_into(&self, out: &mut cachekv_obs::MetricsExport) {
        out.insert_counter("write.lock_wait_ns", self.lock_wait_ns);
        out.insert_counter("write.index_update_ns", self.index_update_ns);
        out.insert_counter("write.data_write_ns", self.data_write_ns);
        out.insert_counter("write.other_ns", self.other_ns);
        out.insert_counter("write.ops", self.writes);
    }

    /// Fractions `(lock, index, data, other)` of the total; zeros when empty.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total_ns();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.lock_wait_ns as f64 / t,
            self.index_update_ns as f64 / t,
            self.data_write_ns as f64 / t,
            self.other_ns as f64 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let b = WriteBreakdown::default();
        let v = WriteBreakdown::timed(&b.index_update_ns, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(b.snapshot().index_update_ns >= 2_000_000);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = WriteBreakdown::default();
        b.lock_wait_ns.store(10, Ordering::Relaxed);
        b.index_update_ns.store(30, Ordering::Relaxed);
        b.data_write_ns.store(40, Ordering::Relaxed);
        b.other_ns.store(20, Ordering::Relaxed);
        let (l, i, d, o) = b.snapshot().fractions();
        assert!((l + i + d + o - 1.0).abs() < 1e-9);
        assert!((i - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(
            WriteBreakdown::default().snapshot().fractions(),
            (0.0, 0.0, 0.0, 0.0)
        );
    }
}
