//! Comparison systems from the paper's evaluation (Section IV-A).
//!
//! Two open-source PMem KV stores are re-implemented over the same simulated
//! hierarchy, plus the two derived variants the paper constructs for each:
//!
//! | System | Memory component | Durability |
//! |---|---|---|
//! | [`NoveLsm`] | large mutable MemTable (data log + skiplist) in PMem | in-place, `store`+`clflush` per write, no WAL |
//! | `NoveLSM-w/o-flush` | same | eADR only (flushes removed) |
//! | `NoveLSM-cache` | MemTable segmented into CAT-locked cache segments | segment-granularity `clflush` |
//! | [`SlmDb`] | persistent MemTable + global PMem B+-tree over a single-level table set | `store`+`clflush` |
//! | `SLM-DB-w/o-flush` / `SLM-DB-cache` | analogous | analogous |
//!
//! All variants are produced by [`BaselineOptions`] so experiments sweep one
//! axis at a time. Both stores take one global mutex per operation — the
//! paper's Observation 2 identifies exactly this synchronization (plus
//! synchronous index updates) as the post-eADR bottleneck, so the contention
//! here is real, not simulated.

pub mod bptree;
pub mod breakdown;
pub mod novelsm;
pub mod pmem_memtable;
pub mod slmdb;

pub use bptree::BpTree;
pub use breakdown::WriteBreakdown;
pub use novelsm::NoveLsm;
pub use pmem_memtable::PmemMemTable;
pub use slmdb::SlmDb;

use cachekv_lsm::FlushMode;

/// How a baseline uses the persistent caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheUse {
    /// MemTable lives in PMem behind the (unlocked) cache: the vanilla and
    /// `-w/o-flush` deployments.
    None,
    /// MemTable data region is segmented and each active segment is pinned
    /// into the cache with Intel CAT (the `-cache` variants).
    LockedSegments,
}

/// Variant axis shared by both baselines.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Per-write durability discipline for PMem-resident structures.
    pub flush_mode: FlushMode,
    /// Whether the MemTable data region rides in CAT-locked cache segments.
    pub cache_use: CacheUse,
    /// MemTable rotation threshold (data bytes).
    pub memtable_bytes: u64,
    /// Segment size for [`CacheUse::LockedSegments`] (12 MiB in the paper).
    pub segment_bytes: u64,
}

impl BaselineOptions {
    /// The vanilla system: PMem MemTable, `clflush` per write.
    pub fn vanilla() -> Self {
        BaselineOptions {
            flush_mode: FlushMode::Clflush,
            cache_use: CacheUse::None,
            memtable_bytes: 8 << 20,
            segment_bytes: 12 << 20,
        }
    }

    /// `-w/o-flush`: drop the flush instructions, rely on eADR.
    pub fn without_flush() -> Self {
        BaselineOptions {
            flush_mode: FlushMode::None,
            ..Self::vanilla()
        }
    }

    /// `-cache`: lift the MemTable into CAT-locked cache segments.
    pub fn cache() -> Self {
        BaselineOptions {
            cache_use: CacheUse::LockedSegments,
            ..Self::vanilla()
        }
    }

    /// Scale the MemTable for small tests.
    pub fn with_memtable_bytes(mut self, bytes: u64) -> Self {
        self.memtable_bytes = bytes;
        self
    }

    /// Override the cache segment size.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }
}
