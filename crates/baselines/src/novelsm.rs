//! A NoveLSM-like store (Kannan et al., ATC'18) and its two paper variants.
//!
//! NoveLSM's headline idea: keep a large *mutable* MemTable directly in PMem
//! so writes are durable in place — no WAL — and fewer flushes to the
//! storage component are needed. Every write takes the shared MemTable
//! mutex, appends the record to the persistent data log, and synchronously
//! updates the persistent skiplist; the vanilla system issues
//! `store`+`clflush` for each step (Section II-C).
//!
//! Variants (Section IV-A):
//! * `NoveLSM-w/o-flush` — flush instructions removed, relying on eADR;
//! * `NoveLSM-cache` — the MemTable is split into segments pinned in
//!   CAT-locked cache space; a full segment is flushed with `clflush` and
//!   the next segment takes over.

use crate::breakdown::WriteBreakdown;
use crate::pmem_memtable::PmemMemTable;
use crate::{BaselineOptions, CacheUse};
use cachekv_cache::Hierarchy;
use cachekv_lsm::kv::{pack_meta, EntryKind, Error, KvStore, Result};
use cachekv_lsm::memtable::Lookup;
use cachekv_lsm::tree::PmemLayout;
use cachekv_lsm::{FlushMode, StorageComponent, StorageConfig};
use cachekv_storage::PmemAllocator;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

struct Inner {
    mt: PmemMemTable,
    mt_regions: ((u64, u64), (u64, u64)),
}

/// The NoveLSM-like baseline.
pub struct NoveLsm {
    hier: Arc<Hierarchy>,
    alloc: Arc<PmemAllocator>,
    opts: BaselineOptions,
    inner: Mutex<Inner>,
    storage: StorageComponent,
    breakdown: WriteBreakdown,
    name: &'static str,
}

impl NoveLsm {
    /// Create with explicit options (see [`BaselineOptions`] presets).
    pub fn new(hier: Arc<Hierarchy>, opts: BaselineOptions, storage: StorageConfig) -> Self {
        let name = match (opts.flush_mode, opts.cache_use) {
            (_, CacheUse::LockedSegments) => "NoveLSM-cache",
            (FlushMode::None, _) => "NoveLSM-w/o-flush",
            _ => "NoveLSM",
        };
        let layout = PmemLayout::standard(hier.device().capacity());
        let alloc = Arc::new(PmemAllocator::new(layout.arena_base, layout.arena_cap));
        let storage = StorageComponent::create(
            hier.clone(),
            alloc.clone(),
            layout.manifest_base,
            layout.manifest_cap,
            storage,
        );
        let mt = Self::fresh_memtable(&hier, &alloc, &opts);
        let mt_regions = mt.regions();
        NoveLsm {
            hier,
            alloc,
            opts,
            inner: Mutex::new(Inner { mt, mt_regions }),
            storage,
            breakdown: WriteBreakdown::default(),
            name,
        }
    }

    /// Vanilla NoveLSM: PMem MemTable, `clflush` per write.
    pub fn vanilla(hier: Arc<Hierarchy>, memtable_bytes: u64, storage: StorageConfig) -> Self {
        Self::new(
            hier,
            BaselineOptions::vanilla().with_memtable_bytes(memtable_bytes),
            storage,
        )
    }

    /// `NoveLSM-w/o-flush`.
    pub fn without_flush(
        hier: Arc<Hierarchy>,
        memtable_bytes: u64,
        storage: StorageConfig,
    ) -> Self {
        Self::new(
            hier,
            BaselineOptions::without_flush().with_memtable_bytes(memtable_bytes),
            storage,
        )
    }

    /// `NoveLSM-cache`.
    pub fn cache(hier: Arc<Hierarchy>, memtable_bytes: u64, storage: StorageConfig) -> Self {
        Self::new(
            hier,
            BaselineOptions::cache().with_memtable_bytes(memtable_bytes),
            storage,
        )
    }

    fn fresh_memtable(
        hier: &Arc<Hierarchy>,
        alloc: &Arc<PmemAllocator>,
        opts: &BaselineOptions,
    ) -> PmemMemTable {
        // For the `-cache` variant the active unit is one segment; otherwise
        // the whole MemTable data region.
        let locked = opts.cache_use == CacheUse::LockedSegments;
        let data_bytes = if locked {
            opts.segment_bytes.min(opts.memtable_bytes)
        } else {
            opts.memtable_bytes
        };
        // Skiplist nodes are smaller than records; equal sizing is generous.
        let index_bytes = data_bytes.max(1 << 16) * 2;
        let data = alloc
            .alloc(data_bytes)
            .expect("NoveLSM memtable data region");
        let index = alloc
            .alloc(index_bytes)
            .expect("NoveLSM memtable index region");
        PmemMemTable::new(
            hier.clone(),
            (data, data_bytes),
            (index, index_bytes),
            opts.flush_mode,
            locked,
        )
    }

    fn rotate(&self, inner: &mut Inner) -> Result<()> {
        let entries = inner.mt.seal();
        self.storage.ingest(&entries)?;
        let ((db, dl), (ib, il)) = inner.mt_regions;
        let fresh = Self::fresh_memtable(&self.hier, &self.alloc, &self.opts);
        let fresh_regions = fresh.regions();
        inner.mt = fresh; // drop order: old table releases CAT before alloc reuse
        self.alloc.free(db, dl);
        self.alloc.free(ib, il);
        inner.mt_regions = fresh_regions;
        Ok(())
    }

    fn write(&self, key: &[u8], value: &[u8], kind: EntryKind) -> Result<()> {
        let t_lock = std::time::Instant::now();
        let mut inner = self.inner.lock();
        self.breakdown
            .lock_wait_ns
            .fetch_add(t_lock.elapsed().as_nanos() as u64, Ordering::Relaxed);

        let seq = self.storage.versions().next_seq();
        let meta = pack_meta(seq, kind);
        if !inner.mt.has_room(key.len(), value.len()) {
            WriteBreakdown::timed(&self.breakdown.other_ns, || self.rotate(&mut inner))?;
        }
        let off = WriteBreakdown::timed(&self.breakdown.data_write_ns, || {
            inner.mt.append_data(key, meta, value)
        });
        let index_res = WriteBreakdown::timed(&self.breakdown.index_update_ns, || {
            inner.mt.update_index(key, meta, off)
        });
        if let Err(Error::OutOfSpace(_)) = &index_res {
            // Index arena filled before the data region: rotate and retry.
            WriteBreakdown::timed(&self.breakdown.other_ns, || self.rotate(&mut inner))?;
            let off = inner.mt.append_data(key, meta, value);
            inner.mt.update_index(key, meta, off)?;
        } else {
            index_res?;
        }
        self.breakdown.count_write();
        Ok(())
    }

    /// Write-path latency breakdown (Figure 5(b)).
    pub fn breakdown(&self) -> &WriteBreakdown {
        &self.breakdown
    }

    /// The storage component (tests / reporting).
    pub fn storage(&self) -> &StorageComponent {
        &self.storage
    }
}

impl KvStore for NoveLsm {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, EntryKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", EntryKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        {
            let inner = self.inner.lock();
            match inner.mt.get(key) {
                Lookup::Found(v) => return Ok(Some(v)),
                Lookup::Tombstone => return Ok(None),
                Lookup::NotFound => {}
            }
        }
        match self.storage.get(key) {
            Lookup::Found(v) => Ok(Some(v)),
            _ => Ok(None),
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn quiesce(&self) {
        self.storage.wait_idle();
    }

    fn snapshot_json(&self) -> Option<String> {
        let mut memory = cachekv_obs::MetricsExport::default();
        self.breakdown.snapshot().export_into(&mut memory);
        Some(
            cachekv_obs::StatsSnapshot {
                system: self.name.to_string(),
                device: self.hier.pmem_stats(),
                cache: self.hier.cache_stats(),
                memory,
                lsm: self.storage.export_metrics(),
            }
            .to_json_string(),
        )
    }
}

#[cfg(test)]
impl NoveLsm {
    fn hier_regions(&self) -> usize {
        self.hier.cat_regions().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
    }

    fn small_store(kind: &str) -> NoveLsm {
        let h = hier();
        let cfg = StorageConfig::test_small();
        match kind {
            "vanilla" => NoveLsm::vanilla(h, 64 << 10, cfg),
            "noflush" => NoveLsm::without_flush(h, 64 << 10, cfg),
            "cache" => NoveLsm::new(
                h,
                BaselineOptions::cache()
                    .with_memtable_bytes(64 << 10)
                    .with_segment_bytes(16 << 10),
                cfg,
            ),
            _ => unreachable!(),
        }
    }

    #[test]
    fn put_get_delete_all_variants() {
        for kind in ["vanilla", "noflush", "cache"] {
            let db = small_store(kind);
            db.put(b"alpha", b"1").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()), "{kind}");
            db.delete(b"alpha").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), None, "{kind}");
        }
    }

    #[test]
    fn rotation_preserves_data() {
        for kind in ["vanilla", "cache"] {
            let db = small_store(kind);
            for i in 0..2000u32 {
                db.put(format!("key{i:06}").as_bytes(), &[3u8; 48]).unwrap();
            }
            db.quiesce();
            assert!(
                db.storage().level_tables().iter().sum::<usize>() > 0,
                "{kind}: rotated"
            );
            for i in (0..2000u32).step_by(137) {
                assert_eq!(
                    db.get(format!("key{i:06}").as_bytes()).unwrap(),
                    Some(vec![3u8; 48]),
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn vanilla_flushes_every_write_but_noflush_does_not() {
        let h1 = hier();
        let v = NoveLsm::vanilla(h1.clone(), 1 << 20, StorageConfig::test_small());
        v.put(b"a-key-000000000", &[9u8; 64]).unwrap();
        assert!(
            h1.pmem_stats().cpu_writes > 0,
            "vanilla pushed lines to the device"
        );

        let h2 = hier();
        let n = NoveLsm::without_flush(h2.clone(), 1 << 20, StorageConfig::test_small());
        n.put(b"a-key-000000000", &[9u8; 64]).unwrap();
        assert_eq!(
            h2.pmem_stats().cpu_writes,
            0,
            "w/o-flush kept lines in cache"
        );
    }

    #[test]
    fn breakdown_is_populated() {
        let db = small_store("vanilla");
        for i in 0..200u32 {
            db.put(format!("k{i:05}").as_bytes(), &[1u8; 32]).unwrap();
        }
        let b = db.breakdown().snapshot();
        assert_eq!(b.writes, 200);
        assert!(b.index_update_ns > 0);
        assert!(b.data_write_ns > 0);
    }

    #[test]
    fn concurrent_writers_share_the_mutex_safely() {
        let db = Arc::new(small_store("vanilla"));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..300u32 {
                    db.put(format!("t{t}k{i:05}").as_bytes(), b"v").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        db.quiesce();
        for t in 0..4u32 {
            assert_eq!(
                db.get(format!("t{t}k00299").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
        assert!(
            db.breakdown().snapshot().lock_wait_ns > 0,
            "contention measured"
        );
    }

    #[test]
    fn cache_variant_pins_then_releases_segments() {
        let db = small_store("cache");
        assert_eq!(db.hier_regions(), 1);
        for i in 0..1500u32 {
            db.put(format!("key{i:06}").as_bytes(), &[3u8; 48]).unwrap();
        }
        // Still exactly one active pinned segment after rotations.
        assert_eq!(db.hier_regions(), 1);
    }
}
