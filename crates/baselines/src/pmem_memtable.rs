//! A persistent MemTable: data log + skiplist index, both in PMem.
//!
//! This is the memory component NoveLSM-style systems use for in-place
//! durability: each write appends the KV record to a persistent data region
//! and then inserts `key → record offset` into a persistent skiplist. Under
//! the vanilla discipline every store is followed by `clflush`; the
//! `-w/o-flush` variants skip the flushes; the `-cache` variants pin the
//! data region into a CAT-locked cache segment.

use cachekv_cache::Hierarchy;
use cachekv_lsm::kv::{
    decode_record_at, encode_record_into, meta_kind, record_len, Entry, EntryKind, Error, Result,
    RECORD_HDR,
};
use cachekv_lsm::memtable::Lookup;
use cachekv_lsm::{FlushMode, MemSpace, PmemSpace, SkipList};
use std::sync::Arc;

/// Persistent data log + persistent skiplist index.
///
/// Externally synchronized (callers hold the store mutex — the contention
/// the paper measures).
pub struct PmemMemTable {
    hier: Arc<Hierarchy>,
    data_base: u64,
    data_cap: u64,
    tail: u64,
    mode: FlushMode,
    /// Data region rides in a CAT-locked cache segment.
    locked: bool,
    index: SkipList<PmemSpace>,
    entries: usize,
    scratch: Vec<u8>,
}

impl PmemMemTable {
    /// Assemble over two pre-allocated regions: `data` (the record log) and
    /// `index` (the skiplist arena). If `lock_data_in_cache` is set, the
    /// data region is pinned with CAT and per-write flushes are skipped for
    /// it (the whole segment is flushed at rotation instead).
    pub fn new(
        hier: Arc<Hierarchy>,
        data: (u64, u64),
        index: (u64, u64),
        mode: FlushMode,
        lock_data_in_cache: bool,
    ) -> Self {
        if lock_data_in_cache {
            hier.cat_lock(data.0, data.1);
        }
        let index_space = PmemSpace::new(hier.clone(), index.0, index.1, mode);
        PmemMemTable {
            hier,
            data_base: data.0,
            data_cap: data.1,
            tail: 0,
            mode,
            locked: lock_data_in_cache,
            index: SkipList::new(index_space),
            entries: 0,
            scratch: Vec::with_capacity(256),
        }
    }

    /// Whether another `record_len` bytes fit.
    pub fn has_room(&self, key_len: usize, value_len: usize) -> bool {
        self.tail + record_len(key_len, value_len) as u64 <= self.data_cap
    }

    /// Bytes of data-log space consumed.
    pub fn data_used(&self) -> u64 {
        self.tail
    }

    /// Number of records inserted.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no records were inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Append a record and index it. Returns `Err(OutOfSpace)` when either
    /// the data region or the index arena is exhausted (rotation time).
    pub fn insert(&mut self, key: &[u8], meta: u64, value: &[u8]) -> Result<()> {
        if !self.has_room(key.len(), value.len()) {
            return Err(Error::OutOfSpace("pmem memtable data region".into()));
        }
        let off = self.append_data(key, meta, value);
        self.update_index(key, meta, off)
    }

    /// Stage 1: append the KV record to the persistent data log. Public so
    /// the store can time it separately (Figure 5(b) instrumentation).
    pub fn append_data(&mut self, key: &[u8], meta: u64, value: &[u8]) -> u64 {
        let off = self.tail;
        self.scratch.clear();
        encode_record_into(&mut self.scratch, key, meta, value);
        let addr = self.data_base + off;
        self.hier.store(addr, &self.scratch);
        if !self.locked {
            // Per-write durability for the unlocked data region.
            match self.mode {
                FlushMode::Clflush => {
                    self.hier.clflush(addr, self.scratch.len());
                    self.hier.sfence();
                }
                FlushMode::Clwb => {
                    self.hier.clwb(addr, self.scratch.len());
                    self.hier.sfence();
                }
                FlushMode::None => {}
            }
        }
        self.tail += self.scratch.len() as u64;
        off
    }

    /// Stage 2: insert `key → record offset` into the persistent skiplist.
    pub fn update_index(&mut self, key: &[u8], meta: u64, off: u64) -> Result<()> {
        self.index.insert(key, meta, &off.to_le_bytes())?;
        self.entries += 1;
        Ok(())
    }

    /// Probe for the newest version of `key`.
    pub fn get(&self, key: &[u8]) -> Lookup {
        match self.index.get_latest(key) {
            None => Lookup::NotFound,
            Some((meta, refbytes)) => match meta_kind(meta) {
                EntryKind::Delete => Lookup::Tombstone,
                EntryKind::Put => {
                    let off = u64::from_le_bytes(refbytes[..8].try_into().unwrap());
                    let (entry, _) = self
                        .read_record(off)
                        .expect("index points at a valid record");
                    Lookup::Found(entry.value)
                }
            },
        }
    }

    fn read_record(&self, off: u64) -> Option<(Entry, usize)> {
        let hdr = self.hier.load_vec(self.data_base + off, RECORD_HDR);
        let klen = u16::from_le_bytes(hdr[0..2].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(hdr[2..6].try_into().unwrap()) as usize;
        if klen == 0 {
            return None;
        }
        let body = self
            .hier
            .load_vec(self.data_base + off, record_len(klen, vlen));
        decode_record_at(&body, 0)
    }

    /// All entries in internal (flush) order.
    pub fn entries(&self) -> Vec<Entry> {
        self.index
            .iter()
            .map(|e| {
                let off = u64::from_le_bytes(e.value[..8].try_into().unwrap());
                let (rec, _) = self.read_record(off).expect("indexed record readable");
                Entry {
                    key: e.key,
                    meta: e.meta,
                    value: rec.value,
                }
            })
            .collect()
    }

    /// Rotate out: flush the data segment if it was cache-locked, release
    /// the CAT region, and hand back sorted entries.
    pub fn seal(&mut self) -> Vec<Entry> {
        let out = self.entries();
        if self.locked {
            // Write the whole segment back with flush instructions, in
            // address order — the `-cache` variants' segment flush.
            self.hier.clflush(self.data_base, self.tail as usize);
            self.hier.sfence();
            self.hier.cat_unlock(self.data_base, self.data_cap);
            self.locked = false;
        }
        out
    }

    /// Regions backing this table: `(data, index)` as `(base, len)` pairs.
    pub fn regions(&self) -> ((u64, u64), (u64, u64)) {
        (
            (self.data_base, self.data_cap),
            (self.index.space().base(), self.index.space().capacity()),
        )
    }
}

impl Drop for PmemMemTable {
    fn drop(&mut self) {
        if self.locked {
            self.hier.cat_unlock(self.data_base, self.data_cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_lsm::kv::pack_meta;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        Arc::new(Hierarchy::new(dev, CacheConfig::small()))
    }

    fn table(h: &Arc<Hierarchy>, mode: FlushMode, locked: bool) -> PmemMemTable {
        PmemMemTable::new(h.clone(), (0, 1 << 20), (1 << 20, 1 << 20), mode, locked)
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = hier();
        let mut t = table(&h, FlushMode::Clflush, false);
        t.insert(b"alice", pack_meta(1, EntryKind::Put), b"in-pmem")
            .unwrap();
        assert_eq!(t.get(b"alice"), Lookup::Found(b"in-pmem".to_vec()));
        assert_eq!(t.get(b"bob"), Lookup::NotFound);
    }

    #[test]
    fn tombstone_and_overwrite() {
        let h = hier();
        let mut t = table(&h, FlushMode::Clflush, false);
        t.insert(b"k", pack_meta(1, EntryKind::Put), b"v1").unwrap();
        t.insert(b"k", pack_meta(2, EntryKind::Delete), b"")
            .unwrap();
        assert_eq!(t.get(b"k"), Lookup::Tombstone);
        t.insert(b"k", pack_meta(3, EntryKind::Put), b"v3").unwrap();
        assert_eq!(t.get(b"k"), Lookup::Found(b"v3".to_vec()));
    }

    #[test]
    fn clflush_mode_survives_adr_crash() {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled()
                .with_domain(cachekv_pmem::PersistDomain::Adr)
                .with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        let h = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        let mut t = PmemMemTable::new(
            h.clone(),
            (0, 1 << 20),
            (1 << 20, 1 << 20),
            FlushMode::Clflush,
            false,
        );
        t.insert(b"durable", pack_meta(1, EntryKind::Put), b"yes")
            .unwrap();
        h.power_fail();
        // The data log is readable straight from the media after the crash.
        let rec = h.load_vec(0, 64);
        let (e, _) = decode_record_at(&rec, 0).unwrap();
        assert_eq!(e.key, b"durable");
        assert_eq!(e.value, b"yes");
    }

    #[test]
    fn entries_sorted_for_ingest() {
        let h = hier();
        let mut t = table(&h, FlushMode::None, false);
        t.insert(b"c", pack_meta(1, EntryKind::Put), b"3").unwrap();
        t.insert(b"a", pack_meta(2, EntryKind::Put), b"1").unwrap();
        t.insert(b"b", pack_meta(3, EntryKind::Put), b"2").unwrap();
        let keys: Vec<Vec<u8>> = t.entries().into_iter().map(|e| e.key).collect();
        assert_eq!(keys, [b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn capacity_exhaustion_signals_rotation() {
        let h = hier();
        let mut t = PmemMemTable::new(h, (0, 1024), (4096, 1 << 16), FlushMode::None, false);
        let mut filled = false;
        for i in 0..100u64 {
            if t.insert(
                format!("k{i:03}").as_bytes(),
                pack_meta(i, EntryKind::Put),
                &[0u8; 48],
            )
            .is_err()
            {
                filled = true;
                break;
            }
        }
        assert!(filled);
    }

    #[test]
    fn locked_segment_stays_cached_until_seal() {
        let h = hier();
        let mut t = table(&h, FlushMode::Clflush, true);
        t.insert(b"key1", pack_meta(1, EntryKind::Put), &[9u8; 64])
            .unwrap();
        // Data region writes did not reach the device (pinned, no flush)...
        // though index writes did (clflush mode).
        assert!(!h.cat_regions().is_empty());
        let before = h.pmem_stats().cpu_writes;
        let entries = t.seal();
        assert_eq!(entries.len(), 1);
        assert!(
            h.pmem_stats().cpu_writes > before,
            "seal flushed the segment"
        );
        assert!(h.cat_regions().is_empty(), "CAT region released");
    }

    #[test]
    fn drop_releases_cat_region() {
        let h = hier();
        {
            let _t = table(&h, FlushMode::Clflush, true);
            assert_eq!(h.cat_regions().len(), 1);
        }
        assert!(h.cat_regions().is_empty());
    }
}
