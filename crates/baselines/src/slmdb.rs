//! An SLM-DB-like store (Kaiyrakhmet et al., FAST'19) and its two variants.
//!
//! SLM-DB's design: a persistent MemTable absorbs writes without a WAL; the
//! storage side is a *single-level* collection of tables (no leveled
//! compaction traffic), and a global B+-tree in PMem maps every key to its
//! exact location, replacing multi-level lookups. A selective-compaction
//! (garbage collection) pass rewrites tables whose live ratio drops.
//!
//! The global mutex around the MemTable + B+-tree reproduces the limited
//! access parallelism the paper observes for SLM-DB (Exp#3 discussion).

use crate::bptree::{BpTree, VAL};
use crate::breakdown::WriteBreakdown;
use crate::pmem_memtable::PmemMemTable;
use crate::{BaselineOptions, CacheUse};
use cachekv_cache::Hierarchy;
use cachekv_lsm::kv::{pack_meta, record_len, Entry, EntryKind, KvStore, Result, RECORD_HDR};
use cachekv_lsm::memtable::Lookup;
use cachekv_lsm::sstable::{build_table, TableHandle, TableMeta, TableOptions};
use cachekv_lsm::tree::PmemLayout;
use cachekv_storage::PmemAllocator;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const TOMBSTONE_FLAG: u32 = 1;

/// Encode a B+-tree payload: `[addr u64][len u32][flags u32]`.
fn encode_loc(addr: u64, len: u32, flags: u32) -> [u8; VAL] {
    let mut v = [0u8; VAL];
    v[0..8].copy_from_slice(&addr.to_le_bytes());
    v[8..12].copy_from_slice(&len.to_le_bytes());
    v[12..16].copy_from_slice(&flags.to_le_bytes());
    v
}

fn decode_loc(v: &[u8; VAL]) -> (u64, u32, u32) {
    (
        u64::from_le_bytes(v[0..8].try_into().unwrap()),
        u32::from_le_bytes(v[8..12].try_into().unwrap()),
        u32::from_le_bytes(v[12..16].try_into().unwrap()),
    )
}

struct SlmTable {
    meta: TableMeta,
    /// Bytes of entries whose B+-tree pointer has been superseded.
    garbage: u64,
}

struct Inner {
    mt: PmemMemTable,
    mt_regions: ((u64, u64), (u64, u64)),
    index: BpTree,
    tables: Vec<SlmTable>,
    next_table_id: u64,
    seq: u64,
}

/// The SLM-DB-like baseline.
pub struct SlmDb {
    hier: Arc<Hierarchy>,
    alloc: Arc<PmemAllocator>,
    opts: BaselineOptions,
    table_opts: TableOptions,
    inner: Mutex<Inner>,
    breakdown: WriteBreakdown,
    name: &'static str,
    /// GC a table once garbage exceeds this fraction of its bytes.
    gc_threshold: f64,
}

impl SlmDb {
    /// Create with explicit variant options.
    pub fn new(hier: Arc<Hierarchy>, opts: BaselineOptions) -> Self {
        let name = match (opts.flush_mode, opts.cache_use) {
            (_, CacheUse::LockedSegments) => "SLM-DB-cache",
            (cachekv_lsm::FlushMode::None, _) => "SLM-DB-w/o-flush",
            _ => "SLM-DB",
        };
        let layout = PmemLayout::standard(hier.device().capacity());
        let alloc = Arc::new(PmemAllocator::new(layout.arena_base, layout.arena_cap));
        // Global B+-tree region: sized for the whole key population.
        let bp_bytes = (layout.arena_cap / 4).max(8 << 20);
        let bp_base = alloc.alloc(bp_bytes).expect("B+-tree region");
        let index = BpTree::create(cachekv_lsm::PmemSpace::new(
            hier.clone(),
            bp_base,
            bp_bytes,
            opts.flush_mode,
        ));
        let mt = Self::fresh_memtable(&hier, &alloc, &opts);
        let mt_regions = mt.regions();
        SlmDb {
            hier,
            alloc,
            table_opts: TableOptions::default(),
            inner: Mutex::new(Inner {
                mt,
                mt_regions,
                index,
                tables: Vec::new(),
                next_table_id: 1,
                seq: 0,
            }),
            breakdown: WriteBreakdown::default(),
            name,
            gc_threshold: 0.5,
            opts,
        }
    }

    /// Vanilla SLM-DB.
    pub fn vanilla(hier: Arc<Hierarchy>, memtable_bytes: u64) -> Self {
        Self::new(
            hier,
            BaselineOptions::vanilla().with_memtable_bytes(memtable_bytes),
        )
    }

    /// `SLM-DB-w/o-flush`.
    pub fn without_flush(hier: Arc<Hierarchy>, memtable_bytes: u64) -> Self {
        Self::new(
            hier,
            BaselineOptions::without_flush().with_memtable_bytes(memtable_bytes),
        )
    }

    /// `SLM-DB-cache`.
    pub fn cache(hier: Arc<Hierarchy>, memtable_bytes: u64) -> Self {
        Self::new(
            hier,
            BaselineOptions::cache().with_memtable_bytes(memtable_bytes),
        )
    }

    fn fresh_memtable(
        hier: &Arc<Hierarchy>,
        alloc: &Arc<PmemAllocator>,
        opts: &BaselineOptions,
    ) -> PmemMemTable {
        let locked = opts.cache_use == CacheUse::LockedSegments;
        let data_bytes = if locked {
            opts.segment_bytes.min(opts.memtable_bytes)
        } else {
            opts.memtable_bytes
        };
        let index_bytes = data_bytes.max(1 << 16) * 2;
        let data = alloc
            .alloc(data_bytes)
            .expect("SLM-DB memtable data region");
        let index = alloc
            .alloc(index_bytes)
            .expect("SLM-DB memtable index region");
        PmemMemTable::new(
            hier.clone(),
            (data, data_bytes),
            (index, index_bytes),
            opts.flush_mode,
            locked,
        )
    }

    /// Per-entry *record* offsets within a table encoded from `entries`
    /// (records are laid out contiguously in encode order).
    fn record_offsets(entries: &[Entry]) -> Vec<u64> {
        let mut offs = Vec::with_capacity(entries.len());
        let mut cum = 0u64;
        for e in entries {
            offs.push(cum);
            cum += record_len(e.key.len(), e.value.len()) as u64;
        }
        offs
    }

    /// Flush the MemTable into a new single-level table and point the global
    /// B+-tree at every entry.
    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        let entries = inner.mt.seal();
        if !entries.is_empty() {
            let id = inner.next_table_id;
            inner.next_table_id += 1;
            let meta = build_table(&self.hier, &self.alloc, id, &entries, &self.table_opts)?;
            let offs = Self::record_offsets(&entries);
            // Internal order is newest-first per key: only the first
            // occurrence of a key gets indexed; shadowed versions are
            // garbage in the new table from birth.
            let mut own_garbage = 0u64;
            let mut prev_key: Option<&[u8]> = None;
            for (e, off) in entries.iter().zip(&offs) {
                if prev_key == Some(e.key.as_slice()) {
                    own_garbage += e.value.len() as u64;
                    continue;
                }
                prev_key = Some(e.key.as_slice());
                let (addr, len, flags) = match e.kind() {
                    EntryKind::Put => (
                        meta.base + off + RECORD_HDR as u64 + e.key.len() as u64,
                        e.value.len() as u32,
                        0,
                    ),
                    EntryKind::Delete => (0, 0, TOMBSTONE_FLAG),
                };
                let old = inner.index.insert(&e.key, &encode_loc(addr, len, flags))?;
                if let Some(old) = old {
                    Self::account_garbage(&mut inner.tables, &old);
                }
            }
            inner.tables.push(SlmTable {
                meta,
                garbage: own_garbage,
            });
        }
        // Fresh MemTable; recycle the old regions.
        let ((db, dl), (ib, il)) = inner.mt_regions;
        let fresh = Self::fresh_memtable(&self.hier, &self.alloc, &self.opts);
        let fresh_regions = fresh.regions();
        inner.mt = fresh;
        self.alloc.free(db, dl);
        self.alloc.free(ib, il);
        inner.mt_regions = fresh_regions;
        self.maybe_gc_locked(inner)
    }

    fn account_garbage(tables: &mut [SlmTable], old: &[u8; VAL]) {
        let (addr, len, flags) = decode_loc(old);
        if flags & TOMBSTONE_FLAG != 0 || len == 0 {
            return;
        }
        if let Some(t) = tables
            .iter_mut()
            .find(|t| addr >= t.meta.base && addr < t.meta.base + t.meta.len)
        {
            t.garbage += len as u64;
        }
    }

    /// Selective compaction: rewrite any table whose garbage ratio exceeds
    /// the threshold, keeping only entries the B+-tree still points into it.
    fn maybe_gc_locked(&self, inner: &mut Inner) -> Result<()> {
        let mut i = 0;
        while i < inner.tables.len() {
            let ratio = inner.tables[i].garbage as f64 / inner.tables[i].meta.len as f64;
            if ratio <= self.gc_threshold {
                i += 1;
                continue;
            }
            let old_meta = inner.tables.remove(i).meta;
            let handle = TableHandle::open(self.hier.clone(), old_meta.clone())?;
            let mut live: Vec<Entry> = Vec::new();
            let mut cum = 0u64;
            for e in handle.iter() {
                let value_addr = old_meta.base + cum + RECORD_HDR as u64 + e.key.len() as u64;
                cum += record_len(e.key.len(), e.value.len()) as u64;
                if e.kind() == EntryKind::Delete {
                    continue;
                }
                if let Some(loc) = inner.index.get(&e.key) {
                    let (addr, _, flags) = decode_loc(&loc);
                    if flags & TOMBSTONE_FLAG == 0 && addr == value_addr {
                        live.push(e);
                    }
                }
            }
            if !live.is_empty() {
                let id = inner.next_table_id;
                inner.next_table_id += 1;
                let meta = build_table(&self.hier, &self.alloc, id, &live, &self.table_opts)?;
                let offs = Self::record_offsets(&live);
                for (e, off) in live.iter().zip(&offs) {
                    let addr = meta.base + off + RECORD_HDR as u64 + e.key.len() as u64;
                    inner
                        .index
                        .insert(&e.key, &encode_loc(addr, e.value.len() as u32, 0))?;
                }
                inner.tables.insert(i, SlmTable { meta, garbage: 0 });
                i += 1;
            }
            self.alloc.free(old_meta.base, old_meta.len);
        }
        Ok(())
    }

    /// Write-path latency breakdown.
    pub fn breakdown(&self) -> &WriteBreakdown {
        &self.breakdown
    }

    /// Number of single-level tables currently live (tests).
    pub fn table_count(&self) -> usize {
        self.inner.lock().tables.len()
    }

    fn write(&self, key: &[u8], value: &[u8], kind: EntryKind) -> Result<()> {
        let t_lock = std::time::Instant::now();
        let mut inner = self.inner.lock();
        self.breakdown
            .lock_wait_ns
            .fetch_add(t_lock.elapsed().as_nanos() as u64, Ordering::Relaxed);
        inner.seq += 1;
        let meta = pack_meta(inner.seq, kind);
        if !inner.mt.has_room(key.len(), value.len()) {
            WriteBreakdown::timed(&self.breakdown.other_ns, || self.flush_locked(&mut inner))?;
        }
        let off = WriteBreakdown::timed(&self.breakdown.data_write_ns, || {
            inner.mt.append_data(key, meta, value)
        });
        let res = WriteBreakdown::timed(&self.breakdown.index_update_ns, || {
            inner.mt.update_index(key, meta, off)
        });
        if res.is_err() {
            WriteBreakdown::timed(&self.breakdown.other_ns, || self.flush_locked(&mut inner))?;
            let off = inner.mt.append_data(key, meta, value);
            inner.mt.update_index(key, meta, off)?;
        }
        self.breakdown.count_write();
        Ok(())
    }
}

impl KvStore for SlmDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, EntryKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", EntryKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = self.inner.lock();
        match inner.mt.get(key) {
            Lookup::Found(v) => return Ok(Some(v)),
            Lookup::Tombstone => return Ok(None),
            Lookup::NotFound => {}
        }
        match inner.index.get(key) {
            None => Ok(None),
            Some(loc) => {
                let (addr, len, flags) = decode_loc(&loc);
                if flags & TOMBSTONE_FLAG != 0 {
                    return Ok(None);
                }
                Ok(Some(self.hier.load_vec(addr, len as usize)))
            }
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn snapshot_json(&self) -> Option<String> {
        let mut memory = cachekv_obs::MetricsExport::default();
        self.breakdown.snapshot().export_into(&mut memory);
        // SLM-DB's single-level table set stands in for the LSM layer.
        let mut lsm = cachekv_obs::MetricsExport::default();
        lsm.insert_gauge("slmdb.tables", self.table_count() as i64);
        Some(
            cachekv_obs::StatsSnapshot {
                system: self.name.to_string(),
                device: self.hier.pmem_stats(),
                cache: self.hier.cache_stats(),
                memory,
                lsm,
            }
            .to_json_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
    }

    fn small(kind: &str) -> SlmDb {
        let h = hier();
        match kind {
            "vanilla" => SlmDb::vanilla(h, 16 << 10),
            "noflush" => SlmDb::without_flush(h, 16 << 10),
            "cache" => SlmDb::new(
                h,
                BaselineOptions::cache()
                    .with_memtable_bytes(64 << 10)
                    .with_segment_bytes(16 << 10),
            ),
            _ => unreachable!(),
        }
    }

    #[test]
    fn put_get_delete_all_variants() {
        for kind in ["vanilla", "noflush", "cache"] {
            let db = small(kind);
            db.put(b"alpha", b"1").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()), "{kind}");
            db.delete(b"alpha").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), None, "{kind}");
        }
    }

    #[test]
    fn flush_moves_data_into_tables_and_bptree_serves_reads() {
        let db = small("vanilla");
        for i in 0..2000u32 {
            db.put(
                format!("key{i:06}").as_bytes(),
                format!("val{i}").as_bytes(),
            )
            .unwrap();
        }
        assert!(db.table_count() > 0, "memtable rotated into tables");
        for i in (0..2000u32).step_by(83) {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("val{i}").into_bytes())
            );
        }
    }

    #[test]
    fn overwrites_read_latest_after_flush() {
        let db = small("vanilla");
        for round in 0..4u32 {
            for i in 0..800u32 {
                db.put(
                    format!("k{i:05}").as_bytes(),
                    format!("r{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        assert_eq!(db.get(b"k00400").unwrap(), Some(b"r3".to_vec()));
    }

    #[test]
    fn gc_reclaims_mostly_dead_tables() {
        let db = small("vanilla");
        // Hammer the same small key set so earlier tables rot.
        for round in 0..12u32 {
            for i in 0..600u32 {
                db.put(
                    format!("k{i:05}").as_bytes(),
                    format!("round{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        // Every key still readable at its newest value.
        for i in (0..600u32).step_by(61) {
            assert_eq!(
                db.get(format!("k{i:05}").as_bytes()).unwrap(),
                Some(b"round11".to_vec())
            );
        }
        // GC kept the table set bounded well below one-table-per-flush.
        assert!(db.table_count() < 12, "GC ran: {} tables", db.table_count());
    }

    #[test]
    fn deleted_keys_stay_deleted_across_flush() {
        let db = small("vanilla");
        for i in 0..1200u32 {
            db.put(format!("key{i:06}").as_bytes(), b"v").unwrap();
        }
        db.delete(b"key000100").unwrap();
        // Force the tombstone through a flush.
        for i in 2000..3500u32 {
            db.put(format!("key{i:06}").as_bytes(), b"v").unwrap();
        }
        assert_eq!(db.get(b"key000100").unwrap(), None);
        assert_eq!(db.get(b"key000101").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let db = Arc::new(small("vanilla"));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..300u32 {
                    let k = format!("t{t}k{i:05}");
                    db.put(k.as_bytes(), k.as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u32 {
            let k = format!("t{t}k00299");
            assert_eq!(db.get(k.as_bytes()).unwrap(), Some(k.into_bytes()));
        }
    }
}
