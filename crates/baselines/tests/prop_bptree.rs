//! Property tests: the PMem B+-tree against a BTreeMap model, including
//! crash durability of the clflush discipline.

use cachekv_baselines::bptree::{BpTree, VAL};
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::{FlushMode, PmemSpace};
use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn tree(mode: FlushMode) -> BpTree {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
    ));
    let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
    BpTree::create(PmemSpace::new(hier, 0, 16 << 20, mode))
}

fn val(x: u64) -> [u8; VAL] {
    let mut v = [0u8; VAL];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn bptree_matches_model(
        ops in prop::collection::vec((0u32..2_000, any::<u64>()), 1..800)
    ) {
        let mut t = tree(FlushMode::None);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, x) in &ops {
            let key = format!("user{k:08}").into_bytes();
            let old = t.insert(&key, &val(*x)).unwrap();
            let model_old = model.insert(key, *x);
            prop_assert_eq!(old.map(|o| u64::from_le_bytes(o[..8].try_into().unwrap())), model_old,
                "insert must report the exact previous value");
        }
        prop_assert_eq!(t.len(), model.len());
        for (key, x) in &model {
            prop_assert_eq!(t.get(key), Some(val(*x)), "key {:?}", key);
        }
        // Absent keys miss.
        prop_assert_eq!(t.get(b"user99999999"), None);
        // Scan is sorted, complete, and agrees with the model.
        let scanned = t.scan_all();
        prop_assert_eq!(scanned.len(), model.len());
        let model_keys: Vec<&Vec<u8>> = model.keys().collect();
        for (i, (k, v)) in scanned.iter().enumerate() {
            prop_assert_eq!(k, model_keys[i]);
            prop_assert_eq!(*v, val(model[k]));
        }
    }

    #[test]
    fn bptree_with_clflush_is_readable_from_media_after_crash(
        keys in prop::collection::btree_set(0u32..500, 1..120)
    ) {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
        ));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        let mut t = BpTree::create(PmemSpace::new(hier.clone(), 0, 16 << 20, FlushMode::Clflush));
        for k in &keys {
            t.insert(format!("user{k:08}").as_bytes(), &val(*k as u64)).unwrap();
        }
        // Crash: with per-write clflush the tree bytes are all on media, so
        // a fresh handle over the same space still resolves every key.
        hier.power_fail();
        for k in &keys {
            prop_assert_eq!(t.get(format!("user{k:08}").as_bytes()), Some(val(*k as u64)));
        }
    }
}
