//! Ablation (beyond the paper's figures): does sub-MemTable elasticity
//! (Section III-A) help under bursty over-subscription?
//!
//! A 4-slot pool serves 12 writer threads. With elasticity armed, misses
//! halve free sub-MemTables, raising slot count and parallelism; with it
//! effectively disabled (astronomical miss threshold), writers serialize on
//! slot turnover.

use cachekv::{CacheKv, CacheKvConfig};
use cachekv_bench::{banner, bench_storage, fresh_hierarchy, row, BenchScale};
use cachekv_lsm::KvStore;
use cachekv_workloads::{run_ops, DbBench, KeyGen, ValueGen};
use std::sync::Arc;

fn run(miss_threshold: u64, scale: &BenchScale) -> (f64, usize) {
    let hier = fresh_hierarchy();
    let cfg = CacheKvConfig {
        pool_bytes: 2 << 20,
        subtable_bytes: 512 << 10,
        min_subtable_bytes: 32 << 10,
        flush_threads: 2,
        miss_threshold,
        storage: bench_storage(),
        ..CacheKvConfig::default()
    };
    let db = Arc::new(CacheKv::create(hier, cfg));
    let store: Arc<dyn KvStore> = db.clone();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    let threads = 12;
    let m = run_ops(
        &store,
        DbBench::FillRandom,
        scale.keyspace,
        scale.ops / threads as u64,
        threads,
        &key,
        &value,
    );
    (m.kops(), db.pool().slot_count())
}

fn main() {
    let scale = BenchScale::default();
    banner(
        "Ablation: elasticity",
        &format!("12 writers over a 4-slot pool — {} writes", scale.ops),
    );
    row("config", &["Kops/s".into(), "final slots".into()]);
    let (kops, slots) = run(4, &scale);
    row(
        "elastic (threshold 4)",
        &[format!("{kops:.1}"), slots.to_string()],
    );
    let (kops, slots) = run(u64::MAX, &scale);
    row(
        "rigid (disabled)",
        &[format!("{kops:.1}"), slots.to_string()],
    );
}
