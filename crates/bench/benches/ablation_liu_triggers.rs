//! Ablation (beyond the paper's figures): the lazy-index-update trigger
//! threshold (Section III-B strategy 2) trades write throughput against the
//! index-sync work a read must absorb.

use cachekv::{CacheKv, CacheKvConfig};
use cachekv_bench::{banner, bench_storage, fresh_hierarchy, row, BenchScale};
use cachekv_lsm::KvStore;
use cachekv_workloads::{run_ops, DbBench, KeyGen, ValueGen};
use std::sync::Arc;

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    banner(
        "Ablation: LIU sync threshold",
        &format!(
            "{} writes then {} reads, 1 thread",
            scale.ops,
            scale.ops / 4
        ),
    );
    row("sync every", &["write Kops/s".into(), "read Kops/s".into()]);
    for sync_every in [1u64, 16, 64, 256, u64::MAX] {
        let hier = fresh_hierarchy();
        let cfg = CacheKvConfig {
            sync_every,
            storage: bench_storage(),
            ..CacheKvConfig::default()
        };
        let db = Arc::new(CacheKv::create(hier, cfg));
        let store: Arc<dyn KvStore> = db.clone();
        let w = run_ops(
            &store,
            DbBench::FillRandom,
            scale.keyspace,
            scale.ops,
            1,
            &key,
            &value,
        );
        let r = run_ops(
            &store,
            DbBench::ReadRandom,
            scale.keyspace,
            scale.ops / 4,
            1,
            &key,
            &value,
        );
        let label = if sync_every == u64::MAX {
            "on-read only".to_string()
        } else {
            sync_every.to_string()
        };
        row(
            &label,
            &[format!("{:.1}", w.kops()), format!("{:.1}", r.kops())],
        );
    }
}
