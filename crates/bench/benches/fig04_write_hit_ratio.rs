//! Ob1 (Figure 4): XPBuffer write hit ratio of the baselines and their
//! persistent-cache variants, random writes, values 32-256 B, one thread.
//!
//! Expected shape: removing flush instructions (`-w/o-flush`) slashes the
//! hit ratio (random cacheline evictions), while lifting the MemTable into
//! CAT-locked cache segments (`-cache`) restores most of it (ordered
//! segment-granularity flushes).
//!
//! The LLC is scaled to 4 MiB (vs the paper's 36 MiB) so the scaled op
//! count produces real capacity evictions for the `-w/o-flush` variants.

use cachekv_bench::{
    banner, build_on, fresh_hierarchy_with_cache, row, BenchScale, MetricsSink, SystemKind,
};
use cachekv_workloads::{run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let mut scale = BenchScale::default();
    scale.ops *= 2; // enough traffic to churn the scaled 4 MiB LLC
    let key = KeyGen::paper();
    let value_sizes = [32usize, 64, 128, 256];
    let mut sink = MetricsSink::new("fig04_write_hit_ratio");

    // Scale the pieces to the 4 MiB LLC: unpinned MemTables larger than the
    // cache (so unflushed writes must evict), pinned segments well inside it.
    let adjust = |kind: SystemKind, s: &mut BenchScale| {
        match kind {
            SystemKind::NoveLsmCache | SystemKind::SlmDbCache => {
                s.memtable_bytes = 1 << 20;
                s.slmdb_memtable_bytes = 1 << 20;
            }
            SystemKind::SlmDb | SystemKind::SlmDbNoFlush => {
                // Larger than the LLC, like NoveLSM's, so per-write traffic
                // (not just flush-time table builds) reaches the device.
                s.slmdb_memtable_bytes = 8 << 20;
            }
            _ => {}
        }
    };
    let measure = |kind: SystemKind,
                   vs: usize,
                   ops: u64,
                   tag: &str,
                   sink: &mut MetricsSink|
     -> cachekv_pmem::PmemStats {
        let hier = fresh_hierarchy_with_cache(4 << 20);
        let mut s = scale.clone();
        adjust(kind, &mut s);
        let inst = build_on(hier.clone(), kind, &s, 1);
        hier.reset_stats();
        let value = ValueGen::new(vs);
        run_ops(&inst.store, DbBench::FillRandom, ops, ops, 1, &key, &value);
        inst.store.quiesce();
        sink.record(&format!("{}/{tag}{vs}B", kind.name()), &inst);
        hier.pmem_stats()
    };

    banner(
        "Figure 4",
        &format!(
            "XPBuffer write hit ratio (%) — random writes, {} ops, 4 MiB LLC",
            scale.ops
        ),
    );
    row(
        "value size",
        &value_sizes
            .iter()
            .map(|v| format!("{v} B"))
            .collect::<Vec<_>>(),
    );
    for kind in SystemKind::ob1_set() {
        let cells = value_sizes
            .iter()
            .map(|&vs| {
                format!(
                    "{:.1}",
                    measure(kind, vs, scale.ops, "", &mut sink).write_hit_ratio() * 100.0
                )
            })
            .collect::<Vec<_>>();
        row(kind.name(), &cells);
    }

    println!("\n(also reported: write amplification at 64 B values)");
    let mut names = Vec::new();
    let mut cells = Vec::new();
    for kind in SystemKind::ob1_set() {
        names.push(kind.name().to_string());
        cells.push(format!(
            "{:.2}x",
            measure(kind, 64, scale.ops, "wa-", &mut sink).write_amplification()
        ));
    }
    row("system", &names);
    row("write amplification", &cells);
    sink.write();
}
