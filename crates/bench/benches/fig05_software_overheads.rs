//! Ob2 (Figure 5): software overheads once the MemTable rides in the cache.
//!
//! (a) aggregate random-write throughput vs user threads for the six
//!     baseline systems — expected: low (sub-300 Kops/s scale) and
//!     *degrading* with threads (shared-MemTable lock contention);
//! (b) write-latency breakdown of NoveLSM-cache — expected: index update +
//!     MemTable lock dominate (46.3% at 2 threads, 67.0% at 8 in the paper).

use cachekv_baselines::BaselineOptions;
use cachekv_baselines::NoveLsm;
use cachekv_bench::{
    banner, bench_storage, build, fresh_hierarchy, row, BenchScale, MetricsSink, SystemKind,
};
use cachekv_workloads::{run_ops, DbBench, KeyGen, ValueGen};
use std::sync::Arc;

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    let threads = [1usize, 2, 4, 8];
    let mut sink = MetricsSink::new("fig05_software_overheads");

    banner(
        "Figure 5(a)",
        &format!(
            "random-write Kops/s vs user threads — 64 B values, {} ops/point",
            scale.ops
        ),
    );
    row(
        "threads",
        &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
    );
    for kind in SystemKind::ob1_set() {
        let mut cells = Vec::new();
        for &t in &threads {
            let inst = build(kind, &scale);
            let m = run_ops(
                &inst.store,
                DbBench::FillRandom,
                scale.keyspace,
                scale.ops / t as u64,
                t,
                &key,
                &value,
            );
            cells.push(format!("{:.1}", m.kops()));
            inst.store.quiesce();
            sink.record(&format!("{}/{t}threads", kind.name()), &inst);
        }
        row(kind.name(), &cells);
    }

    banner("Figure 5(b)", "NoveLSM-cache write latency breakdown (%)");
    row(
        "threads",
        &[
            "lock wait".into(),
            "index update".into(),
            "data write".into(),
            "others".into(),
        ],
    );
    for &t in &threads {
        let hier = fresh_hierarchy();
        let db = Arc::new(NoveLsm::new(
            hier,
            BaselineOptions::cache().with_memtable_bytes(scale.memtable_bytes),
            bench_storage(),
        ));
        let store: Arc<dyn cachekv_lsm::KvStore> = db.clone();
        run_ops(
            &store,
            DbBench::FillRandom,
            scale.keyspace,
            scale.ops / t as u64,
            t,
            &key,
            &value,
        );
        if let Some(json) = store.snapshot_json() {
            sink.record_json(&format!("NoveLSM-cache/breakdown/{t}threads"), &json);
        }
        let (l, i, d, o) = db.breakdown().snapshot().fractions();
        row(
            &format!("{t} threads"),
            &[
                format!("{:.1}", l * 100.0),
                format!("{:.1}", i * 100.0),
                format!("{:.1}", d * 100.0),
                format!("{:.1}", o * 100.0),
            ],
        );
    }
    sink.write();
}
