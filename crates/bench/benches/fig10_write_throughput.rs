//! Exp#1 (Figure 10): sequential and random write throughput vs value size.
//!
//! Paper setup: 10 M inserts, 1 user thread, 16 B keys, values 16-256 B.
//! Expected shape: CacheKV > PCSM+LIU > PCSM > NoveLSM-cache > NoveLSM >
//! SLM-DB-cache ≳ SLM-DB, with CacheKV's lead growing as values shrink.

use cachekv_bench::{banner, build, row, BenchScale, MetricsSink, SystemKind};
use cachekv_workloads::{run_ops_with_latency, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value_sizes = [16usize, 64, 128, 256];
    let mut sink = MetricsSink::new("fig10_write_throughput");

    for (mode, title, tag) in [
        (DbBench::FillSeq, "(a) sequential writes", "seq"),
        (DbBench::FillRandom, "(b) random writes", "random"),
    ] {
        banner(
            "Figure 10",
            &format!("{title} — Kops/s, 1 thread, {} ops", scale.ops),
        );
        row(
            "value size",
            &value_sizes
                .iter()
                .map(|v| format!("{v} B"))
                .collect::<Vec<_>>(),
        );
        for kind in SystemKind::exp1_set() {
            let mut cells = Vec::new();
            let mut p99_cells = Vec::new();
            for &vs in &value_sizes {
                let inst = build(kind, &scale);
                let value = ValueGen::new(vs);
                let (m, lat) = run_ops_with_latency(
                    &inst.store,
                    mode,
                    scale.keyspace,
                    scale.ops,
                    1,
                    &key,
                    &value,
                );
                cells.push(format!("{:.1}", m.kops()));
                p99_cells.push(format!("{:.1}", lat.p99() as f64 / 1e3));
                inst.store.quiesce();
                let label = format!("{}/{tag}/{vs}B", kind.name());
                sink.record(&label, &inst);
                sink.record_measurement(&label, m.kops(), lat.p50(), lat.p99());
            }
            row(kind.name(), &cells);
            row("  p99 put µs", &p99_cells);
        }
    }
    sink.write();
}
