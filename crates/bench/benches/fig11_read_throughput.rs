//! Exp#2 (Figure 11): read throughput vs value size, plus a mixed-state
//! read profile exercising the contention-free read path.
//!
//! Each store is pre-filled, quiesced, and then read with one thread under
//! three request distributions: sequential, uniform random, and scrambled
//! Zipfian (θ = 0.99). Expected shape: CacheKV roughly matches NoveLSM
//! (within a few percent, ahead of PCSM/PCSM+LIU thanks to sub-skiplist
//! compaction) and clearly beats SLM-DB.
//!
//! Section (d) runs a deliberately small-table configuration so the store
//! quiesces with a populated global skiplist (CacheKV) or a pile of
//! flushed tables (PCSM+LIU), then issues present, absent-in-range, and
//! out-of-range reads. That drives every read-path pruning counter —
//! fence skips, bloom skips, LSM short-circuits — to provably non-zero
//! values in the metrics artifact, which `validate_metrics` checks in CI.

use std::sync::Arc;
use std::time::Instant;

use cachekv_bench::{banner, build, row, BenchScale, MetricsSink, SystemKind};
use cachekv_lsm::KvStore;
use cachekv_workloads::{driver, run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value_sizes = [16usize, 64, 128, 256];
    let mut sink = MetricsSink::new("fig11_read_throughput");

    for (mode, title, tag) in [
        (DbBench::ReadSeq, "(a) sequential reads", "seq"),
        (DbBench::ReadRandom, "(b) random reads", "random"),
        (DbBench::ReadZipfian, "(c) zipfian reads", "zipfian"),
    ] {
        banner(
            "Figure 11",
            &format!("{title} — Kops/s, 1 thread, {} reads", scale.ops),
        );
        row(
            "value size",
            &value_sizes
                .iter()
                .map(|v| format!("{v} B"))
                .collect::<Vec<_>>(),
        );
        for kind in SystemKind::exp1_set() {
            let mut cells = Vec::new();
            for &vs in &value_sizes {
                let inst = build(kind, &scale);
                let value = ValueGen::new(vs);
                driver::fill(&inst.store, scale.keyspace, &key, &value);
                let m = run_ops(
                    &inst.store,
                    mode,
                    scale.keyspace,
                    scale.ops,
                    1,
                    &key,
                    &value,
                );
                cells.push(format!("{:.1}", m.kops()));
                sink.record(&format!("{}/{tag}/{vs}B", kind.name()), &inst);
            }
            row(kind.name(), &cells);
        }
    }

    mixed_state_section(&scale, &key, &mut sink);
    sink.write();
}

/// Section (d): reads against a store holding every table state at once.
///
/// Tiny sub-MemTables force the fill through seal → flush → (for CacheKV)
/// sub-skiplist compaction, so reads traverse flushed tables and the
/// global skiplist rather than just the active tables. Only even key ids
/// are written: odd ids are absent but inside the key fences (bloom-skip
/// territory), and ids past the keyspace are outside every fence
/// (fence-skip territory). The write volume stays far below the L0 dump
/// threshold, so every present-key read is satisfied in memory at a
/// sequence number newer than anything persisted — the LSM probe
/// short-circuits.
fn mixed_state_section(scale: &BenchScale, key: &KeyGen, sink: &mut MetricsSink) {
    let small = BenchScale {
        pool_bytes: 1 << 20,
        subtable_bytes: 64 << 10,
        ..scale.clone()
    };
    let value = ValueGen::new(64);
    banner(
        "Figure 11",
        &format!(
            "(d) mixed-state reads — Kops/s, 1 thread, {} reads over sealed/flushed/compacted tables",
            small.ops
        ),
    );
    let mix: Vec<String> = ["present", "absent", "out-of-range"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    row("read mix", &mix);
    for kind in [SystemKind::PcsmLiu, SystemKind::CacheKv] {
        let inst = build(kind, &small);
        for id in (0..small.keyspace).step_by(2) {
            inst.store
                .put(&key.key(id), &value.value(id))
                .expect("mixed-state fill");
        }
        inst.store.quiesce();

        let ks = small.keyspace;
        let present = timed_gets(&inst.store, key, ks, (0..ks).step_by(2));
        let absent = timed_gets(&inst.store, key, ks, (1..ks).step_by(2));
        let out_of_range = timed_gets(&inst.store, key, ks, ks..ks + ks / 2);
        row(
            kind.name(),
            &[
                format!("{present:.1}"),
                format!("{absent:.1}"),
                format!("{out_of_range:.1}"),
            ],
        );
        sink.record(&format!("{}/mixed", kind.name()), &inst);
    }
}

/// Issue one get per id, asserting presence expectations, returning Kops/s.
fn timed_gets(
    store: &Arc<dyn KvStore>,
    key: &KeyGen,
    keyspace: u64,
    ids: impl Iterator<Item = u64> + Clone,
) -> f64 {
    let n = ids.clone().count() as u64;
    let t0 = Instant::now();
    for id in ids {
        let hit = store.get(&key.key(id)).expect("mixed-state get");
        let written = id < keyspace && id % 2 == 0;
        assert_eq!(hit.is_some(), written, "key id {id} presence");
    }
    let secs = t0.elapsed().as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        n as f64 / secs / 1e3
    }
}
