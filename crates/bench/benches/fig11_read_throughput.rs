//! Exp#2 (Figure 11): sequential and random read throughput vs value size.
//!
//! Each store is pre-filled, quiesced, and then read with one thread.
//! Expected shape: CacheKV roughly matches NoveLSM (within a few percent,
//! slightly behind on random reads due to sub-MemTable read amplification,
//! ahead of PCSM/PCSM+LIU thanks to sub-skiplist compaction) and clearly
//! beats SLM-DB.

use cachekv_bench::{banner, build, row, BenchScale, SystemKind};
use cachekv_workloads::{driver, run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value_sizes = [16usize, 64, 128, 256];

    for (mode, title) in [
        (DbBench::ReadSeq, "(a) sequential reads"),
        (DbBench::ReadRandom, "(b) random reads"),
    ] {
        banner(
            "Figure 11",
            &format!("{title} — Kops/s, 1 thread, {} reads", scale.ops),
        );
        row(
            "value size",
            &value_sizes
                .iter()
                .map(|v| format!("{v} B"))
                .collect::<Vec<_>>(),
        );
        for kind in SystemKind::exp1_set() {
            let mut cells = Vec::new();
            for &vs in &value_sizes {
                let inst = build(kind, &scale);
                let value = ValueGen::new(vs);
                driver::fill(&inst.store, scale.keyspace, &key, &value);
                let m = run_ops(
                    &inst.store,
                    mode,
                    scale.keyspace,
                    scale.ops,
                    1,
                    &key,
                    &value,
                );
                cells.push(format!("{:.1}", m.kops()));
            }
            row(kind.name(), &cells);
        }
    }
}
