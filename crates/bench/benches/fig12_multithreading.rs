//! Exp#3 (Figure 12): throughput vs user threads, 16 B keys / 64 B values.
//!
//! (a) random reads — expected: CacheKV leads (DRAM indexes), SLM-DB last;
//! (b) random writes — expected: CacheKV *scales* with threads (peaking,
//!     then flattening once background flushing becomes the bottleneck)
//!     while every baseline *degrades* (shared-MemTable contention).

use cachekv_bench::{banner, build, row, BenchScale, SystemKind};
use cachekv_workloads::{driver, run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    // Simulated cores, not host cores: the full paper sweep always runs.
    // On a small host the threads timeshare, which flattens absolute
    // scaling but preserves the contention contrast between systems.
    let threads: Vec<usize> = vec![4, 8, 12, 16, 20, 24];

    banner(
        "Figure 12(a)",
        &format!(
            "random-read Kops/s vs user threads ({} reads/point)",
            scale.ops
        ),
    );
    row(
        "threads",
        &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
    );
    for kind in SystemKind::comparison_set() {
        let mut cells = Vec::new();
        for &t in &threads {
            let inst = build(kind, &scale);
            driver::fill(&inst.store, scale.keyspace, &key, &value);
            let m = run_ops(
                &inst.store,
                DbBench::ReadRandom,
                scale.keyspace,
                scale.ops / t as u64,
                t,
                &key,
                &value,
            );
            cells.push(format!("{:.1}", m.kops()));
        }
        row(kind.name(), &cells);
    }

    banner(
        "Figure 12(b)",
        &format!(
            "random-write Kops/s vs user threads ({} writes/point)",
            scale.ops
        ),
    );
    row(
        "threads",
        &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
    );
    for kind in SystemKind::comparison_set() {
        let mut cells = Vec::new();
        for &t in &threads {
            // CacheKV gets 4 flush threads here, as multi-thread writes
            // shift the bottleneck to flushing (paper text for Exp#3/#5).
            let inst = cachekv_bench::build_with(kind, &scale, 4);
            let m = run_ops(
                &inst.store,
                DbBench::FillRandom,
                scale.keyspace,
                scale.ops / t as u64,
                t,
                &key,
                &value,
            );
            cells.push(format!("{:.1}", m.kops()));
        }
        row(kind.name(), &cells);
    }
}
