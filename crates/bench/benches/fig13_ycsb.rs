//! Exp#4 (Figure 13): YCSB Load/A/B/C/D/F, one thread, 16 B keys / 64 B
//! values.
//!
//! Expected shape: CacheKV ahead everywhere; the gap is largest on the
//! write-dominated YCSB-Load and narrows on the read-dominated B/C/D.

use cachekv_bench::{banner, build, row, BenchScale, SystemKind};
use cachekv_workloads::{driver, KeyGen, ValueGen, YcsbWorkload};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    let workloads = YcsbWorkload::all();

    banner(
        "Figure 13",
        &format!(
            "YCSB throughput (Kops/s) — 1 thread, {} requests/workload",
            scale.ops
        ),
    );
    row(
        "workload",
        &workloads
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>(),
    );
    for kind in SystemKind::comparison_set() {
        let mut cells = Vec::new();
        for w in workloads {
            let inst = build(kind, &scale);
            if w.needs_load_phase() {
                driver::fill(&inst.store, scale.keyspace, &key, &value);
            }
            let m = driver::run_ycsb(&inst.store, w, scale.keyspace, scale.ops, 1, &key, &value);
            cells.push(format!("{:.1}", m.kops()));
        }
        row(kind.name(), &cells);
    }
}
