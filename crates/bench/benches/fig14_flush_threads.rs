//! Exp#5 (Figure 14): CacheKV write throughput vs background flush threads.
//!
//! Expected shape: for a fixed user-thread count, throughput climbs with
//! flush threads and then plateaus (user threads become the bottleneck);
//! more user threads raise the plateau and want more flushers.

use cachekv_bench::{banner, build_with, row, BenchScale, SystemKind};
use cachekv_workloads::{run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    let flushers = [1usize, 2, 3, 4, 5, 6];
    let user_threads = [2usize, 4, 6];

    banner(
        "Figure 14",
        &format!("CacheKV random-write Kops/s — {} writes/point", scale.ops),
    );
    row(
        "flush threads",
        &flushers.iter().map(|f| f.to_string()).collect::<Vec<_>>(),
    );
    for &u in &user_threads {
        let mut cells = Vec::new();
        for &f in &flushers {
            // Smaller sub-MemTables so flushing is on the critical path at
            // this scale (the paper's 10M-op runs keep one flusher busy).
            let mut s = scale.clone();
            s.subtable_bytes = 256 << 10;
            let inst = build_with(SystemKind::CacheKv, &s, f);
            let m = run_ops(
                &inst.store,
                DbBench::FillRandom,
                s.keyspace,
                s.ops / u as u64,
                u,
                &key,
                &value,
            );
            cells.push(format!("{:.1}", m.kops()));
        }
        row(&format!("{u} user threads"), &cells);
    }
}
