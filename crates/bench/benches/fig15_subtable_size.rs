//! Exp#6 (Figure 15): impact of the sub-MemTable size (pool fixed at
//! 12 MiB, sizes 0.25-2 MiB, 12 user threads, 4 flush threads).
//!
//! Expected shape: (a) read throughput *rises* with sub-MemTable size
//! (fewer sub-skiplists to probe); (b) write throughput peaks mid-range
//! (small tables bottleneck on flushing, large tables starve parallelism).

use cachekv_bench::{banner, build_with, row, BenchScale, SystemKind};
use cachekv_workloads::{driver, run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    let sizes_kb = [256usize, 512, 1024, 2048];
    let user_threads = 12usize;
    let flushers = 4usize;

    banner("Figure 15", &format!("CacheKV vs sub-MemTable size — pool 12 MiB, {user_threads} user / {flushers} flush threads"));
    row(
        "sub-MemTable",
        &sizes_kb
            .iter()
            .map(|s| format!("{s} KiB"))
            .collect::<Vec<_>>(),
    );

    let mut read_cells = Vec::new();
    let mut write_cells = Vec::new();
    for &kb in &sizes_kb {
        let mut s = scale.clone();
        s.subtable_bytes = (kb as u64) << 10;
        // (a) random reads over a filled store.
        let inst = build_with(SystemKind::CacheKv, &s, flushers);
        driver::fill(&inst.store, s.keyspace, &key, &value);
        let m = run_ops(
            &inst.store,
            DbBench::ReadRandom,
            s.keyspace,
            s.ops / user_threads as u64,
            user_threads,
            &key,
            &value,
        );
        read_cells.push(format!("{:.1}", m.kops()));
        // (b) random writes on a fresh store.
        // Median of 3 repetitions: multi-threaded flush scheduling on a
        // small host is noisy.
        let mut reps: Vec<f64> = (0..3)
            .map(|_| {
                let inst = build_with(SystemKind::CacheKv, &s, flushers);
                run_ops(
                    &inst.store,
                    DbBench::FillRandom,
                    s.keyspace,
                    s.ops / user_threads as u64,
                    user_threads,
                    &key,
                    &value,
                )
                .kops()
            })
            .collect();
        reps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        write_cells.push(format!("{:.1}", reps[1]));
    }
    row("(a) random reads", &read_cells);
    row("(b) random writes", &write_cells);
}
