//! Exp#7 (Figure 16): impact of the sub-MemTable pool size (sub-MemTable
//! fixed at 1 MiB, pool 3-30 MiB, 12 user threads, 4 flush threads).
//!
//! Expected shape: (a) read throughput *declines* as the pool grows (more
//! sub-skiplists to probe); (b) write throughput climbs then flattens once
//! background flushing, not slot availability, limits it — "CacheKV is
//! also effective when given limited cache space".

use cachekv_bench::{banner, build_with, row, BenchScale, SystemKind};
use cachekv_workloads::{driver, run_ops, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);
    let pools_mb = [3usize, 6, 12, 18, 24, 30];
    let user_threads = 12usize;
    let flushers = 4usize;

    banner("Figure 16", &format!("CacheKV vs pool size — 1 MiB sub-MemTables, {user_threads} user / {flushers} flush threads"));
    row(
        "pool size",
        &pools_mb
            .iter()
            .map(|p| format!("{p} MiB"))
            .collect::<Vec<_>>(),
    );

    let mut read_cells = Vec::new();
    let mut write_cells = Vec::new();
    for &mb in &pools_mb {
        let mut s = scale.clone();
        s.pool_bytes = (mb as u64) << 20;
        s.subtable_bytes = 1 << 20;
        let inst = build_with(SystemKind::CacheKv, &s, flushers);
        driver::fill(&inst.store, s.keyspace, &key, &value);
        let m = run_ops(
            &inst.store,
            DbBench::ReadRandom,
            s.keyspace,
            s.ops / user_threads as u64,
            user_threads,
            &key,
            &value,
        );
        read_cells.push(format!("{:.1}", m.kops()));
        // Median of 3 repetitions: multi-threaded flush scheduling on a
        // small host is noisy.
        let mut reps: Vec<f64> = (0..3)
            .map(|_| {
                let inst = build_with(SystemKind::CacheKv, &s, flushers);
                run_ops(
                    &inst.store,
                    DbBench::FillRandom,
                    s.keyspace,
                    s.ops / user_threads as u64,
                    user_threads,
                    &key,
                    &value,
                )
                .kops()
            })
            .collect();
        reps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        write_cells.push(format!("{:.1}", reps[1]));
    }
    row("(a) random reads", &read_cells);
    row("(b) random writes", &write_cells);
}
