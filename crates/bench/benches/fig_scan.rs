//! Range-scan throughput: YCSB-E (95% scans / 5% inserts, zipfian start
//! keys, uniform lengths 1..=100) through the wire protocol over the
//! in-process loopback transport, plus a direct-engine scan microbench.
//!
//! Every wire scan pays framing, CRC, the cross-shard fan-out/merge, and
//! paging; the engine rows isolate the merged-cursor cost itself. The
//! artifact carries `core.scan.*` and `server.scan*` instruments that
//! `validate_metrics` checks for scan coverage.

use cachekv_bench::{banner, build, row, BenchScale, Instance, MetricsSink, SystemKind};
use cachekv_lsm::KvStore;
use cachekv_server::{KvClient, KvServer, LoopbackTransport, RemoteStore, ServerConfig};
use cachekv_workloads::{driver, KeyGen, ValueGen, YcsbWorkload};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 2;
const THREADS: usize = 4;

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);

    banner(
        "Scan",
        &format!(
            "loopback server — {SHARDS} shards, {THREADS} client threads, YCSB-E range scans, {} requests",
            scale.ops
        ),
    );

    let insts: Vec<Instance> = (0..SHARDS)
        .map(|_| build(SystemKind::CacheKv, &scale))
        .collect();
    let stores: Vec<Arc<dyn KvStore>> = insts.iter().map(|i| i.store.clone()).collect();
    let transport = LoopbackTransport::new();
    let server = KvServer::start(stores, transport.clone(), ServerConfig::default());
    let client = Arc::new(KvClient::connect(
        transport.connect().expect("loopback dial"),
    ));
    let remote: Arc<dyn KvStore> = Arc::new(RemoteStore::new(client.clone()));

    driver::fill(&remote, scale.keyspace, &key, &value);

    // A few point reads so the server artifact carries its full latency
    // decomposition (the validator requires get/put histogram samples).
    let mut kbuf = vec![0u8; key.width()];
    for id in 0..32u64.min(scale.keyspace) {
        key.key_into(id, &mut kbuf);
        let _ = client.get(&kbuf).expect("warmup get");
    }

    let ops_per_thread = (scale.ops / THREADS as u64).max(1);
    let m = driver::run_ycsb(
        &remote,
        YcsbWorkload::E,
        scale.keyspace,
        ops_per_thread,
        THREADS,
        &key,
        &value,
    );
    remote.quiesce(); // PING(sync): drain queues, quiesce every shard

    row(
        "YCSB-E over wire",
        &[format!("{:.1} Kops/s", m.kops()), format!("{} ops", m.ops)],
    );
    let export = server.obs().registry.export();
    let h = &export.histograms["server.scan_ns"];
    row(
        "server.scan_ns",
        &[
            format!("p50 {}ns", h.p50()),
            format!("p95 {}ns", h.p95()),
            format!("p99 {}ns", h.p99()),
            format!("n={}", h.count),
        ],
    );
    row(
        "scan volume",
        &[
            format!("{} scans", export.counters["server.scans"]),
            format!("{} items", export.counters["server.scan.items"]),
        ],
    );

    // Direct-engine scan microbench on shard 0: fixed-length scans over
    // the fill population, no wire in the way.
    let engine = &insts[0].store;
    let mut sbuf = vec![0u8; key.width()];
    for len in [10usize, 100] {
        let rounds = 1_000u64;
        let start = Instant::now();
        let mut items = 0usize;
        for i in 0..rounds {
            key.key_into((i * 37) % scale.keyspace, &mut sbuf);
            items += engine.scan(&sbuf, &[], len).expect("engine scan").len();
        }
        let ns = start.elapsed().as_nanos() as u64 / rounds;
        row(
            &format!("engine scan len={len}"),
            &[format!("{ns}ns/scan"), format!("{items} items")],
        );
    }

    let mut sink = MetricsSink::new("fig_scan");
    sink.record_json(
        "CacheKV-server/loopback/ycsb-e",
        &server.merged_snapshot_json(),
    );
    for (i, inst) in insts.iter().enumerate() {
        sink.record(&format!("CacheKV/shard{i}"), inst);
    }
    sink.write();
    server.shutdown();
}
