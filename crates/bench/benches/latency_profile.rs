//! Extension beyond the paper: per-operation latency percentiles.
//!
//! The paper reports throughput only; this profile shows *why* — CacheKV's
//! lock-free, flush-free write path has a flat latency distribution while
//! the baselines' p99 balloons with MemTable rotations and per-write
//! flushes.

use cachekv_bench::{banner, build, row, BenchScale, SystemKind};
use cachekv_workloads::{driver, run_ops_with_latency, DbBench, KeyGen, ValueGen};

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);

    banner(
        "Latency profile",
        &format!(
            "per-op write/read latency (µs), 1 thread, {} ops",
            scale.ops
        ),
    );
    row(
        "system",
        &[
            "w p50".into(),
            "w p99".into(),
            "w mean".into(),
            "r p50".into(),
            "r p99".into(),
        ],
    );
    for kind in SystemKind::comparison_set() {
        let inst = build(kind, &scale);
        let (_, wlat) = run_ops_with_latency(
            &inst.store,
            DbBench::FillRandom,
            scale.keyspace,
            scale.ops,
            1,
            &key,
            &value,
        );
        driver::fill(&inst.store, scale.keyspace, &key, &value);
        let (_, rlat) = run_ops_with_latency(
            &inst.store,
            DbBench::ReadRandom,
            scale.keyspace,
            scale.ops / 2,
            1,
            &key,
            &value,
        );
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
        row(
            kind.name(),
            &[
                us(wlat.p50()),
                us(wlat.p99()),
                us(wlat.mean()),
                us(rlat.p50()),
                us(rlat.p99()),
            ],
        );
    }
}
