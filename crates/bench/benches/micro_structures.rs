//! Criterion microbenchmarks of the core data structures: the skiplist in
//! DRAM vs simulated PMem, XPBuffer streaming vs scattered writes, the
//! sub-MemTable append path, and the PMem B+-tree.

use cachekv::subtable::SubTable;
use cachekv_baselines::bptree::BpTree;
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::kv::{pack_meta, EntryKind};
use cachekv_lsm::{DramSpace, FlushMode, PmemSpace, SkipList};
use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn hier() -> Arc<Hierarchy> {
    // Counting clock: criterion measures the simulator's own CPU cost.
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
    ));
    Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
}

fn bench_skiplist(c: &mut Criterion) {
    let mut g = c.benchmark_group("skiplist");
    g.bench_function("insert_dram", |b| {
        let mut i = 0u64;
        let mut list = SkipList::new(DramSpace::new(256 << 20));
        b.iter(|| {
            let key = format!("key{:012}", i * 7919 % 1_000_000);
            list.insert(key.as_bytes(), pack_meta(i + 1, EntryKind::Put), &[0u8; 16])
                .unwrap();
            i += 1;
        });
    });
    g.bench_function("insert_pmem_clflush", |b| {
        let mut i = 0u64;
        let h = hier();
        let mut list = SkipList::new(PmemSpace::new(h, 1 << 20, 128 << 20, FlushMode::Clflush));
        b.iter(|| {
            let key = format!("key{:012}", i * 7919 % 1_000_000);
            list.insert(key.as_bytes(), pack_meta(i + 1, EntryKind::Put), &[0u8; 16])
                .unwrap();
            i += 1;
        });
    });
    g.bench_function("get_dram", |b| {
        let mut list = SkipList::new(DramSpace::new(64 << 20));
        for i in 0..100_000u64 {
            list.insert(
                format!("key{i:012}").as_bytes(),
                pack_meta(i + 1, EntryKind::Put),
                &[0u8; 16],
            )
            .unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key{:012}", i * 31 % 100_000);
            black_box(list.get_latest(key.as_bytes()));
            i += 1;
        });
    });
    g.finish();
}

fn bench_xpbuffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("xpbuffer");
    g.bench_function("streaming_cachelines", |b| {
        let dev = PmemDevice::new(PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()));
        let mut addr = 0u64;
        let cap = dev.capacity();
        b.iter(|| {
            dev.write_cacheline(addr % cap, &[7u8; 64]);
            addr += 64;
        });
    });
    g.bench_function("scattered_cachelines", |b| {
        let dev = PmemDevice::new(PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()));
        let cap = dev.capacity();
        let mut addr = 0u64;
        b.iter(|| {
            dev.write_cacheline(addr % cap, &[7u8; 64]);
            addr = addr.wrapping_add(0x9E37_79B9_7F4A_7C15) & !63;
        });
    });
    g.finish();
}

fn bench_subtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("subtable");
    g.bench_function("append_64b", |b| {
        let h = hier();
        h.cat_lock(0, 2 << 20);
        let st = SubTable::new(h, 0, 2 << 20);
        st.reset_free();
        st.try_acquire();
        let mut scratch = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            if st
                .append(
                    b"key0000000000001",
                    pack_meta(i + 1, EntryKind::Put),
                    &[5u8; 64],
                    &mut scratch,
                )
                .unwrap()
                == cachekv::subtable::Append::Full
            {
                st.seal();
                st.reset_free();
                st.try_acquire();
            }
            i += 1;
        });
    });
    g.finish();
}

fn bench_bptree(c: &mut Criterion) {
    let mut g = c.benchmark_group("bptree");
    g.bench_function("insert_pmem", |b| {
        let h = hier();
        let mut t = BpTree::create(PmemSpace::new(h, 0, 128 << 20, FlushMode::Clflush));
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key{:012}", i * 7919 % 10_000_000);
            t.insert(key.as_bytes(), &[0u8; 16]).unwrap();
            i += 1;
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_skiplist, bench_xpbuffer, bench_subtable, bench_bptree
}
criterion_main!(benches);
