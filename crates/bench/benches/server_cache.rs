//! Interleaved A/B bench for the hot-key cache tier: high-skew Zipfian
//! GETs through the loopback server path, cache off vs cache on.
//!
//! **baseline** builds the server with the cache tier compiled out
//! (`HotCacheConfig::disabled()`): every GET probes the engine. **after**
//! is the shipped configuration: a 64 MiB round-invalidated hot cache in
//! front of the engine, so the Zipfian head is served from a replica slab
//! without touching the store. Both servers stay loaded for the whole run
//! and measurement trials alternate arm order (A,B then B,A, …) so drift
//! lands on both arms equally; the summary reports per-arm medians.
//!
//! Emits `BENCH_CACHE_BASELINE.json` / `BENCH_CACHE_AFTER.json` into
//! `$CACHEKV_AB_DIR` (default: the working directory) with per-trial
//! throughput and GET p50/p99, plus a `server_cache` MetricsSink artifact
//! whose `cache-on` / `cache-off` labels `validate_metrics` checks for a
//! positive (respectively exactly-zero) hit count.

use cachekv_bench::{banner, build, row, BenchScale, Instance, MetricsSink, SystemKind};
use cachekv_lsm::KvStore;
use cachekv_obs::Json;
use cachekv_server::{
    HotCacheConfig, KvClient, KvServer, LoopbackTransport, RemoteStore, ServerConfig,
};
use cachekv_workloads::{driver, run_ops_with_latency, DbBench, KeyGen, ValueGen};
use std::path::PathBuf;
use std::sync::Arc;

const SHARDS: usize = 2;
const THREADS: usize = 4;
const TRIALS: usize = 5;
const VALUE_BYTES: usize = 100;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// Cache tier absent: every GET crosses to the engine.
    Baseline,
    /// Hot-key cache in front of the GET path (the shipped default).
    After,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "cache-off",
            Variant::After => "cache-on",
        }
    }

    fn artifact(self) -> &'static str {
        match self {
            Variant::Baseline => "BASELINE",
            Variant::After => "AFTER",
        }
    }

    fn index(self) -> usize {
        match self {
            Variant::Baseline => 0,
            Variant::After => 1,
        }
    }

    fn cache(self) -> HotCacheConfig {
        match self {
            Variant::Baseline => HotCacheConfig::disabled(),
            Variant::After => HotCacheConfig::with_capacity(64 << 20),
        }
    }
}

/// One arm's standing service: engines, server, and a shared pipelined
/// client wrapped as a [`KvStore`] for the workload driver.
struct Arm {
    insts: Vec<Instance>,
    server: KvServer,
    remote: Arc<dyn KvStore>,
}

fn build_arm(v: Variant, scale: &BenchScale, key: &KeyGen, value: &ValueGen) -> Arm {
    let insts: Vec<Instance> = (0..SHARDS)
        .map(|_| build(SystemKind::CacheKv, scale))
        .collect();
    let stores: Vec<Arc<dyn KvStore>> = insts.iter().map(|i| i.store.clone()).collect();
    let transport = LoopbackTransport::new();
    let cfg = ServerConfig {
        cache: v.cache(),
        ..ServerConfig::default()
    };
    let server = KvServer::start(stores, transport.clone(), cfg);
    let client = Arc::new(KvClient::connect(
        transport.connect().expect("loopback dial"),
    ));
    let remote: Arc<dyn KvStore> = Arc::new(RemoteStore::new(client));
    driver::fill(&remote, scale.keyspace, key, value);
    remote.quiesce();
    Arm {
        insts,
        server,
        remote,
    }
}

/// Per-trial numbers for one arm.
#[derive(Default)]
struct Series {
    kops: Vec<f64>,
    p50_ns: Vec<u64>,
    p99_ns: Vec<u64>,
}

impl Series {
    fn median_kops(&self) -> f64 {
        let mut v = self.kops.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v.get(v.len() / 2).copied().unwrap_or(0.0)
    }

    fn median_p99(&self) -> u64 {
        let mut v = self.p99_ns.clone();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "kops",
                Json::Arr(self.kops.iter().map(|k| Json::Num(*k)).collect()),
            ),
            (
                "get_p50_ns",
                Json::Arr(self.p50_ns.iter().map(|n| Json::UInt(*n)).collect()),
            ),
            (
                "get_p99_ns",
                Json::Arr(self.p99_ns.iter().map(|n| Json::UInt(*n)).collect()),
            ),
            ("kops_median", Json::Num(self.median_kops())),
            ("get_p99_ns_median", Json::UInt(self.median_p99())),
        ])
    }
}

fn ab_dir() -> PathBuf {
    std::env::var("CACHEKV_AB_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn write_artifact(v: Variant, scale: &BenchScale, zipf: &Series, hit_rate: f64) {
    let doc = Json::obj(vec![
        ("variant", Json::Str(v.name().to_string())),
        ("ops", Json::UInt(scale.ops)),
        ("trials", Json::UInt(TRIALS as u64)),
        ("value_bytes", Json::UInt(VALUE_BYTES as u64)),
        ("cache_hit_rate", Json::Num(hit_rate)),
        ("read_zipfian", zipf.to_json()),
    ]);
    let path = ab_dir().join(format!("BENCH_CACHE_{}.json", v.artifact()));
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => println!("(A/B artifact: {})", path.display()),
        Err(e) => eprintln!("server_cache: cannot write {}: {e}", path.display()),
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(VALUE_BYTES);
    let mut sink = MetricsSink::new("server_cache");

    banner(
        "Service (cache A/B)",
        &format!(
            "Zipfian GETs over loopback — {SHARDS} shards, {THREADS} client threads, \
             hot cache off vs on, {} reads x {TRIALS} interleaved trials",
            scale.ops
        ),
    );

    let arms = [
        build_arm(Variant::Baseline, &scale, &key, &value),
        build_arm(Variant::After, &scale, &key, &value),
    ];
    let mut zipf = [Series::default(), Series::default()];

    let ops_per_thread = (scale.ops / THREADS as u64).max(1);
    for trial in 0..TRIALS {
        // Alternate which arm measures first each trial so machine drift
        // lands on both arms equally.
        let order = if trial % 2 == 0 {
            [Variant::Baseline, Variant::After]
        } else {
            [Variant::After, Variant::Baseline]
        };
        for &v in &order {
            let arm = &arms[v.index()];
            let (m, lat) = run_ops_with_latency(
                &arm.remote,
                DbBench::ReadZipfian,
                scale.keyspace,
                ops_per_thread,
                THREADS,
                &key,
                &value,
            );
            zipf[v.index()].kops.push(m.kops());
            zipf[v.index()].p50_ns.push(lat.p50());
            zipf[v.index()].p99_ns.push(lat.p99());
            sink.record_measurement(
                &format!("CacheKV-server/{}/readzipfian/t{trial}", v.name()),
                m.kops(),
                lat.p50(),
                lat.p99(),
            );
        }
    }

    let mut hit_rates = [0.0f64; 2];
    for &v in &[Variant::Baseline, Variant::After] {
        let arm = &arms[v.index()];
        arm.remote.quiesce();
        let export = arm.server.obs().registry.export();
        let hits = export.counters["server.cache.hits"];
        let misses = export.counters["server.cache.misses"];
        let probes = hits + misses;
        hit_rates[v.index()] = if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        };
        row(
            v.name(),
            &[
                format!("{:.1} kops", zipf[v.index()].median_kops()),
                format!("get p99 {:.1} µs", us(zipf[v.index()].median_p99())),
                format!("{:.1}% hit rate", hit_rates[v.index()] * 100.0),
                format!(
                    "{} invalidations",
                    export.counters["server.cache.invalidations"]
                ),
            ],
        );
        // The A/B is only meaningful if the arms behave as labeled.
        match v {
            Variant::Baseline => assert_eq!(hits, 0, "disabled cache served a hit"),
            Variant::After => assert!(hits > 0, "Zipfian read phase never hit the cache"),
        }
        assert_eq!(
            export.counters["server.cache.tripwire"], 0,
            "cache coherence tripwire fired"
        );
        sink.record_json(
            &format!("CacheKV-server/{}/readzipfian", v.name()),
            &arm.server.merged_snapshot_json(),
        );
        for (i, inst) in arm.insts.iter().enumerate() {
            sink.record(&format!("CacheKV/{}/shard{i}", v.name()), inst);
        }
        write_artifact(v, &scale, &zipf[v.index()], hit_rates[v.index()]);
    }

    println!(
        "get p99: {:.1} µs (cache off) -> {:.1} µs (cache on), hit rate {:.1}%",
        us(zipf[0].median_p99()),
        us(zipf[1].median_p99()),
        hit_rates[1] * 100.0,
    );

    sink.write();
    for arm in arms {
        arm.server.shutdown();
    }
}
