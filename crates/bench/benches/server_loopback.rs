//! Service-layer throughput: YCSB-A (50/50 GET/PUT) through the wire
//! protocol over the in-process loopback transport, 4 client threads
//! against a 2-shard group-committing server.
//!
//! Unlike the figure benches (which call the engine directly), every
//! operation here pays framing, CRC, routing, and the submission queue —
//! the artifact's `server.*` histograms are the service-layer latency
//! decomposition, and the per-shard labels carry the usual engine
//! snapshots underneath.

use cachekv_bench::{banner, build, row, BenchScale, Instance, MetricsSink, SystemKind};
use cachekv_lsm::KvStore;
use cachekv_server::{KvClient, KvServer, LoopbackTransport, RemoteStore, ServerConfig};
use cachekv_workloads::{driver, KeyGen, ValueGen, YcsbWorkload};
use std::sync::Arc;

const SHARDS: usize = 2;
const THREADS: usize = 4;

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(64);

    banner(
        "Service",
        &format!(
            "loopback server — {SHARDS} shards, {THREADS} client threads, YCSB-A mixed GET/PUT, {} requests",
            scale.ops
        ),
    );

    let insts: Vec<Instance> = (0..SHARDS)
        .map(|_| build(SystemKind::CacheKv, &scale))
        .collect();
    let stores: Vec<Arc<dyn KvStore>> = insts.iter().map(|i| i.store.clone()).collect();
    let transport = LoopbackTransport::new();
    let server = KvServer::start(stores, transport.clone(), ServerConfig::default());
    let client = Arc::new(KvClient::connect(
        transport.connect().expect("loopback dial"),
    ));
    let remote: Arc<dyn KvStore> = Arc::new(RemoteStore::new(client));

    driver::fill(&remote, scale.keyspace, &key, &value);
    let ops_per_thread = (scale.ops / THREADS as u64).max(1);
    let m = driver::run_ycsb(
        &remote,
        YcsbWorkload::A,
        scale.keyspace,
        ops_per_thread,
        THREADS,
        &key,
        &value,
    );
    remote.quiesce(); // PING(sync): drain queues, quiesce every shard

    row(
        "YCSB-A over wire",
        &[format!("{:.1} Kops/s", m.kops()), format!("{} ops", m.ops)],
    );
    let export = server.obs().registry.export();
    for op in ["server.get_ns", "server.put_ns"] {
        let h = &export.histograms[op];
        row(
            op,
            &[
                format!("p50 {}ns", h.p50()),
                format!("p95 {}ns", h.p95()),
                format!("p99 {}ns", h.p99()),
                format!("n={}", h.count),
            ],
        );
    }
    let commits = export.counters["server.group_commit.commits"];
    let batch = &export.histograms["server.group_commit.batch_size"];
    row(
        "group commit",
        &[
            format!("{commits} rounds"),
            format!("{} entries", batch.sum),
            format!("p95 batch {}", batch.p95()),
        ],
    );

    let mut sink = MetricsSink::new("server_loopback");
    sink.record_json(
        "CacheKV-server/loopback/ycsb-a",
        &server.merged_snapshot_json(),
    );
    for (i, inst) in insts.iter().enumerate() {
        sink.record(&format!("CacheKV/shard{i}"), inst);
    }
    sink.write();
    server.shutdown();
}
