//! Interleaved A/B write benchmark for the housekeeping redesign.
//!
//! **baseline** emulates the pre-partitioned housekeeping contract: every
//! SC round re-folds the *entire* global index (`sc_full_fold`), one
//! housekeeping worker, and an admission watermark at its floor so writers
//! block whenever maintenance lags — the synchronous-housekeeping stall
//! the redesign removes. **after** is the shipped configuration:
//! range-partitioned incremental SC, parallel per-segment merges, generous
//! watermark. Trials are interleaved with the arm order alternating each
//! trial (A,B then B,A, …) so machine drift lands on both arms equally;
//! the summary reports per-arm medians.
//!
//! Emits `BENCH_WRITE_BASELINE.json` / `BENCH_WRITE_AFTER.json` into
//! `$CACHEKV_AB_DIR` (default: the working directory) carrying per-trial
//! throughput and put p50/p99, plus a `write_ab` MetricsSink artifact.
//!
//! A final **hot-range skew** section asserts the tentpole's cost model
//! from the per-round merge-bytes counter: with updates confined to a
//! narrow key range, an SC round merges only the overlapped segments, so
//! per-round merge bytes stay well below total index size.

use cachekv::{CacheKv, CacheKvConfig, Techniques};
use cachekv_bench::{
    banner, bench_storage, fresh_hierarchy, row, BenchScale, Instance, MetricsSink, SystemKind,
};
use cachekv_lsm::KvStore;
use cachekv_obs::Json;
use cachekv_workloads::{
    fill, run_ops_with_latency, run_ycsb_with_latency, DbBench, KeyGen, ValueGen, YcsbWorkload,
};
use std::path::PathBuf;
use std::sync::Arc;

const TRIALS: usize = 6;
const VALUE_BYTES: usize = 100;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Baseline,
    After,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::After => "after",
        }
    }

    fn index(self) -> usize {
        match self {
            Variant::Baseline => 0,
            Variant::After => 1,
        }
    }
}

/// Dump threshold scaled so maintenance actually runs several times within
/// one measured phase (and the baseline watermark — floored at 2x this —
/// actually gates) at any `CACHEKV_OPS`.
fn dump_threshold(scale: &BenchScale, key: &KeyGen) -> u64 {
    let per_put = (key.width() + VALUE_BYTES + 16) as u64;
    (scale.ops * per_put / 5).clamp(64 << 10, 4 << 20)
}

fn build_variant(v: Variant, scale: &BenchScale, key: &KeyGen) -> (Arc<CacheKv>, Instance) {
    let cfg = CacheKvConfig {
        // Smaller sub-MemTables than the figure defaults so one measured
        // phase crosses many seal→flush→SC→dump cycles: the A/B compares
        // maintenance regimes, which a near-maintenance-free run can't.
        pool_bytes: 8 << 20,
        subtable_bytes: 256 << 10,
        min_subtable_bytes: 128 << 10,
        flush_threads: 1,
        techniques: Techniques::all(),
        storage: bench_storage(),
        num_cores: 24,
        dump_threshold_bytes: dump_threshold(scale, key),
        ..CacheKvConfig::default()
    };
    let cfg = match v {
        // Monolithic refold, one worker, watermark at its floor
        // (2 x dump threshold): writers block whenever maintenance lags.
        Variant::Baseline => CacheKvConfig {
            sc_full_fold: true,
            housekeeping_threads: 1,
            hk_backpressure_bytes: 1,
            ..cfg
        },
        Variant::After => cfg,
    };
    let hier = fresh_hierarchy();
    let db = Arc::new(CacheKv::create(hier.clone(), cfg));
    let store: Arc<dyn KvStore> = db.clone();
    (
        db,
        Instance {
            kind: SystemKind::CacheKv,
            store,
            hier,
        },
    )
}

/// One phase's per-trial numbers.
#[derive(Default)]
struct Series {
    kops: Vec<f64>,
    p50_ns: Vec<u64>,
    p99_ns: Vec<u64>,
}

impl Series {
    fn mean_kops(&self) -> f64 {
        if self.kops.is_empty() {
            0.0
        } else {
            self.kops.iter().sum::<f64>() / self.kops.len() as f64
        }
    }

    fn median_kops(&self) -> f64 {
        let mut v = self.kops.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v.get(v.len() / 2).copied().unwrap_or(0.0)
    }

    fn median_p99(&self) -> u64 {
        let mut v = self.p99_ns.clone();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "kops",
                Json::Arr(self.kops.iter().map(|k| Json::Num(*k)).collect()),
            ),
            (
                "put_p50_ns",
                Json::Arr(self.p50_ns.iter().map(|n| Json::UInt(*n)).collect()),
            ),
            (
                "put_p99_ns",
                Json::Arr(self.p99_ns.iter().map(|n| Json::UInt(*n)).collect()),
            ),
            ("kops_mean", Json::Num(self.mean_kops())),
            ("kops_median", Json::Num(self.median_kops())),
            ("put_p99_ns_median", Json::UInt(self.median_p99())),
        ])
    }
}

fn ab_dir() -> PathBuf {
    std::env::var("CACHEKV_AB_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn write_artifact(variant: Variant, scale: &BenchScale, fillrandom: &Series, ycsb_a: &Series) {
    let doc = Json::obj(vec![
        ("variant", Json::Str(variant.name().to_string())),
        ("ops", Json::UInt(scale.ops)),
        ("trials", Json::UInt(TRIALS as u64)),
        ("value_bytes", Json::UInt(VALUE_BYTES as u64)),
        ("fillrandom", fillrandom.to_json()),
        ("ycsb_a", ycsb_a.to_json()),
    ]);
    let path = ab_dir().join(format!(
        "BENCH_WRITE_{}.json",
        variant.name().to_ascii_uppercase()
    ));
    match std::fs::write(&path, format!("{doc}\n")) {
        Ok(()) => println!("(A/B artifact: {})", path.display()),
        Err(e) => eprintln!("write_ab: cannot write {}: {e}", path.display()),
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Hot-range skew: per-round SC merge bytes must stay well below total
/// index size once updates are confined to a narrow range.
fn skew_section(scale: &BenchScale, key: &KeyGen, sink: &mut MetricsSink) {
    banner(
        "write A/B (skew)",
        "hot-range updates — per-round merge bytes vs index size",
    );
    let cfg = CacheKvConfig {
        pool_bytes: scale.pool_bytes,
        subtable_bytes: 64 << 10,
        min_subtable_bytes: 32 << 10,
        flush_threads: 1,
        techniques: Techniques::all(),
        storage: bench_storage(),
        num_cores: 24,
        // Keep the whole index resident: no dump retires it mid-measure.
        dump_threshold_bytes: 256 << 20,
        hk_backpressure_bytes: 0,
        sc_segment_target_entries: 2048,
        ..CacheKvConfig::default()
    };
    let hier = fresh_hierarchy();
    let db = Arc::new(CacheKv::create(hier.clone(), cfg));
    let store: Arc<dyn KvStore> = db.clone();

    let wide = scale.ops.max(20_000);
    let hot = 1024u64.min(wide / 8);
    let rounds = 10u64;
    let value = ValueGen::new(VALUE_BYTES);
    fill(&store, wide, key, &value);

    let before = db.snapshot();
    let mut kbuf = vec![0u8; key.width()];
    let mut vbuf = Vec::new();
    for r in 0..rounds {
        for i in 0..hot {
            // Fixed-stride permutation of the hot range, varied per round.
            let id = (i * 389 + r * 17) % hot;
            key.key_into(id, &mut kbuf);
            value.value_into(id, &mut vbuf);
            store.put(&kbuf, &vbuf).expect("skew put");
        }
    }
    db.quiesce();
    let after = db.snapshot();

    let merge_bytes = after.memory.counters["core.sc.merge_bytes"]
        - before.memory.counters["core.sc.merge_bytes"];
    let sc_rounds =
        after.memory.counters["core.sc.merges"] - before.memory.counters["core.sc.merges"];
    let index_bytes = after.memory.gauges["core.sc.index_bytes"].max(0) as u64;
    assert!(sc_rounds > 0, "hot phase never triggered an SC round");
    assert!(
        index_bytes > 0,
        "index retired mid-measure; raise dump threshold"
    );
    let per_round = merge_bytes / sc_rounds;
    row(
        "hot range",
        &[
            format!("{hot} of {wide} keys"),
            format!("{sc_rounds} SC rounds"),
            format!("{} KiB/round merged", per_round >> 10),
            format!("{} KiB index", index_bytes >> 10),
        ],
    );
    // The partitioned-index cost model: a round touches only overlapped
    // segments, so per-round merge bytes ≪ total index size.
    assert!(
        per_round < index_bytes / 2,
        "SC round cost not proportional to touched range: \
         {per_round} B/round vs {index_bytes} B index"
    );
    let inst = Instance {
        kind: SystemKind::CacheKv,
        store,
        hier,
    };
    sink.record("CacheKV/skew/hot_range", &inst);
    // Measurement row reuses the slots: "kops" carries the per-round merge
    // fraction, the latency pair carries (per-round bytes, index bytes).
    sink.record_measurement(
        "CacheKV/skew/per_round_merge_fraction",
        per_round as f64 / index_bytes as f64,
        per_round,
        index_bytes,
    );
}

fn main() {
    let scale = BenchScale::default();
    let key = KeyGen::paper();
    let value = ValueGen::new(VALUE_BYTES);
    let mut sink = MetricsSink::new("write_ab");

    banner(
        "write A/B",
        &format!(
            "monolithic+gated baseline vs partitioned off-path SC — {} ops, {TRIALS} interleaved trials",
            scale.ops
        ),
    );

    let variants = [Variant::Baseline, Variant::After];
    let mut fillrandom = [Series::default(), Series::default()];
    let mut ycsb_a = [Series::default(), Series::default()];

    for trial in 0..TRIALS {
        // Alternate which arm runs first each trial: on a small host any
        // monotonic drift (thermal, cache warmup, background load decay)
        // would otherwise land systematically on the second arm.
        let order = if trial % 2 == 0 {
            [Variant::Baseline, Variant::After]
        } else {
            [Variant::After, Variant::Baseline]
        };
        for &v in &order {
            let vi = v.index();
            // fillrandom: 1 writer thread, fresh store per trial.
            let (db, inst) = build_variant(v, &scale, &key);
            let (m, lat) = run_ops_with_latency(
                &inst.store,
                DbBench::FillRandom,
                scale.keyspace,
                scale.ops,
                1,
                &key,
                &value,
            );
            db.quiesce();
            fillrandom[vi].kops.push(m.kops());
            fillrandom[vi].p50_ns.push(lat.p50());
            fillrandom[vi].p99_ns.push(lat.p99());
            let label = format!("CacheKV/{}/fillrandom/t{trial}", v.name());
            sink.record(&label, &inst);
            sink.record_measurement(&label, m.kops(), lat.p50(), lat.p99());
            drop(inst);

            // YCSB-A (50/50 update/read), 2 threads over a loaded store.
            // Kept low relative to typical core counts: heavy thread
            // oversubscription turns put-tail samples into scheduler noise.
            let (db, inst) = build_variant(v, &scale, &key);
            fill(&inst.store, scale.keyspace, &key, &value);
            let (m, lat) = run_ycsb_with_latency(
                &inst.store,
                YcsbWorkload::A,
                scale.keyspace,
                scale.ops / 2,
                2,
                &key,
                &value,
            );
            db.quiesce();
            ycsb_a[vi].kops.push(m.kops());
            ycsb_a[vi].p50_ns.push(lat.p50());
            ycsb_a[vi].p99_ns.push(lat.p99());
            let label = format!("CacheKV/{}/ycsb_a/t{trial}", v.name());
            sink.record(&label, &inst);
            sink.record_measurement(&label, m.kops(), lat.p50(), lat.p99());
        }
    }

    for (phase, series) in [("fillrandom", &fillrandom), ("YCSB-A", &ycsb_a)] {
        row(
            phase,
            &variants
                .iter()
                .enumerate()
                .map(|(vi, v)| {
                    format!(
                        "{}: {:.1} kops, p99 {:.1} µs",
                        v.name(),
                        series[vi].median_kops(),
                        us(series[vi].median_p99())
                    )
                })
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "put p99: fillrandom {:.1} µs -> {:.1} µs, YCSB-A {:.1} µs -> {:.1} µs",
        us(fillrandom[0].median_p99()),
        us(fillrandom[1].median_p99()),
        us(ycsb_a[0].median_p99()),
        us(ycsb_a[1].median_p99()),
    );

    for (vi, &v) in variants.iter().enumerate() {
        write_artifact(v, &scale, &fillrandom[vi], &ycsb_a[vi]);
    }

    skew_section(&scale, &key, &mut sink);
    sink.write();
}
