//! Validate a figure metrics artifact produced by [`cachekv_bench::MetricsSink`].
//!
//! Usage: `validate_metrics [path ...]` — defaults to
//! `$CACHEKV_METRICS_DIR/fig10_write_throughput.json`. Exits nonzero if any
//! artifact is missing, unparseable, or lacks the expected keys; CI's bench
//! smoke job runs this after a scaled-down figure run.

use cachekv_bench::MetricsSink;
use cachekv_obs::{Json, StatsSnapshot};

fn fail(msg: &str) -> ! {
    eprintln!("validate_metrics: {msg}");
    std::process::exit(1);
}

fn validate(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{} is not valid JSON: {e}", path.display())));

    let fig = doc
        .get("figure")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("missing top-level \"figure\" string"));
    let systems = doc
        .get("systems")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| fail("missing top-level \"systems\" object"));
    if systems.is_empty() {
        fail("\"systems\" is empty — no snapshots were recorded");
    }

    let mut instrumented = 0usize;
    // Aggregated read-path pruning counters (fig11 must prove each fires).
    let mut read_probes = 0u64;
    let mut fence_skips = 0u64;
    let mut bloom_skips = 0u64;
    let mut lsm_short_circuits = 0u64;
    // Aggregated housekeeping counters (write_ab must prove the scheduler
    // actually carried the maintenance work off the put path).
    let mut hk_rounds = 0u64;
    let mut sc_merges = 0u64;
    let mut sc_merge_bytes = 0u64;
    // Aggregated service-layer counters (server artifacts must prove the
    // group-commit pipeline actually carried the workload).
    let mut server_requests = 0u64;
    let mut server_commits = 0u64;
    let mut server_labels = 0usize;
    // Aggregated range-scan counters (scan artifacts must prove the merged
    // cursor actually ran, both engine-side and over the wire).
    let mut core_scans = 0u64;
    let mut core_scan_items = 0u64;
    let mut server_scans = 0u64;
    let mut server_scan_items = 0u64;
    // Hot-key cache A/B accounting (cache artifacts must prove the enabled
    // arm hit and the disabled arm stayed exactly cold).
    let mut cache_on_hits = 0u64;
    let mut cache_on_labels = 0usize;
    let mut cache_off_labels = 0usize;
    for (label, entry) in systems {
        // Every entry must be a full StatsSnapshot document.
        let snap = StatsSnapshot::from_json(entry)
            .unwrap_or_else(|e| fail(&format!("{label}: bad snapshot: {e}")));
        if snap.system.is_empty() {
            fail(&format!("{label}: empty \"system\" name"));
        }
        if !snap.device.media_write_bytes.is_multiple_of(256) {
            fail(&format!(
                "{label}: media_write_bytes {} is not XPLine (256 B) aligned",
                snap.device.media_write_bytes
            ));
        }
        if snap.device.xpbuffer_hits + snap.device.xpbuffer_misses != snap.device.cpu_writes {
            fail(&format!("{label}: xpbuffer hits+misses != cpu_writes"));
        }
        if !snap.memory.counters.is_empty() {
            instrumented += 1;
        }
        // The contention-free read path must never take a CoreSlot mutex:
        // any snapshot carrying the tripwire counter must report zero.
        if let Some(&locks) = snap.memory.counters.get("core.read.core_lock_acquisitions") {
            if locks != 0 {
                fail(&format!(
                    "{label}: read path took {locks} CoreSlot locks (must be 0)"
                ));
            }
        }
        // Hot-cache coherence tripwire: any snapshot carrying it must
        // report zero — a nonzero count means a cached value survived past
        // a round publication it should not have.
        if let Some(&trip) = snap.memory.counters.get("server.cache.tripwire") {
            if trip != 0 {
                fail(&format!(
                    "{label}: cache coherence tripwire fired {trip} times (must be 0)"
                ));
            }
        }
        let label_cache_hits = snap
            .memory
            .counters
            .get("server.cache.hits")
            .copied()
            .unwrap_or(0);
        if label.contains("cache-on") {
            cache_on_labels += 1;
            cache_on_hits += label_cache_hits;
        } else if label.contains("cache-off") {
            cache_off_labels += 1;
            if label_cache_hits != 0 {
                fail(&format!(
                    "{label}: disabled cache reported {label_cache_hits} hits (must be 0)"
                ));
            }
        }
        // Off-path housekeeping tripwire: a put must never execute a
        // compaction merge inline.
        if let Some(&inline) = snap.memory.counters.get("core.housekeeping.inline_merges") {
            if inline != 0 {
                fail(&format!(
                    "{label}: {inline} compaction merges ran inline on the put path (must be 0)"
                ));
            }
        }
        for (counter, slot) in [
            ("core.read.probes", &mut read_probes),
            ("core.read.fence_skips", &mut fence_skips),
            ("core.read.bloom_skips", &mut bloom_skips),
            ("core.read.lsm_short_circuits", &mut lsm_short_circuits),
            ("core.housekeeping.rounds", &mut hk_rounds),
            ("core.sc.merges", &mut sc_merges),
            ("core.sc.merge_bytes", &mut sc_merge_bytes),
            ("core.scans", &mut core_scans),
            ("core.scan.items", &mut core_scan_items),
            ("server.scans", &mut server_scans),
            ("server.scan.items", &mut server_scan_items),
        ] {
            *slot += snap.memory.counters.get(counter).copied().unwrap_or(0);
        }
        // CacheKV snapshots must carry the per-phase put breakdown.
        if snap.system == "CacheKV" {
            for key in [
                "core.put.phase.lock_wait.total_ns",
                "core.put.phase.alloc.total_ns",
                "core.put.phase.index_update.total_ns",
                "core.put.phase.data_copy.total_ns",
                "core.put.phase.persist.total_ns",
                "core.put.ops",
                "core.puts",
                "core.seals",
                "core.flushes",
            ] {
                if !snap.memory.counters.contains_key(key) {
                    fail(&format!("{label}: missing memory counter {key}"));
                }
            }
            if !snap
                .memory
                .histograms
                .contains_key("core.put.phase.persist.ns")
            {
                fail(&format!("{label}: missing persist phase histogram"));
            }
            // The housekeeping scheduler instruments must all be present:
            // stall accounting, queue depth, and the per-segment merge
            // latency distribution.
            for key in [
                "core.housekeeping.rounds",
                "core.housekeeping.stalls",
                "core.housekeeping.put_stalls",
                "core.housekeeping.put_stall_ns",
                "core.housekeeping.sync_dropped",
                "core.housekeeping.inline_merges",
                "core.sc.merge_bytes",
            ] {
                if !snap.memory.counters.contains_key(key) {
                    fail(&format!("{label}: missing memory counter {key}"));
                }
            }
            if !snap
                .memory
                .gauges
                .contains_key("core.housekeeping.queue_depth")
            {
                fail(&format!(
                    "{label}: missing gauge core.housekeeping.queue_depth"
                ));
            }
            let merge_hist = snap
                .memory
                .histograms
                .get("core.sc.segment_merge_ns")
                .unwrap_or_else(|| {
                    fail(&format!(
                        "{label}: missing histogram core.sc.segment_merge_ns"
                    ))
                });
            // Consistency: SC rounds that merged at least one segment must
            // have recorded per-segment merge latencies.
            let merged = snap
                .memory
                .counters
                .get("core.sc.segments_merged")
                .copied()
                .unwrap_or(0);
            if merged > 0 && merge_hist.count == 0 {
                fail(&format!(
                    "{label}: {merged} segments merged but core.sc.segment_merge_ns is empty"
                ));
            }
        }
        // Server-merged snapshots must carry the full service-layer
        // instrument set: per-op latency histograms with samples, the
        // group-commit batch-size and queue-depth distributions, and the
        // live queue-depth gauge.
        if snap.system.ends_with("-server") {
            server_labels += 1;
            server_requests += snap
                .memory
                .counters
                .get("server.requests")
                .copied()
                .unwrap_or(0);
            server_commits += snap
                .memory
                .counters
                .get("server.group_commit.commits")
                .copied()
                .unwrap_or(0);
            for key in [
                "server.get_ns",
                "server.put_ns",
                "server.group_commit.batch_size",
                "server.group_commit.queue_depth",
            ] {
                let h = snap
                    .memory
                    .histograms
                    .get(key)
                    .unwrap_or_else(|| fail(&format!("{label}: missing histogram {key}")));
                if h.count == 0 {
                    fail(&format!("{label}: histogram {key} recorded no samples"));
                }
            }
            if !snap.memory.gauges.contains_key("server.queue_depth") {
                fail(&format!("{label}: missing gauge server.queue_depth"));
            }
        }
    }
    if instrumented == 0 {
        fail("no snapshot carries memory-component metrics");
    }
    // Read-figure artifacts must demonstrate every pruning mechanism
    // firing: fences, blooms, and the LSM short-circuit.
    if fig.contains("read") {
        for (name, total) in [
            ("core.read.probes", read_probes),
            ("core.read.fence_skips", fence_skips),
            ("core.read.bloom_skips", bloom_skips),
            ("core.read.lsm_short_circuits", lsm_short_circuits),
        ] {
            if total == 0 {
                fail(&format!("read figure: {name} never fired across labels"));
            }
        }
    }
    // The A/B write artifact must prove the off-path scheduler carried the
    // maintenance: rounds ran, segments merged, and bytes were accounted.
    if fig.contains("write_ab") {
        for (name, total) in [
            ("core.housekeeping.rounds", hk_rounds),
            ("core.sc.merges", sc_merges),
            ("core.sc.merge_bytes", sc_merge_bytes),
        ] {
            if total == 0 {
                fail(&format!(
                    "write_ab figure: {name} never fired across labels"
                ));
            }
        }
    }
    // Write figures must carry put-tail measurements, not just snapshots.
    if fig.contains("write") {
        let measurements = doc
            .get("measurements")
            .and_then(Json::as_obj)
            .unwrap_or_else(|| fail("write figure: missing top-level \"measurements\" object"));
        if measurements.is_empty() {
            fail("write figure: \"measurements\" is empty");
        }
        for (label, m) in measurements {
            let p99 = m
                .get("put_p99_ns")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| fail(&format!("{label}: measurement missing put_p99_ns")));
            if p99 == 0 {
                fail(&format!("{label}: put_p99_ns is zero"));
            }
        }
    }
    // Scan artifacts must demonstrate the full range-scan path: engine
    // merged-cursor scans yielding items, and SCAN requests served over
    // the wire.
    if fig.contains("scan") {
        for (name, total) in [
            ("core.scans", core_scans),
            ("core.scan.items", core_scan_items),
            ("server.scans", server_scans),
            ("server.scan.items", server_scan_items),
        ] {
            if total == 0 {
                fail(&format!("scan figure: {name} never fired across labels"));
            }
        }
    }
    // Cache A/B artifacts must carry both arms, with the Zipfian phase
    // actually hitting on the enabled arm (the disabled arm's exact-zero
    // check ran per-label above).
    if fig.contains("cache") {
        if cache_on_labels == 0 || cache_off_labels == 0 {
            fail("cache figure: missing cache-on and/or cache-off labels");
        }
        if cache_on_hits == 0 {
            fail("cache figure: server.cache.hits is zero across cache-on labels");
        }
    }
    // Server artifacts must contain at least one merged server snapshot
    // that actually served traffic through group commit.
    if fig.contains("server") {
        if server_labels == 0 {
            fail("server figure: no label carries a *-server merged snapshot");
        }
        if server_requests == 0 {
            fail("server figure: server.requests is zero across labels");
        }
        if server_commits == 0 {
            fail("server figure: server.group_commit.commits is zero across labels");
        }
    }
    println!(
        "validate_metrics: {} ok — figure {fig}, {} labels, {instrumented} instrumented",
        path.display(),
        systems.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        validate(&MetricsSink::dir().join("fig10_write_throughput.json"));
    } else {
        for a in &args {
            validate(std::path::Path::new(a));
        }
    }
}
