//! Validate a figure metrics artifact produced by [`cachekv_bench::MetricsSink`].
//!
//! Usage: `validate_metrics [path ...]` — defaults to
//! `$CACHEKV_METRICS_DIR/fig10_write_throughput.json`. Exits nonzero if any
//! artifact is missing, unparseable, or lacks the expected keys; CI's bench
//! smoke job runs this after a scaled-down figure run.

use cachekv_bench::MetricsSink;
use cachekv_obs::{Json, StatsSnapshot};

fn fail(msg: &str) -> ! {
    eprintln!("validate_metrics: {msg}");
    std::process::exit(1);
}

fn validate(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{} is not valid JSON: {e}", path.display())));

    let fig = doc
        .get("figure")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("missing top-level \"figure\" string"));
    let systems = doc
        .get("systems")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| fail("missing top-level \"systems\" object"));
    if systems.is_empty() {
        fail("\"systems\" is empty — no snapshots were recorded");
    }

    let mut instrumented = 0usize;
    for (label, entry) in systems {
        // Every entry must be a full StatsSnapshot document.
        let snap = StatsSnapshot::from_json(entry)
            .unwrap_or_else(|e| fail(&format!("{label}: bad snapshot: {e}")));
        if snap.system.is_empty() {
            fail(&format!("{label}: empty \"system\" name"));
        }
        if !snap.device.media_write_bytes.is_multiple_of(256) {
            fail(&format!(
                "{label}: media_write_bytes {} is not XPLine (256 B) aligned",
                snap.device.media_write_bytes
            ));
        }
        if snap.device.xpbuffer_hits + snap.device.xpbuffer_misses != snap.device.cpu_writes {
            fail(&format!("{label}: xpbuffer hits+misses != cpu_writes"));
        }
        if !snap.memory.counters.is_empty() {
            instrumented += 1;
        }
        // CacheKV snapshots must carry the per-phase put breakdown.
        if snap.system == "CacheKV" {
            for key in [
                "core.put.phase.lock_wait.total_ns",
                "core.put.phase.alloc.total_ns",
                "core.put.phase.index_update.total_ns",
                "core.put.phase.data_copy.total_ns",
                "core.put.phase.persist.total_ns",
                "core.put.ops",
                "core.puts",
                "core.seals",
                "core.flushes",
            ] {
                if !snap.memory.counters.contains_key(key) {
                    fail(&format!("{label}: missing memory counter {key}"));
                }
            }
            if !snap
                .memory
                .histograms
                .contains_key("core.put.phase.persist.ns")
            {
                fail(&format!("{label}: missing persist phase histogram"));
            }
        }
    }
    if instrumented == 0 {
        fail("no snapshot carries memory-component metrics");
    }
    println!(
        "validate_metrics: {} ok — figure {fig}, {} labels, {instrumented} instrumented",
        path.display(),
        systems.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        validate(&MetricsSink::dir().join("fig10_write_throughput.json"));
    } else {
        for a in &args {
            validate(std::path::Path::new(a));
        }
    }
}
