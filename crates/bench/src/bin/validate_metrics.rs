//! Validate a figure metrics artifact produced by [`cachekv_bench::MetricsSink`].
//!
//! Usage: `validate_metrics [path ...]` — defaults to
//! `$CACHEKV_METRICS_DIR/fig10_write_throughput.json`. Exits nonzero if any
//! artifact is missing, unparseable, or lacks the expected keys; CI's bench
//! smoke job runs this after a scaled-down figure run.

use cachekv_bench::MetricsSink;
use cachekv_obs::{Json, StatsSnapshot};

fn fail(msg: &str) -> ! {
    eprintln!("validate_metrics: {msg}");
    std::process::exit(1);
}

fn validate(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{} is not valid JSON: {e}", path.display())));

    let fig = doc
        .get("figure")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("missing top-level \"figure\" string"));
    let systems = doc
        .get("systems")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| fail("missing top-level \"systems\" object"));
    if systems.is_empty() {
        fail("\"systems\" is empty — no snapshots were recorded");
    }

    let mut instrumented = 0usize;
    // Aggregated read-path pruning counters (fig11 must prove each fires).
    let mut read_probes = 0u64;
    let mut fence_skips = 0u64;
    let mut bloom_skips = 0u64;
    let mut lsm_short_circuits = 0u64;
    for (label, entry) in systems {
        // Every entry must be a full StatsSnapshot document.
        let snap = StatsSnapshot::from_json(entry)
            .unwrap_or_else(|e| fail(&format!("{label}: bad snapshot: {e}")));
        if snap.system.is_empty() {
            fail(&format!("{label}: empty \"system\" name"));
        }
        if !snap.device.media_write_bytes.is_multiple_of(256) {
            fail(&format!(
                "{label}: media_write_bytes {} is not XPLine (256 B) aligned",
                snap.device.media_write_bytes
            ));
        }
        if snap.device.xpbuffer_hits + snap.device.xpbuffer_misses != snap.device.cpu_writes {
            fail(&format!("{label}: xpbuffer hits+misses != cpu_writes"));
        }
        if !snap.memory.counters.is_empty() {
            instrumented += 1;
        }
        // The contention-free read path must never take a CoreSlot mutex:
        // any snapshot carrying the tripwire counter must report zero.
        if let Some(&locks) = snap.memory.counters.get("core.read.core_lock_acquisitions") {
            if locks != 0 {
                fail(&format!(
                    "{label}: read path took {locks} CoreSlot locks (must be 0)"
                ));
            }
        }
        for (counter, slot) in [
            ("core.read.probes", &mut read_probes),
            ("core.read.fence_skips", &mut fence_skips),
            ("core.read.bloom_skips", &mut bloom_skips),
            ("core.read.lsm_short_circuits", &mut lsm_short_circuits),
        ] {
            *slot += snap.memory.counters.get(counter).copied().unwrap_or(0);
        }
        // CacheKV snapshots must carry the per-phase put breakdown.
        if snap.system == "CacheKV" {
            for key in [
                "core.put.phase.lock_wait.total_ns",
                "core.put.phase.alloc.total_ns",
                "core.put.phase.index_update.total_ns",
                "core.put.phase.data_copy.total_ns",
                "core.put.phase.persist.total_ns",
                "core.put.ops",
                "core.puts",
                "core.seals",
                "core.flushes",
            ] {
                if !snap.memory.counters.contains_key(key) {
                    fail(&format!("{label}: missing memory counter {key}"));
                }
            }
            if !snap
                .memory
                .histograms
                .contains_key("core.put.phase.persist.ns")
            {
                fail(&format!("{label}: missing persist phase histogram"));
            }
        }
    }
    if instrumented == 0 {
        fail("no snapshot carries memory-component metrics");
    }
    // Read-figure artifacts must demonstrate every pruning mechanism
    // firing: fences, blooms, and the LSM short-circuit.
    if fig.contains("read") {
        for (name, total) in [
            ("core.read.probes", read_probes),
            ("core.read.fence_skips", fence_skips),
            ("core.read.bloom_skips", bloom_skips),
            ("core.read.lsm_short_circuits", lsm_short_circuits),
        ] {
            if total == 0 {
                fail(&format!("read figure: {name} never fired across labels"));
            }
        }
    }
    println!(
        "validate_metrics: {} ok — figure {fig}, {} labels, {instrumented} instrumented",
        path.display(),
        systems.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        validate(&MetricsSink::dir().join("fig10_write_throughput.json"));
    } else {
        for a in &args {
            validate(std::path::Path::new(a));
        }
    }
}
