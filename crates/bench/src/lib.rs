//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every benchmark target in `benches/` regenerates one figure of the
//! paper's evaluation (Section IV). Systems are built over a fresh
//! simulated hierarchy whose device latencies are *injected in wall-clock
//! time* ([`ClockMode::Spin`]), so real lock contention and index-update CPU
//! cost compose with simulated PMem costs exactly as Section II-C describes.
//!
//! Scale: the paper dispatches 10 M requests on a 48-core testbed; the
//! simulator defaults to `CACHEKV_OPS` = 30 000 requests per data point
//! (override with the env var) — shapes, not absolute numbers, are the
//! reproduction target.

use cachekv::{CacheKv, CacheKvConfig, Techniques};
use cachekv_baselines::{BaselineOptions, NoveLsm, SlmDb};
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::{KvStore, LsmConfig, LsmTree, StorageConfig};
use cachekv_obs::{Json, StatsSnapshot};
use cachekv_pmem::{Clock, ClockMode, PmemConfig, PmemDevice};
use std::path::PathBuf;
use std::sync::Arc;

/// Every system the paper's figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Full CacheKV (PCSM + LIU + SC).
    CacheKv,
    /// Per-core sub-MemTables only (diligent index updates).
    Pcsm,
    /// PCSM + lazy index update, no sub-skiplist compaction.
    PcsmLiu,
    NoveLsm,
    NoveLsmNoFlush,
    NoveLsmCache,
    SlmDb,
    SlmDbNoFlush,
    SlmDbCache,
    /// The classic LevelDB-like reference engine.
    LevelDbLike,
}

impl SystemKind {
    /// Display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::CacheKv => "CacheKV",
            SystemKind::Pcsm => "PCSM",
            SystemKind::PcsmLiu => "PCSM+LIU",
            SystemKind::NoveLsm => "NoveLSM",
            SystemKind::NoveLsmNoFlush => "NoveLSM-w/o-flush",
            SystemKind::NoveLsmCache => "NoveLSM-cache",
            SystemKind::SlmDb => "SLM-DB",
            SystemKind::SlmDbNoFlush => "SLM-DB-w/o-flush",
            SystemKind::SlmDbCache => "SLM-DB-cache",
            SystemKind::LevelDbLike => "LevelDB-like",
        }
    }

    /// The Exp#1/#2 line-up.
    pub fn exp1_set() -> Vec<SystemKind> {
        vec![
            SystemKind::NoveLsm,
            SystemKind::NoveLsmCache,
            SystemKind::SlmDb,
            SystemKind::SlmDbCache,
            SystemKind::Pcsm,
            SystemKind::PcsmLiu,
            SystemKind::CacheKv,
        ]
    }

    /// The Ob1 (Figure 4) line-up.
    pub fn ob1_set() -> Vec<SystemKind> {
        vec![
            SystemKind::NoveLsm,
            SystemKind::NoveLsmNoFlush,
            SystemKind::NoveLsmCache,
            SystemKind::SlmDb,
            SystemKind::SlmDbNoFlush,
            SystemKind::SlmDbCache,
        ]
    }

    /// The multi-system comparison set (Exp#3/#4).
    pub fn comparison_set() -> Vec<SystemKind> {
        vec![
            SystemKind::NoveLsm,
            SystemKind::NoveLsmCache,
            SystemKind::SlmDb,
            SystemKind::SlmDbCache,
            SystemKind::CacheKv,
        ]
    }
}

/// Benchmark-scale knobs (env-overridable).
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Requests per data point.
    pub ops: u64,
    /// Key-space size.
    pub keyspace: u64,
    /// NoveLSM MemTable size (the paper's is 4 GiB — effectively never
    /// rotating within a run; scaled likewise here).
    pub memtable_bytes: u64,
    /// SLM-DB MemTable size. The paper's default is 64 MiB against
    /// NoveLSM's 4 GiB, i.e. SLM-DB rotates ~64x more often and pays its
    /// per-flush B+-tree insertions far more frequently — the scaled ratio
    /// is preserved.
    pub slmdb_memtable_bytes: u64,
    /// CacheKV pool size.
    pub pool_bytes: u64,
    /// CacheKV sub-MemTable size.
    pub subtable_bytes: u64,
}

impl Default for BenchScale {
    fn default() -> Self {
        let ops = std::env::var("CACHEKV_OPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30_000);
        BenchScale {
            ops,
            keyspace: ops,
            memtable_bytes: 8 << 20,
            slmdb_memtable_bytes: 512 << 10,
            pool_bytes: 12 << 20,
            subtable_bytes: 2 << 20,
        }
    }
}

/// A constructed system plus its hierarchy (for counters).
pub struct Instance {
    pub kind: SystemKind,
    pub store: Arc<dyn KvStore>,
    pub hier: Arc<Hierarchy>,
}

impl Instance {
    /// A [`StatsSnapshot`] JSON document for this system. Instrumented
    /// stores report through [`KvStore::snapshot_json`]; uninstrumented
    /// ones fall back to a device/cache-only snapshot so every label in a
    /// figure artifact carries at least the hardware counters.
    pub fn snapshot_json(&self) -> String {
        self.store.snapshot_json().unwrap_or_else(|| {
            StatsSnapshot {
                system: self.kind.name().to_string(),
                device: self.hier.pmem_stats(),
                cache: self.hier.cache_stats(),
                memory: Default::default(),
                lsm: Default::default(),
            }
            .to_json_string()
        })
    }
}

/// Collects per-label [`StatsSnapshot`] documents during a figure run and
/// writes them as one JSON artifact to `$CACHEKV_METRICS_DIR/<fig>.json`
/// (default `target/metrics/<fig>.json`).
pub struct MetricsSink {
    fig: String,
    systems: Vec<(String, Json)>,
    measurements: Vec<(String, Json)>,
}

impl MetricsSink {
    pub fn new(fig: &str) -> Self {
        MetricsSink {
            fig: fig.to_string(),
            systems: Vec::new(),
            measurements: Vec::new(),
        }
    }

    /// Directory metric artifacts land in.
    pub fn dir() -> PathBuf {
        std::env::var("CACHEKV_METRICS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/metrics"))
    }

    /// Record `inst`'s snapshot under `label` (e.g. `"CacheKV/random/64B"`).
    pub fn record(&mut self, label: &str, inst: &Instance) {
        self.record_json(label, &inst.snapshot_json());
    }

    /// Record a throughput + put-latency measurement under `label`, so the
    /// artifact carries the tail (p50/p99), not just the mean implied by
    /// throughput. Written as a top-level `"measurements"` object.
    pub fn record_measurement(&mut self, label: &str, kops: f64, p50_ns: u64, p99_ns: u64) {
        self.measurements.push((
            label.to_string(),
            Json::obj(vec![
                ("kops", Json::Num(kops)),
                ("put_p50_ns", Json::UInt(p50_ns)),
                ("put_p99_ns", Json::UInt(p99_ns)),
            ]),
        ));
    }

    /// Record a pre-rendered snapshot document under `label`.
    pub fn record_json(&mut self, label: &str, json: &str) {
        let doc = Json::parse(json).unwrap_or_else(|e| panic!("bad snapshot for {label}: {e}"));
        self.systems.push((label.to_string(), doc));
    }

    /// Write the combined artifact; returns its path (best-effort: I/O
    /// errors are reported to stderr, not fatal to the figure run).
    pub fn write(&self) -> Option<PathBuf> {
        let mut systems = std::collections::BTreeMap::new();
        for (label, doc) in &self.systems {
            systems.insert(label.clone(), doc.clone());
        }
        let mut fields = vec![
            ("figure", Json::Str(self.fig.clone())),
            ("labels", Json::UInt(self.systems.len() as u64)),
            ("systems", Json::Obj(systems)),
        ];
        if !self.measurements.is_empty() {
            let mut measurements = std::collections::BTreeMap::new();
            for (label, doc) in &self.measurements {
                measurements.insert(label.clone(), doc.clone());
            }
            fields.push(("measurements", Json::Obj(measurements)));
        }
        let doc = Json::obj(fields);
        let dir = Self::dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("metrics sink: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{}.json", self.fig));
        match std::fs::write(&path, format!("{doc}\n")) {
            Ok(()) => {
                println!("(metrics artifact: {})", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("metrics sink: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Build a fresh hierarchy with spin-injected latencies.
pub fn fresh_hierarchy() -> Arc<Hierarchy> {
    fresh_hierarchy_with_cache(CacheConfig::paper().capacity)
}

/// Build a fresh hierarchy with a non-default LLC size (Figure 4 uses a
/// smaller cache so the `-w/o-flush` variants actually evict within a
/// scaled run).
pub fn fresh_hierarchy_with_cache(cache_bytes: usize) -> Arc<Hierarchy> {
    let clock = Arc::new(Clock::new(ClockMode::Spin));
    let dev = Arc::new(PmemDevice::with_clock(PmemConfig::paper_scaled(), clock));
    Arc::new(Hierarchy::new(
        dev,
        CacheConfig::paper().with_capacity(cache_bytes),
    ))
}

/// Storage component configuration used by every system in the benches.
pub fn bench_storage() -> StorageConfig {
    StorageConfig::default()
}

/// Build one system at the given scale.
pub fn build(kind: SystemKind, scale: &BenchScale) -> Instance {
    build_with(kind, scale, 1)
}

/// Build one system, with `flush_threads` background flushers for CacheKV
/// variants (Exp#5).
pub fn build_with(kind: SystemKind, scale: &BenchScale, flush_threads: usize) -> Instance {
    build_on(fresh_hierarchy(), kind, scale, flush_threads)
}

/// Build one system over a caller-supplied hierarchy.
pub fn build_on(
    hier: Arc<Hierarchy>,
    kind: SystemKind,
    scale: &BenchScale,
    flush_threads: usize,
) -> Instance {
    let store: Arc<dyn KvStore> = match kind {
        SystemKind::CacheKv | SystemKind::Pcsm | SystemKind::PcsmLiu => {
            let techniques = match kind {
                SystemKind::Pcsm => Techniques::pcsm(),
                SystemKind::PcsmLiu => Techniques::pcsm_liu(),
                _ => Techniques::all(),
            };
            let cfg = CacheKvConfig {
                pool_bytes: scale.pool_bytes,
                subtable_bytes: scale.subtable_bytes,
                flush_threads,
                techniques,
                storage: bench_storage(),
                // The paper's testbed exposes 24 cores per socket.
                num_cores: 24,
                ..CacheKvConfig::default()
            };
            Arc::new(CacheKv::create(hier.clone(), cfg))
        }
        SystemKind::NoveLsm => Arc::new(NoveLsm::new(
            hier.clone(),
            BaselineOptions::vanilla().with_memtable_bytes(scale.memtable_bytes),
            bench_storage(),
        )),
        SystemKind::NoveLsmNoFlush => Arc::new(NoveLsm::new(
            hier.clone(),
            BaselineOptions::without_flush().with_memtable_bytes(scale.memtable_bytes),
            bench_storage(),
        )),
        SystemKind::NoveLsmCache => Arc::new(NoveLsm::new(
            hier.clone(),
            BaselineOptions::cache().with_memtable_bytes(scale.memtable_bytes),
            bench_storage(),
        )),
        SystemKind::SlmDb => Arc::new(SlmDb::new(
            hier.clone(),
            BaselineOptions::vanilla().with_memtable_bytes(scale.slmdb_memtable_bytes),
        )),
        SystemKind::SlmDbNoFlush => Arc::new(SlmDb::new(
            hier.clone(),
            BaselineOptions::without_flush().with_memtable_bytes(scale.slmdb_memtable_bytes),
        )),
        SystemKind::SlmDbCache => Arc::new(SlmDb::new(
            hier.clone(),
            BaselineOptions::cache()
                .with_memtable_bytes(scale.slmdb_memtable_bytes)
                .with_segment_bytes(scale.slmdb_memtable_bytes),
        )),
        SystemKind::LevelDbLike => Arc::new(LsmTree::create(
            hier.clone(),
            LsmConfig {
                memtable_bytes: scale.memtable_bytes,
                storage: bench_storage(),
            },
        )),
    };
    Instance { kind, store, hier }
}

/// Print a figure header.
pub fn banner(fig: &str, what: &str) {
    println!("\n=== {fig}: {what} ===");
    println!("(simulated hierarchy; shapes — not absolute numbers — reproduce the paper)");
}

/// Print one aligned series row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_builds_and_serves() {
        let scale = BenchScale {
            ops: 100,
            keyspace: 100,
            memtable_bytes: 1 << 20,
            slmdb_memtable_bytes: 256 << 10,
            pool_bytes: 1 << 20,
            subtable_bytes: 256 << 10,
        };
        for kind in [
            SystemKind::CacheKv,
            SystemKind::Pcsm,
            SystemKind::PcsmLiu,
            SystemKind::NoveLsm,
            SystemKind::NoveLsmNoFlush,
            SystemKind::NoveLsmCache,
            SystemKind::SlmDb,
            SystemKind::SlmDbNoFlush,
            SystemKind::SlmDbCache,
            SystemKind::LevelDbLike,
        ] {
            let inst = build(kind, &scale);
            inst.store.put(b"key000000000001", b"hello").unwrap();
            assert_eq!(
                inst.store.get(b"key000000000001").unwrap(),
                Some(b"hello".to_vec()),
                "{}",
                kind.name()
            );
        }
    }
}
