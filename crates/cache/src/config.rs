//! LLC geometry configuration.

use cachekv_pmem::CACHELINE;

/// Geometry of the simulated last-level cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total capacity in bytes of the normal (unlocked) partition.
    pub capacity: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Number of lock shards the sets are spread over; bounds simulator-side
    /// contention in multi-threaded runs.
    pub shards: usize,
}

impl CacheConfig {
    /// Paper testbed geometry: a 36 MiB shared LLC, 12-way.
    pub fn paper() -> Self {
        CacheConfig {
            capacity: 36 << 20,
            ways: 12,
            shards: 64,
        }
    }

    /// A tiny cache for unit tests: 16 KiB, 4-way, 1 shard (deterministic
    /// eviction order across a whole run).
    pub fn small() -> Self {
        CacheConfig {
            capacity: 16 << 10,
            ways: 4,
            shards: 1,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let sets = self.capacity / (self.ways * CACHELINE);
        assert!(sets > 0, "cache too small for its associativity");
        sets
    }

    /// Builder-style capacity override.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = CacheConfig::paper();
        assert_eq!(c.num_sets(), (36 << 20) / (12 * 64));
    }

    #[test]
    fn small_geometry() {
        let c = CacheConfig::small();
        assert_eq!(c.num_sets(), 64);
    }
}
