//! The memory-hierarchy facade used by every store implementation.

use crate::config::CacheConfig;
use crate::llc::Llc;
use crate::stats::CacheStats;
use cachekv_pmem::faults::TripReport;
use cachekv_pmem::{FaultPlan, PersistDomain, PmemDevice, PmemStats};
use std::sync::{Arc, Weak};

/// Simulated LLC + PMem device, presented as one persistent address space.
///
/// All persistent loads and stores go through this type; DRAM-resident
/// structures (CacheKV's sub-skiplists, global metadata) are ordinary Rust
/// memory and never touch it — exactly the split the paper argues for.
pub struct Hierarchy {
    llc: Arc<Llc>,
}

impl Hierarchy {
    /// Build a hierarchy over `dev` with the given cache geometry.
    pub fn new(dev: Arc<PmemDevice>, cache: CacheConfig) -> Self {
        let llc = Arc::new(Llc::new(dev, cache));
        // Under eADR the LLC is inside the persistence domain: when an
        // injected fault trips, its dirty lines must reach the device
        // before the survivor image is captured. The observer holds a Weak
        // so the device does not keep its own cache alive (no Arc cycle).
        if llc.device().domain() == PersistDomain::Eadr {
            let weak: Weak<Llc> = Arc::downgrade(&llc);
            llc.device().set_fault_observer(Box::new(move || {
                if let Some(llc) = weak.upgrade() {
                    llc.writeback_all();
                }
            }));
        }
        Hierarchy { llc }
    }

    /// Arm fault injection on the underlying device (see
    /// [`cachekv_pmem::faults`]).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.llc.device().install_fault_plan(plan);
    }

    /// True from the instant an injected fault has tripped.
    pub fn fault_tripped(&self) -> bool {
        self.llc.device().fault_tripped()
    }

    /// Take the survivor image captured by the last fault trip.
    pub fn take_trip_report(&self) -> Option<TripReport> {
        self.llc.device().take_trip_report()
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        self.llc.device()
    }

    /// Cache geometry.
    pub fn cache_config(&self) -> &CacheConfig {
        self.llc.config()
    }

    /// Cached write (write-back, write-allocate).
    #[inline]
    pub fn store(&self, addr: u64, data: &[u8]) {
        self.llc.store(addr, data);
    }

    /// Cached read.
    #[inline]
    pub fn load(&self, addr: u64, buf: &mut [u8]) {
        self.llc.load(addr, buf);
    }

    /// Load exactly `len` bytes into a fresh buffer.
    pub fn load_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.load(addr, &mut v);
        v
    }

    /// Store a little-endian u64.
    #[inline]
    pub fn store_u64(&self, addr: u64, v: u64) {
        self.store(addr, &v.to_le_bytes());
    }

    /// Load a little-endian u64.
    #[inline]
    pub fn load_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.load(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Store a little-endian u32.
    #[inline]
    pub fn store_u32(&self, addr: u64, v: u32) {
        self.store(addr, &v.to_le_bytes());
    }

    /// Load a little-endian u32.
    #[inline]
    pub fn load_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.load(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// `clflush` the lines covering `[addr, addr+len)`.
    #[inline]
    pub fn clflush(&self, addr: u64, len: usize) {
        self.llc.clflush(addr, len);
    }

    /// `clwb` the lines covering `[addr, addr+len)`.
    #[inline]
    pub fn clwb(&self, addr: u64, len: usize) {
        self.llc.clwb(addr, len);
    }

    /// Non-temporal (cache-bypassing, streaming) store.
    #[inline]
    pub fn nt_store(&self, addr: u64, data: &[u8]) {
        self.llc.nt_store(addr, data);
    }

    /// Persistence barrier.
    #[inline]
    pub fn sfence(&self) {
        self.llc.sfence();
    }

    /// Atomic 64-bit compare-and-swap on a CAT-locked location. Returns the
    /// previous value; the swap happened iff it equals `expected`.
    #[inline]
    pub fn cas_u64(&self, addr: u64, expected: u64, new: u64) -> u64 {
        self.llc.cas_u64(addr, expected, new)
    }

    /// Pin `[start, start+len)` into the CAT-locked cache partition.
    pub fn cat_lock(&self, start: u64, len: u64) {
        self.llc.lock_region(start, len);
    }

    /// Release a CAT-locked region, writing dirty lines back.
    pub fn cat_unlock(&self, start: u64, len: u64) {
        self.llc.unlock_region(start, len);
    }

    /// Currently locked regions.
    pub fn cat_regions(&self) -> Vec<(u64, u64)> {
        self.llc.locked_ranges()
    }

    /// Simulate a platform power failure. Under eADR every dirty cacheline
    /// reaches the media (the persistence domain includes the caches); under
    /// ADR cache contents are lost. Either way the cache ends up empty and
    /// CAT regions must be re-established, matching Section III-E.
    pub fn power_fail(&self) {
        match self.llc.device().domain() {
            PersistDomain::Eadr => self.llc.writeback_all(),
            PersistDomain::Adr => {}
        }
        self.llc.invalidate_all();
        self.llc.device().power_fail();
    }

    /// Cache counters snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.llc.stats.snapshot()
    }

    /// Device counters snapshot.
    pub fn pmem_stats(&self) -> PmemStats {
        self.llc.device().stats()
    }

    /// Reset both cache and device counters.
    pub fn reset_stats(&self) {
        self.llc.stats.reset();
        self.llc.device().reset_stats();
    }

    /// Number of dirty cachelines currently held (test helper).
    pub fn dirty_lines(&self) -> usize {
        self.llc.dirty_lines()
    }

    /// Whether a line is cached (test helper).
    pub fn contains_line(&self, addr: u64) -> bool {
        self.llc.contains_line(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_pmem::PmemConfig;

    fn hier(domain: PersistDomain) -> Hierarchy {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small().with_domain(domain)));
        Hierarchy::new(dev, CacheConfig::small())
    }

    #[test]
    fn store_load_roundtrip_u64() {
        let h = hier(PersistDomain::Eadr);
        h.store_u64(128, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(h.load_u64(128), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn store_is_cached_not_on_media() {
        let h = hier(PersistDomain::Eadr);
        h.store(0, &[7u8; 64]);
        // Device has not seen the write yet (write-back cache).
        assert_eq!(h.pmem_stats().cpu_writes, 0);
        assert_eq!(h.dirty_lines(), 1);
    }

    #[test]
    fn clwb_writes_back_and_retains() {
        let h = hier(PersistDomain::Eadr);
        h.store(0, &[7u8; 64]);
        h.clwb(0, 64);
        h.sfence();
        assert_eq!(h.pmem_stats().cpu_writes, 1);
        assert!(h.contains_line(0), "clwb retains the line");
        assert_eq!(h.dirty_lines(), 0);
    }

    #[test]
    fn clflush_writes_back_and_invalidates() {
        let h = hier(PersistDomain::Eadr);
        h.store(0, &[7u8; 64]);
        h.clflush(0, 64);
        assert_eq!(h.pmem_stats().cpu_writes, 1);
        assert!(!h.contains_line(0));
    }

    #[test]
    fn eadr_power_fail_preserves_dirty_lines() {
        let h = hier(PersistDomain::Eadr);
        h.store(256, b"survives");
        h.power_fail();
        let mut buf = [0u8; 8];
        h.load(256, &mut buf);
        assert_eq!(&buf, b"survives");
    }

    #[test]
    fn adr_power_fail_loses_unflushed_lines() {
        let h = hier(PersistDomain::Adr);
        h.store(256, b"volatile");
        h.power_fail();
        let mut buf = [0u8; 8];
        h.load(256, &mut buf);
        assert_eq!(buf, [0u8; 8], "unflushed data lost under ADR");
    }

    #[test]
    fn adr_power_fail_keeps_flushed_lines() {
        let h = hier(PersistDomain::Adr);
        h.store(256, b"durable!");
        h.clwb(256, 8);
        h.sfence();
        h.power_fail();
        let mut buf = [0u8; 8];
        h.load(256, &mut buf);
        assert_eq!(&buf, b"durable!");
    }

    #[test]
    fn locked_region_never_evicted_by_traffic() {
        let h = hier(PersistDomain::Eadr);
        h.cat_lock(0, 4096);
        h.store(0, &[1u8; 64]);
        // Thrash the whole small cache several times over.
        let cap = 16 << 10;
        for i in 0..(cap / 64) * 8 {
            h.store((1 << 19) | ((i as u64 * 64) % (1 << 18)), &[2u8; 64]);
        }
        assert!(h.contains_line(0), "locked line survived thrashing");
        // And the device never saw it.
        let mut buf = [0u8; 64];
        buf.fill(0);
        h.load(0, &mut buf);
        assert_eq!(buf, [1u8; 64]);
    }

    #[test]
    fn nt_store_bypasses_cache_and_reaches_device() {
        let h = hier(PersistDomain::Eadr);
        let payload = vec![9u8; 512];
        h.nt_store(4096, &payload);
        assert!(!h.contains_line(4096));
        // 8 cachelines reached the device.
        assert_eq!(h.pmem_stats().cpu_writes, 8);
        let mut buf = vec![0u8; 512];
        h.load(4096, &mut buf);
        assert_eq!(buf, payload);
    }

    #[test]
    fn nt_store_over_dirty_cached_line_is_coherent() {
        let h = hier(PersistDomain::Eadr);
        h.store(0, &[1u8; 128]);
        h.nt_store(0, &[2u8; 64]); // overwrite first line only
        let mut buf = [0u8; 128];
        h.load(0, &mut buf);
        assert!(buf[..64].iter().all(|&b| b == 2));
        assert!(buf[64..].iter().all(|&b| b == 1));
    }

    #[test]
    fn nt_store_full_lines_combine_perfectly() {
        let h = hier(PersistDomain::Eadr);
        h.nt_store(0, &vec![5u8; 4096]);
        let s = h.pmem_stats();
        // Streaming in order: 3 of every 4 cachelines hit an open XPLine.
        assert!((s.write_hit_ratio() - 0.75).abs() < 0.01);
        assert_eq!(s.rmw_evictions, 0, "no read-modify-write for full lines");
    }

    #[test]
    fn unlock_region_writes_back_dirty_locked_lines() {
        let h = hier(PersistDomain::Adr);
        h.cat_lock(0, 4096);
        h.store(64, &[3u8; 64]);
        h.cat_unlock(0, 4096);
        assert_eq!(h.pmem_stats().cpu_writes, 1);
        h.power_fail();
        let mut buf = [0u8; 64];
        h.load(64, &mut buf);
        assert_eq!(buf, [3u8; 64], "unlock persisted the line even under ADR");
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let h = hier(PersistDomain::Eadr);
        h.cat_lock(0, 4096);
        h.store_u64(64, 10);
        assert_eq!(h.cas_u64(64, 10, 20), 10, "matched: swap happens");
        assert_eq!(h.load_u64(64), 20);
        assert_eq!(h.cas_u64(64, 10, 30), 20, "mismatch: no swap");
        assert_eq!(h.load_u64(64), 20);
    }

    #[test]
    fn cas_is_atomic_under_contention() {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let h = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        h.cat_lock(0, 4096);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    loop {
                        let cur = h.load_u64(128);
                        if h.cas_u64(128, cur, cur + 1) == cur {
                            break;
                        }
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.load_u64(128), 20_000);
    }

    #[test]
    fn cas_after_relock_sees_media_contents() {
        let h = hier(PersistDomain::Eadr);
        h.cat_lock(0, 4096);
        h.store_u64(192, 777);
        h.power_fail(); // eADR: value reaches media; CAT regions cleared
        h.cat_lock(0, 4096);
        assert_eq!(
            h.cas_u64(192, 777, 888),
            777,
            "CAS fetched the persisted value"
        );
        assert_eq!(h.load_u64(192), 888);
    }

    #[test]
    fn eadr_fault_trip_captures_dirty_cache_lines() {
        use cachekv_pmem::FaultPlan;
        let h = hier(PersistDomain::Eadr);
        // Dirty line stays in the LLC: the device has not seen it.
        h.store(512, b"in-cache");
        assert_eq!(h.pmem_stats().cpu_writes, 0);
        // Trip on an unrelated NT store (event 1).
        h.install_fault_plan(FaultPlan::at(1));
        h.nt_store(4096, &[9u8; 64]);
        assert!(h.fault_tripped());
        let report = h.take_trip_report().expect("tripped");
        let r = Arc::new(cachekv_pmem::PmemDevice::from_media(
            h.device().config().clone(),
            report.media,
        ));
        let mut buf = [0u8; 8];
        r.read(512, &mut buf);
        assert_eq!(
            &buf, b"in-cache",
            "eADR: dirty LLC line written back at trip"
        );
        let mut nt = [0u8; 64];
        r.read(4096, &mut nt);
        assert_eq!(nt, [9u8; 64], "the tripping event itself completed");
    }

    #[test]
    fn adr_fault_trip_loses_dirty_cache_lines() {
        use cachekv_pmem::FaultPlan;
        let h = hier(PersistDomain::Adr);
        h.store(512, b"volatile");
        h.install_fault_plan(FaultPlan::at(1));
        h.nt_store(4096, &[9u8; 64]);
        assert!(h.fault_tripped());
        let report = h.take_trip_report().expect("tripped");
        let r = cachekv_pmem::PmemDevice::from_media(h.device().config().clone(), report.media);
        let mut buf = [0u8; 8];
        r.read(512, &mut buf);
        assert_eq!(buf, [0u8; 8], "ADR: unflushed cache contents are lost");
    }

    #[test]
    fn partial_store_miss_preserves_neighbouring_bytes() {
        let h = hier(PersistDomain::Eadr);
        // Seed media directly through the hierarchy + flush.
        h.store(0, &[0xAAu8; 64]);
        h.clflush(0, 64);
        // Partial store to the evicted line must fetch and merge.
        h.store(10, &[0xBBu8; 4]);
        let mut buf = [0u8; 64];
        h.load(0, &mut buf);
        assert_eq!(&buf[10..14], &[0xBB; 4]);
        assert!(buf[..10].iter().all(|&b| b == 0xAA));
        assert!(buf[14..].iter().all(|&b| b == 0xAA));
    }
}
