//! Simulated CPU cache hierarchy over the simulated Optane PMem device.
//!
//! Models the pieces of the platform the CacheKV paper (ICDE 2023) relies on:
//!
//! * a set-associative, write-back **last-level cache** (64 B lines, LRU
//!   replacement) whose evictions dribble single cachelines into the PMem
//!   device in access-recency order — the mechanism that "reawakens" write
//!   amplification once flush instructions are removed (Figure 3(c), Ob1);
//! * **Intel CAT pseudo-locking**: address ranges can be locked into a
//!   reserved cache partition that normal traffic can never evict, which is
//!   how CacheKV pins its sub-MemTable pool (Section III-A);
//! * the x86 **persistence instructions** `clflush`, `clwb`, non-temporal
//!   stores, and `sfence`, each with its simulated cost;
//! * **ADR vs. eADR crash semantics**: on [`Hierarchy::power_fail`], dirty
//!   cachelines reach the media under eADR but are lost under ADR.
//!
//! The facade type is [`Hierarchy`]; all loads and stores that target the
//! persistent address space go through it.
//!
//! # Example
//!
//! ```
//! use cachekv_cache::{CacheConfig, Hierarchy};
//! use cachekv_pmem::{PmemConfig, PmemDevice};
//! use std::sync::Arc;
//!
//! let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
//! let h = Hierarchy::new(dev, CacheConfig::small());
//! h.store(0, b"hello persistent caches");
//! let mut buf = [0u8; 23];
//! h.load(0, &mut buf);
//! assert_eq!(&buf, b"hello persistent caches");
//! // eADR: the dirty line survives a crash without any clflush.
//! h.power_fail();
//! let mut after = [0u8; 23];
//! h.load(0, &mut after);
//! assert_eq!(&after, b"hello persistent caches");
//! ```

pub mod config;
pub mod hierarchy;
pub mod llc;
pub mod stats;

pub use config::CacheConfig;
pub use hierarchy::Hierarchy;
pub use stats::CacheStats;

pub use cachekv_pmem::CACHELINE;
