//! Set-associative LLC with LRU replacement and CAT-locked regions.
//!
//! Data in dirty lines is *newer than the media*: it only reaches the
//! [`PmemDevice`] on replacement, on an explicit `clflush`/`clwb`, or — under
//! eADR — on power failure. Locked regions model Intel CAT pseudo-locking: a
//! side partition that replacement never touches, used by CacheKV to pin the
//! sub-MemTable pool.

use crate::config::CacheConfig;
use crate::stats::CacheStatsCell;
use cachekv_pmem::{PmemDevice, CACHELINE};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

const LINE_MASK: u64 = !(CACHELINE as u64 - 1);

struct Line {
    tag: u64,
    data: [u8; CACHELINE],
    dirty: bool,
    tick: u64,
}

struct LockedLine {
    data: [u8; CACHELINE],
    dirty: bool,
}

struct Shard {
    /// Sets owned by this shard, indexed by `set_index / num_shards`.
    sets: Vec<Vec<Line>>,
    /// CAT-locked lines mapped to this shard.
    locked: HashMap<u64, LockedLine>,
    tick: u64,
}

/// The LLC simulator. Shared behind `Arc` by every thread of a store.
pub struct Llc {
    cfg: CacheConfig,
    dev: Arc<PmemDevice>,
    shards: Vec<Mutex<Shard>>,
    locked_ranges: RwLock<Vec<(u64, u64)>>,
    pub(crate) stats: CacheStatsCell,
}

impl Llc {
    pub fn new(dev: Arc<PmemDevice>, cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let shards = cfg.shards.min(num_sets);
        let mut v = Vec::with_capacity(shards);
        for s in 0..shards {
            let sets_here = num_sets / shards + usize::from(s < num_sets % shards);
            v.push(Mutex::new(Shard {
                sets: (0..sets_here)
                    .map(|_| Vec::with_capacity(cfg.ways))
                    .collect(),
                locked: HashMap::new(),
                tick: 0,
            }));
        }
        Llc {
            cfg,
            dev,
            shards: v,
            locked_ranges: RwLock::new(Vec::new()),
            stats: CacheStatsCell::default(),
        }
    }

    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn place(&self, line_addr: u64) -> (usize, usize) {
        // Intel LLCs select slice+set by hashing address bits ("complex
        // addressing"), so capacity evictions are decorrelated from the
        // program's write order — the mechanism that turns unflushed
        // sequential writes into scattered 64 B arrivals at the PMem
        // (Ob1/R1). A multiplicative hash models that scatter.
        let h = (line_addr / CACHELINE as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        let set = (h % self.cfg.num_sets() as u64) as usize;
        let shard = set % self.shards.len();
        (shard, set / self.shards.len())
    }

    #[inline]
    fn is_locked(&self, line_addr: u64) -> bool {
        let ranges = self.locked_ranges.read();
        ranges.iter().any(|&(s, e)| line_addr >= s && line_addr < e)
    }

    #[inline]
    fn charge_hit(&self) {
        self.dev
            .clock()
            .charge(self.dev.config().latency.cache_hit_ns);
    }

    /// Reserve `[start, start+len)` (64 B aligned) in the locked partition.
    /// Existing cached lines in the range migrate into it.
    pub fn lock_region(&self, start: u64, len: u64) {
        assert_eq!(
            start % CACHELINE as u64,
            0,
            "lock region must be line aligned"
        );
        assert_eq!(
            len % CACHELINE as u64,
            0,
            "lock region length must be line aligned"
        );
        // Migrate any normally-cached lines in range into the locked table so
        // a single line never exists in both partitions.
        let mut addr = start;
        while addr < start + len {
            let (si, set) = self.place(addr);
            let mut shard = self.shards[si].lock();
            if let Some(pos) = shard.sets[set].iter().position(|l| l.tag == addr) {
                let line = shard.sets[set].swap_remove(pos);
                shard.locked.insert(
                    addr,
                    LockedLine {
                        data: line.data,
                        dirty: line.dirty,
                    },
                );
            }
            addr += CACHELINE as u64;
        }
        self.locked_ranges.write().push((start, start + len));
    }

    /// Release a locked region: dirty lines are written back to the device
    /// and the partition space is returned.
    pub fn unlock_region(&self, start: u64, len: u64) {
        {
            let mut ranges = self.locked_ranges.write();
            if let Some(pos) = ranges.iter().position(|&r| r == (start, start + len)) {
                ranges.swap_remove(pos);
            }
        }
        let mut addr = start;
        while addr < start + len {
            let (si, _) = self.place(addr);
            let mut shard = self.shards[si].lock();
            let dirty = shard.locked.remove(&addr).filter(|l| l.dirty);
            drop(shard);
            if let Some(line) = dirty {
                self.dev.write_cacheline(addr, &line.data);
            }
            addr += CACHELINE as u64;
        }
    }

    /// Currently locked ranges (for tests and recovery).
    pub fn locked_ranges(&self) -> Vec<(u64, u64)> {
        self.locked_ranges.read().clone()
    }

    /// Store `data` at `addr` through the cache (write-back, write-allocate).
    pub fn store(&self, addr: u64, data: &[u8]) {
        self.for_each_line(addr, data.len(), |line, lo, hi, rng| {
            self.store_line(line, lo, hi, &data[rng.clone()]);
        });
    }

    /// Load `buf.len()` bytes at `addr` through the cache.
    pub fn load(&self, addr: u64, buf: &mut [u8]) {
        let mut scratch: Vec<(std::ops::Range<usize>, u64, usize, usize)> = Vec::new();
        self.for_each_line(addr, buf.len(), |line, lo, hi, rng| {
            scratch.push((rng, line, lo, hi));
        });
        for (rng, line, lo, hi) in scratch {
            self.load_line(line, lo, hi, &mut buf[rng]);
        }
    }

    /// Apply `f(line_addr, lo, hi, dst_range)` to every cacheline overlapped
    /// by `[addr, addr+len)`.
    fn for_each_line(
        &self,
        addr: u64,
        len: usize,
        mut f: impl FnMut(u64, usize, usize, std::ops::Range<usize>),
    ) {
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line = cur & LINE_MASK;
            let lo = (cur - line) as usize;
            let hi = CACHELINE.min((end - line) as usize);
            let dst_lo = (cur - addr) as usize;
            let dst_hi = dst_lo + (hi - lo);
            f(line, lo, hi, dst_lo..dst_hi);
            cur = line + CACHELINE as u64;
        }
    }

    fn store_line(&self, line_addr: u64, lo: usize, hi: usize, src: &[u8]) {
        let partial = lo != 0 || hi != CACHELINE;
        if self.is_locked(line_addr) {
            let (si, _) = self.place(line_addr);
            let mut shard = self.shards[si].lock();
            CacheStatsCell::bump(&self.stats.locked_hits);
            match shard.locked.get_mut(&line_addr) {
                Some(l) => {
                    l.data[lo..hi].copy_from_slice(src);
                    l.dirty = true;
                    CacheStatsCell::bump(&self.stats.store_hits);
                    drop(shard);
                    self.charge_hit();
                }
                None => {
                    let mut data = [0u8; CACHELINE];
                    if partial {
                        drop(shard);
                        self.dev.read(line_addr, &mut data);
                        shard = self.shards[si].lock();
                    }
                    // Re-check: another thread may have populated the line
                    // while the lock was released for the fill; merging into
                    // its (newer) copy must not clobber it with stale data.
                    if let Some(l) = shard.locked.get_mut(&line_addr) {
                        l.data[lo..hi].copy_from_slice(src);
                        l.dirty = true;
                    } else {
                        data[lo..hi].copy_from_slice(src);
                        shard
                            .locked
                            .insert(line_addr, LockedLine { data, dirty: true });
                    }
                    CacheStatsCell::bump(&self.stats.store_misses);
                    drop(shard);
                    self.charge_hit();
                }
            }
            return;
        }

        let (si, set) = self.place(line_addr);
        let mut shard = self.shards[si].lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(l) = shard.sets[set].iter_mut().find(|l| l.tag == line_addr) {
            l.data[lo..hi].copy_from_slice(src);
            l.dirty = true;
            l.tick = tick;
            CacheStatsCell::bump(&self.stats.store_hits);
            drop(shard);
            self.charge_hit();
            return;
        }
        CacheStatsCell::bump(&self.stats.store_misses);
        let mut data = [0u8; CACHELINE];
        if partial {
            // Write-allocate: fetch the rest of the line (RFO) before the
            // partial update. Full-line stores skip the fetch, modelling
            // store-buffer merging of streaming writes.
            drop(shard);
            self.dev.read(line_addr, &mut data);
            shard = self.shards[si].lock();
            // Re-check: another thread may have allocated the line while
            // the lock was released; merge into its copy rather than
            // inserting a duplicate built from a possibly stale fill.
            if let Some(l) = shard.sets[set].iter_mut().find(|l| l.tag == line_addr) {
                l.data[lo..hi].copy_from_slice(src);
                l.dirty = true;
                l.tick = tick;
                drop(shard);
                self.charge_hit();
                return;
            }
        }
        data[lo..hi].copy_from_slice(src);
        let victim = Self::insert_line(
            &mut shard,
            set,
            self.cfg.ways,
            Line {
                tag: line_addr,
                data,
                dirty: true,
                tick,
            },
        );
        drop(shard);
        self.charge_hit();
        self.evict(victim);
    }

    fn load_line(&self, line_addr: u64, lo: usize, hi: usize, dst: &mut [u8]) {
        if self.is_locked(line_addr) {
            let (si, _) = self.place(line_addr);
            let shard = self.shards[si].lock();
            CacheStatsCell::bump(&self.stats.locked_hits);
            if let Some(l) = shard.locked.get(&line_addr) {
                dst.copy_from_slice(&l.data[lo..hi]);
                CacheStatsCell::bump(&self.stats.load_hits);
                drop(shard);
                self.charge_hit();
            } else {
                drop(shard);
                let mut data = [0u8; CACHELINE];
                self.dev.read(line_addr, &mut data);
                let mut shard = self.shards[si].lock();
                // Re-check: a store may have landed while the lock was
                // released — its copy is newer than the device fill and
                // must not be replaced with a stale clean line.
                if let Some(l) = shard.locked.get(&line_addr) {
                    dst.copy_from_slice(&l.data[lo..hi]);
                } else {
                    dst.copy_from_slice(&data[lo..hi]);
                    shard
                        .locked
                        .insert(line_addr, LockedLine { data, dirty: false });
                }
                CacheStatsCell::bump(&self.stats.load_misses);
            }
            return;
        }

        let (si, set) = self.place(line_addr);
        let mut shard = self.shards[si].lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(l) = shard.sets[set].iter_mut().find(|l| l.tag == line_addr) {
            l.tick = tick;
            dst.copy_from_slice(&l.data[lo..hi]);
            CacheStatsCell::bump(&self.stats.load_hits);
            drop(shard);
            self.charge_hit();
            return;
        }
        CacheStatsCell::bump(&self.stats.load_misses);
        drop(shard);
        let mut data = [0u8; CACHELINE];
        self.dev.read(line_addr, &mut data);
        dst.copy_from_slice(&data[lo..hi]);
        let mut shard = self.shards[si].lock();
        // Re-check: another thread may have allocated the line meanwhile.
        if shard.sets[set].iter().any(|l| l.tag == line_addr) {
            return;
        }
        let victim = Self::insert_line(
            &mut shard,
            set,
            self.cfg.ways,
            Line {
                tag: line_addr,
                data,
                dirty: false,
                tick,
            },
        );
        drop(shard);
        self.evict(victim);
    }

    /// Insert a line, returning the LRU victim if the set was full.
    fn insert_line(shard: &mut Shard, set: usize, ways: usize, line: Line) -> Option<Line> {
        let victim = if shard.sets[set].len() >= ways {
            let lru = shard.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.tick)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            Some(shard.sets[set].swap_remove(lru))
        } else {
            None
        };
        shard.sets[set].push(line);
        victim
    }

    fn evict(&self, victim: Option<Line>) {
        if let Some(v) = victim {
            CacheStatsCell::bump(&self.stats.evictions);
            if v.dirty {
                CacheStatsCell::bump(&self.stats.dirty_evictions);
                self.dev.write_cacheline(v.tag, &v.data);
            }
        }
    }

    /// Atomic 64-bit compare-and-swap on a cached location (lock cmpxchg).
    /// The value must not straddle a cacheline. Returns the previous value;
    /// the swap happened iff it equals `expected`. Only supported on
    /// CAT-locked lines (CacheKV's packed sub-MemTable headers) — x86 CAS on
    /// an uncached PMem line would implicitly fetch it, which locked regions
    /// already guarantee.
    pub fn cas_u64(&self, addr: u64, expected: u64, new: u64) -> u64 {
        assert_eq!(addr % 8, 0, "CAS must be 8-byte aligned");
        let line = addr & LINE_MASK;
        assert!(self.is_locked(line), "cas_u64 requires a CAT-locked line");
        let (si, _) = self.place(line);
        let mut shard = self.shards[si].lock();
        if !shard.locked.contains_key(&line) {
            // First touch after a CAT re-lock: fetch the line's true
            // contents from the device before operating on it.
            drop(shard);
            let mut data = [0u8; CACHELINE];
            self.dev.read(line, &mut data);
            shard = self.shards[si].lock();
            shard
                .locked
                .entry(line)
                .or_insert(LockedLine { data, dirty: false });
        }
        let l = shard.locked.get_mut(&line).expect("just ensured present");
        let off = (addr - line) as usize;
        let cur = u64::from_le_bytes(l.data[off..off + 8].try_into().unwrap());
        if cur == expected {
            l.data[off..off + 8].copy_from_slice(&new.to_le_bytes());
            l.dirty = true;
        }
        drop(shard);
        self.charge_hit();
        cur
    }

    /// `clflush` every line in `[addr, addr+len)`: write back if dirty, then
    /// invalidate. Works on both partitions (the paper's footnote 5: flush
    /// instructions evict even "locked" lines).
    pub fn clflush(&self, addr: u64, len: usize) {
        self.flush_range(addr, len, true);
    }

    /// `clwb` every line in `[addr, addr+len)`: write back if dirty, retain.
    pub fn clwb(&self, addr: u64, len: usize) {
        self.flush_range(addr, len, false);
    }

    fn flush_range(&self, addr: u64, len: usize, invalidate: bool) {
        let lat = self.dev.config().latency;
        let cost = if invalidate {
            lat.clflush_ns
        } else {
            lat.clwb_ns
        };
        let mut line = addr & LINE_MASK;
        let end = addr + len as u64;
        while line < end {
            CacheStatsCell::bump(&self.stats.flush_ops);
            self.dev.clock().charge(cost);
            let (si, set) = self.place(line);
            let mut shard = self.shards[si].lock();
            let mut to_write: Option<[u8; CACHELINE]> = None;
            if let Some(l) = shard.locked.get_mut(&line) {
                if l.dirty {
                    to_write = Some(l.data);
                    l.dirty = false;
                }
                if invalidate {
                    shard.locked.remove(&line);
                }
            } else if let Some(pos) = shard.sets[set].iter().position(|l| l.tag == line) {
                if shard.sets[set][pos].dirty {
                    to_write = Some(shard.sets[set][pos].data);
                    shard.sets[set][pos].dirty = false;
                }
                if invalidate {
                    shard.sets[set].swap_remove(pos);
                }
            }
            drop(shard);
            if let Some(data) = to_write {
                self.dev.write_cacheline(line, &data);
            }
            line += CACHELINE as u64;
        }
    }

    /// Non-temporal store: bypasses the cache and streams to the device in
    /// store order, which is what CacheKV's copy-based flush relies on to
    /// fill whole XPLines. Cached copies of the touched lines are first made
    /// coherent (dirty ones written back) and invalidated.
    pub fn nt_store(&self, addr: u64, data: &[u8]) {
        let lat = self.dev.config().latency;
        // Invalidate overlapping cached lines so later loads see the stream.
        let first = addr & LINE_MASK;
        let end = addr + data.len() as u64;
        let mut line = first;
        while line < end {
            let (si, set) = self.place(line);
            let mut shard = self.shards[si].lock();
            let mut writeback: Option<[u8; CACHELINE]> = None;
            if let Some(l) = shard.locked.get(&line) {
                if l.dirty {
                    writeback = Some(l.data);
                }
                shard.locked.remove(&line);
            } else if let Some(pos) = shard.sets[set].iter().position(|l| l.tag == line) {
                let l = shard.sets[set].swap_remove(pos);
                if l.dirty {
                    writeback = Some(l.data);
                }
            }
            drop(shard);
            if let Some(d) = writeback {
                self.dev.write_cacheline(line, &d);
            }
            line += CACHELINE as u64;
        }
        // Stream the payload. Full lines go straight through; edges are
        // completed by the device's read-patch path.
        let lines = data.len().div_ceil(CACHELINE) as u64;
        self.stats
            .nt_lines
            .fetch_add(lines, std::sync::atomic::Ordering::Relaxed);
        self.dev.clock().charge(lines * lat.nt_store_64_ns);
        self.dev.write(addr, data);
    }

    /// Persistence barrier.
    pub fn sfence(&self) {
        self.dev.persist_barrier();
    }

    /// Write back every dirty line (both partitions) without invalidating.
    ///
    /// The snapshot is a single point-in-time cut: all shards are locked at
    /// once, dirty lines collected, then the locks released before the data
    /// streams to the device. A real power failure freezes execution
    /// instantly — every retired store is inside the eADR domain — so the
    /// capture must not interleave with concurrent stores shard-by-shard
    /// (that could capture a published header CAS while missing the record
    /// bytes the same thread stored just before it, an ordering no hardware
    /// can produce). No caller may hold a shard lock across a device write,
    /// or the fault-trip observer running this would deadlock.
    pub fn writeback_all(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();
        let mut pending: Vec<(u64, [u8; CACHELINE])> = Vec::new();
        for shard in guards.iter_mut() {
            for set in shard.sets.iter_mut() {
                for l in set.iter_mut().filter(|l| l.dirty) {
                    pending.push((l.tag, l.data));
                    l.dirty = false;
                }
            }
            for (addr, l) in shard.locked.iter_mut() {
                if l.dirty {
                    pending.push((*addr, l.data));
                    l.dirty = false;
                }
            }
        }
        drop(guards);
        // Deterministic order: by address.
        pending.sort_unstable_by_key(|&(a, _)| a);
        for (addr, data) in pending {
            self.dev.write_cacheline(addr, &data);
        }
    }

    /// Drop every line. Under ADR this is what a power failure does to the
    /// caches; dirty data is lost.
    pub fn invalidate_all(&self) {
        for m in &self.shards {
            let mut shard = m.lock();
            for set in shard.sets.iter_mut() {
                set.clear();
            }
            shard.locked.clear();
        }
        self.locked_ranges.write().clear();
    }

    /// Number of dirty lines currently held (test helper).
    pub fn dirty_lines(&self) -> usize {
        self.shards
            .iter()
            .map(|m| {
                let s = m.lock();
                s.sets.iter().flatten().filter(|l| l.dirty).count()
                    + s.locked.values().filter(|l| l.dirty).count()
            })
            .sum()
    }

    /// Whether `addr`'s line is present in either partition (test helper).
    pub fn contains_line(&self, addr: u64) -> bool {
        let line = addr & LINE_MASK;
        let (si, set) = self.place(line);
        let shard = self.shards[si].lock();
        shard.locked.contains_key(&line) || shard.sets[set].iter().any(|l| l.tag == line)
    }
}
