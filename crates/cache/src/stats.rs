//! Cache-side statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for the cache simulator.
#[derive(Debug, Default)]
pub struct CacheStatsCell {
    pub store_hits: AtomicU64,
    pub store_misses: AtomicU64,
    pub load_hits: AtomicU64,
    pub load_misses: AtomicU64,
    /// Lines pushed out by capacity/conflict replacement.
    pub evictions: AtomicU64,
    /// Evicted lines that were dirty (reached the device).
    pub dirty_evictions: AtomicU64,
    /// `clflush`/`clwb` line operations issued.
    pub flush_ops: AtomicU64,
    /// Cachelines written via non-temporal stores.
    pub nt_lines: AtomicU64,
    /// Accesses served by a CAT-locked region.
    pub locked_hits: AtomicU64,
}

impl CacheStatsCell {
    #[inline]
    pub(crate) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            load_hits: self.load_hits.load(Ordering::Relaxed),
            load_misses: self.load_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_evictions: self.dirty_evictions.load(Ordering::Relaxed),
            flush_ops: self.flush_ops.load(Ordering::Relaxed),
            nt_lines: self.nt_lines.load(Ordering::Relaxed),
            locked_hits: self.locked_hits.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.store_hits.store(0, Ordering::Relaxed);
        self.store_misses.store(0, Ordering::Relaxed);
        self.load_hits.store(0, Ordering::Relaxed);
        self.load_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.dirty_evictions.store(0, Ordering::Relaxed);
        self.flush_ops.store(0, Ordering::Relaxed);
        self.nt_lines.store(0, Ordering::Relaxed);
        self.locked_hits.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time snapshot of cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub store_hits: u64,
    pub store_misses: u64,
    pub load_hits: u64,
    pub load_misses: u64,
    pub evictions: u64,
    pub dirty_evictions: u64,
    pub flush_ops: u64,
    pub nt_lines: u64,
    pub locked_hits: u64,
}

impl CacheStats {
    /// Load hit ratio in [0, 1]; 0 when no loads.
    pub fn load_hit_ratio(&self) -> f64 {
        let total = self.load_hits + self.load_misses;
        if total == 0 {
            0.0
        } else {
            self.load_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio() {
        let s = CacheStats {
            load_hits: 9,
            load_misses: 1,
            ..Default::default()
        };
        assert!((s.load_hit_ratio() - 0.9).abs() < 1e-9);
        assert_eq!(CacheStats::default().load_hit_ratio(), 0.0);
    }

    #[test]
    fn reset_and_snapshot() {
        let cell = CacheStatsCell::default();
        CacheStatsCell::bump(&cell.load_hits);
        assert_eq!(cell.snapshot().load_hits, 1);
        cell.reset();
        assert_eq!(cell.snapshot(), CacheStats::default());
    }
}
