//! Property tests: the cache hierarchy is coherent flat memory under
//! arbitrary mixes of cached stores, NT stores, flushes, CAT locking, and
//! eADR power failures.

use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_pmem::{PersistDomain, PmemConfig, PmemDevice};
use proptest::prelude::*;
use std::sync::Arc;

const SPACE: u64 = 32 << 10;

#[derive(Debug, Clone)]
enum Op {
    Store { addr: u64, len: usize, fill: u8 },
    NtStore { addr: u64, len: usize, fill: u8 },
    Load { addr: u64, len: usize },
    Clwb { addr: u64, len: usize },
    Clflush { addr: u64, len: usize },
    PowerFail,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = (0..SPACE - 512, 1usize..300);
    prop_oneof![
        4 => (span.clone(), any::<u8>()).prop_map(|((addr, len), fill)| Op::Store { addr, len, fill }),
        2 => (span.clone(), any::<u8>()).prop_map(|((addr, len), fill)| Op::NtStore { addr, len, fill }),
        3 => span.clone().prop_map(|(addr, len)| Op::Load { addr, len }),
        1 => span.clone().prop_map(|(addr, len)| Op::Clwb { addr, len }),
        1 => span.prop_map(|(addr, len)| Op::Clflush { addr, len }),
        1 => Just(Op::PowerFail),
    ]
}

fn apply(h: &Hierarchy, model: &mut [u8], op: &Op) -> Result<(), TestCaseError> {
    match op {
        Op::Store { addr, len, fill } => {
            let data = vec![*fill; *len];
            h.store(*addr, &data);
            model[*addr as usize..*addr as usize + len].copy_from_slice(&data);
        }
        Op::NtStore { addr, len, fill } => {
            let data = vec![*fill; *len];
            h.nt_store(*addr, &data);
            model[*addr as usize..*addr as usize + len].copy_from_slice(&data);
        }
        Op::Load { addr, len } => {
            let mut buf = vec![0u8; *len];
            h.load(*addr, &mut buf);
            prop_assert_eq!(&buf[..], &model[*addr as usize..*addr as usize + len]);
        }
        Op::Clwb { addr, len } => {
            h.clwb(*addr, *len);
            h.sfence();
        }
        Op::Clflush { addr, len } => {
            h.clflush(*addr, *len);
            h.sfence();
        }
        Op::PowerFail => h.power_fail(),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn eadr_hierarchy_is_coherent(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let h = Hierarchy::new(dev, CacheConfig::small());
        let mut model = vec![0u8; SPACE as usize];
        for op in &ops {
            apply(&h, &mut model, op)?;
        }
        // Everything written is durable under eADR.
        h.power_fail();
        let mut buf = vec![0u8; SPACE as usize];
        h.load(0, &mut buf);
        prop_assert_eq!(buf, model);
    }

    #[test]
    fn eadr_coherent_with_cat_locked_region(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let h = Hierarchy::new(dev, CacheConfig::small());
        // Pin the middle quarter of the space.
        h.cat_lock(SPACE / 4, SPACE / 4);
        let mut model = vec![0u8; SPACE as usize];
        for op in &ops {
            if matches!(op, Op::PowerFail) {
                h.power_fail();
                h.cat_lock(SPACE / 4, SPACE / 4); // recovery re-locks
            } else {
                apply(&h, &mut model, op)?;
            }
        }
        let mut buf = vec![0u8; SPACE as usize];
        h.load(0, &mut buf);
        prop_assert_eq!(buf, model);
    }

    #[test]
    fn adr_preserves_exactly_the_flushed_prefix(
        writes in prop::collection::vec((0..SPACE - 64, any::<u8>()), 1..30),
        flushed_count in 0usize..30,
    ) {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::small().with_domain(PersistDomain::Adr),
        ));
        let h = Hierarchy::new(dev, CacheConfig::small());
        let flushed_count = flushed_count.min(writes.len());
        for (i, (addr, fill)) in writes.iter().enumerate() {
            h.store(*addr, &[*fill; 64]);
            if i < flushed_count {
                h.clwb(*addr, 64);
                h.sfence();
            }
        }
        h.power_fail();
        // Flushed writes must survive, unless a later unflushed write to an
        // overlapping line shadowed them (then the line is stale/zero —
        // either way not the unflushed value is guaranteed, so only check
        // lines whose last writer flushed).
        for (i, (addr, fill)) in writes.iter().enumerate() {
            let last_writer = writes
                .iter()
                .enumerate()
                .rev()
                .find(|(_, (a, _))| {
                    let line_a = a & !63;
                    let line_b = addr & !63;
                    // Overlapping 64-byte writes share at least one line.
                    line_a <= line_b + 64 && line_b <= line_a + 64
                })
                .map(|(j, _)| j)
                .unwrap();
            if i == last_writer && i < flushed_count {
                let mut buf = [0u8; 64];
                h.load(*addr, &mut buf);
                prop_assert_eq!(buf, [*fill; 64], "flushed final write at {} lost", addr);
            }
        }
    }
}
