//! CacheKV configuration.

use cachekv_lsm::StorageConfig;

/// Which of the paper's techniques are enabled — the breakdown axis of
/// Exp#1/#2 (PCSM, PCSM+LIU, full CacheKV = PCSM+LIU+SC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Techniques {
    /// Lazy index update (Section III-B). Off = sub-skiplists are updated
    /// synchronously on every write (the bare PCSM configuration).
    pub lazy_index: bool,
    /// Sub-skiplist compaction into a global skiplist (Section III-D).
    pub compaction: bool,
}

impl Techniques {
    /// Bare per-core sub-MemTables with diligent index updates.
    pub fn pcsm() -> Self {
        Techniques {
            lazy_index: false,
            compaction: false,
        }
    }

    /// PCSM + lazy index update.
    pub fn pcsm_liu() -> Self {
        Techniques {
            lazy_index: true,
            compaction: false,
        }
    }

    /// The full system.
    pub fn all() -> Self {
        Techniques {
            lazy_index: true,
            compaction: true,
        }
    }
}

/// Tunables of the CacheKV store.
#[derive(Debug, Clone)]
pub struct CacheKvConfig {
    /// Total size of the sub-MemTable pool pinned in the LLC (12 MiB in the
    /// paper's default setup, always below the LLC size).
    pub pool_bytes: u64,
    /// Initial size of each sub-MemTable (2 MiB default; Exp#6 sweeps it).
    pub subtable_bytes: u64,
    /// Smallest size elasticity may shrink a sub-MemTable to.
    pub min_subtable_bytes: u64,
    /// Number of logical cores served (bounds concurrent sub-MemTables).
    pub num_cores: usize,
    /// Background copy-based-flush threads (Exp#5 sweeps this).
    pub flush_threads: usize,
    /// Lazy-index-update trigger: sync a sub-skiplist once this many writes
    /// accumulated since the last sync (strategy 2 of Section III-B).
    pub sync_every: u64,
    /// Dump flushed sub-ImmMemTables to the LSM's L0 once their total size
    /// reaches this threshold (Section III-D).
    pub dump_threshold_bytes: u64,
    /// Misses on the free-sub-MemTable pool before elasticity halves a free
    /// sub-MemTable (Section III-A, Elasticity).
    pub miss_threshold: u64,
    /// Housekeeping worker pool size: threads draining the scheduler queue
    /// and running per-segment SC merges in parallel.
    pub housekeeping_threads: usize,
    /// Bound of the housekeeping job queue. Full queue = backpressure on
    /// background submitters (counted), dropped reader nudges (counted) —
    /// never an inline merge.
    pub housekeeping_queue_cap: usize,
    /// Target entries per global-index segment: merges split output above
    /// it and absorb neighbours below half of it.
    pub sc_segment_target_entries: usize,
    /// Fold every segment on every SC round (the monolithic-compaction
    /// baseline, kept for A/B benchmarking — `false` for the real system).
    pub sc_full_fold: bool,
    /// Stall writers at a seal once flushed-but-undumped bytes exceed this
    /// watermark, until a dump catches up (0 disables). The only sanctioned
    /// way housekeeping may slow a put, surfaced as
    /// `core.housekeeping.put_stalls` / `.put_stall_ns`.
    pub hk_backpressure_bytes: u64,
    /// Technique ablation switches.
    pub techniques: Techniques,
    /// The LSM storage component below.
    pub storage: StorageConfig,
}

impl Default for CacheKvConfig {
    fn default() -> Self {
        // A simulated "core" is a writer slot in the global metadata
        // structure, modelling the paper's 24-core socket — not the host's
        // parallelism (the simulator must behave identically on small CI
        // machines).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
            .max(8);
        CacheKvConfig {
            pool_bytes: 12 << 20,
            subtable_bytes: 2 << 20,
            min_subtable_bytes: 64 << 10,
            num_cores: cores,
            flush_threads: 1,
            sync_every: 64,
            dump_threshold_bytes: 24 << 20,
            miss_threshold: 4,
            housekeeping_threads: 2,
            housekeeping_queue_cap: 1024,
            sc_segment_target_entries: 16 << 10,
            sc_full_fold: false,
            hk_backpressure_bytes: 96 << 20,
            techniques: Techniques::all(),
            storage: StorageConfig::default(),
        }
    }
}

impl CacheKvConfig {
    /// Small config for unit tests: 256 KiB pool of 64 KiB sub-MemTables,
    /// inline storage compaction.
    pub fn test_small() -> Self {
        CacheKvConfig {
            pool_bytes: 256 << 10,
            subtable_bytes: 64 << 10,
            min_subtable_bytes: 8 << 10,
            num_cores: 4,
            flush_threads: 1,
            sync_every: 16,
            dump_threshold_bytes: 192 << 10,
            miss_threshold: 2,
            housekeeping_threads: 2,
            housekeeping_queue_cap: 64,
            sc_segment_target_entries: 512,
            sc_full_fold: false,
            hk_backpressure_bytes: 768 << 10,
            techniques: Techniques::all(),
            storage: StorageConfig::test_small(),
        }
    }

    /// Builder-style override of the technique set.
    pub fn with_techniques(mut self, t: Techniques) -> Self {
        self.techniques = t;
        self
    }

    /// Builder-style override of pool geometry.
    pub fn with_pool(mut self, pool_bytes: u64, subtable_bytes: u64) -> Self {
        self.pool_bytes = pool_bytes;
        self.subtable_bytes = subtable_bytes;
        self
    }

    /// Builder-style override of the flush thread count.
    pub fn with_flush_threads(mut self, n: usize) -> Self {
        self.flush_threads = n.max(1);
        self
    }

    /// Builder-style override of the core count.
    pub fn with_cores(mut self, n: usize) -> Self {
        self.num_cores = n.max(1);
        self
    }

    /// Builder-style override of the housekeeping worker count.
    pub fn with_housekeeping_threads(mut self, n: usize) -> Self {
        self.housekeeping_threads = n.max(1);
        self
    }

    /// Builder-style override of the per-segment entry target.
    pub fn with_segment_target(mut self, entries: usize) -> Self {
        self.sc_segment_target_entries = entries.max(1);
        self
    }

    /// Builder-style toggle of the monolithic full-fold baseline mode.
    pub fn with_full_fold(mut self, on: bool) -> Self {
        self.sc_full_fold = on;
        self
    }

    /// Builder-style override of the write backpressure watermark.
    pub fn with_backpressure_bytes(mut self, bytes: u64) -> Self {
        self.hk_backpressure_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = CacheKvConfig::default();
        assert_eq!(c.pool_bytes, 12 << 20);
        assert_eq!(c.subtable_bytes, 2 << 20);
        assert_eq!(c.flush_threads, 1);
        assert_eq!(c.techniques, Techniques::all());
    }

    #[test]
    fn technique_presets() {
        assert!(!Techniques::pcsm().lazy_index);
        assert!(Techniques::pcsm_liu().lazy_index);
        assert!(!Techniques::pcsm_liu().compaction);
        assert!(Techniques::all().compaction);
    }

    #[test]
    fn builders_compose() {
        let c = CacheKvConfig::test_small()
            .with_pool(1 << 20, 128 << 10)
            .with_flush_threads(3)
            .with_cores(2)
            .with_housekeeping_threads(4)
            .with_segment_target(2048)
            .with_full_fold(true)
            .with_backpressure_bytes(0);
        assert_eq!(c.pool_bytes, 1 << 20);
        assert_eq!(c.subtable_bytes, 128 << 10);
        assert_eq!(c.flush_threads, 3);
        assert_eq!(c.num_cores, 2);
        assert_eq!(c.housekeeping_threads, 4);
        assert_eq!(c.sc_segment_target_entries, 2048);
        assert!(c.sc_full_fold);
        assert_eq!(c.hk_backpressure_bytes, 0);
    }

    #[test]
    fn housekeeping_defaults_are_off_path() {
        let c = CacheKvConfig::default();
        assert!(c.housekeeping_threads >= 1);
        assert!(c.housekeeping_queue_cap >= c.housekeeping_threads);
        assert!(!c.sc_full_fold, "full fold is a benchmark baseline only");
        assert!(
            c.hk_backpressure_bytes > c.dump_threshold_bytes,
            "watermark must sit above the dump threshold or puts stall before a dump can free anything"
        );
    }
}
