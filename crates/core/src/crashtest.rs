//! Deterministic crash-point sweep driver.
//!
//! The pmem layer can trip a simulated power failure at the Kth persistence
//! event ([`cachekv_pmem::FaultPlan`]). This module turns that primitive
//! into a harness: enumerate injection points across a workload, crash at
//! each one, reopen the store from the surviving media image, and
//! differentially check the recovered state against a shadow model.
//!
//! Two sweeps are provided:
//!
//! * [`sweep_store`] — drives a full engine ([`CacheKv`] or the WAL-based
//!   [`LsmTree`] reference) through a workload. Because background flush
//!   and maintenance threads interleave with the writer, event indices are
//!   not perfectly stable run-to-run; the driver therefore runs a traced
//!   baseline first and aims extra points at labelled code paths
//!   (`cachekv::copy_flush`, `cachekv::l0_dump`, `flushlog::reset_with`),
//!   and classifies each operation as *committed* (returned before the
//!   trip was observable) or *ambiguous* (in flight when the trip hit).
//! * [`sweep_flushlog`] — drives [`FlushLog`] directly, single-threaded,
//!   so every event index is enumerable densely and the surviving image is
//!   reproducible byte-for-byte (the returned digest proves it).
//!
//! Commit-point semantics: an eADR store commits at the *store* (a put
//! that returned before the trip must survive), the WAL-based reference
//! commits at the *fence* inside `put` — either way "returned with the
//! fault not yet tripped" implies durable, which is what the driver
//! checks. The one op in flight when the trip lands may or may not have
//! committed; it is checked against both acceptable states.

use crate::config::CacheKvConfig;
use crate::flushlog::FlushLog;
use crate::store::CacheKv;
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::kv::KvStore;
use cachekv_lsm::{LsmConfig, LsmTree};
use cachekv_pmem::{FaultPlan, LatencyConfig, PersistDomain, PmemConfig, PmemDevice};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One workload operation.
#[derive(Clone, Debug)]
pub enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

impl Op {
    fn key(&self) -> &[u8] {
        match self {
            Op::Put(k, _) => k,
            Op::Delete(k) => k,
        }
    }

    fn value(&self) -> Option<&[u8]> {
        match self {
            Op::Put(_, v) => Some(v),
            Op::Delete(_) => None,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic mixed workload: puts with overwrites across a small key
/// space (so flushes and dumps trigger), with an occasional delete.
pub fn standard_workload(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = seed;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let r = splitmix64(&mut rng);
        let key = format!("key{:03}", r % 48).into_bytes();
        if r % 8 == 7 && i > 8 {
            ops.push(Op::Delete(key));
        } else {
            let pad = 64 + (r >> 8) % 96;
            let mut v = format!("v{i:06}-").into_bytes();
            v.resize(v.len() + pad as usize, b'x');
            ops.push(Op::Put(key, v));
        }
    }
    ops
}

/// Which engine a sweep drives. `CacheKv` commits at the store (sound under
/// eADR); `WalLsm` commits at the WAL fence (sound under plain ADR too).
pub enum Engine {
    CacheKv(CacheKvConfig),
    WalLsm(LsmConfig),
}

impl Engine {
    fn build(&self, hier: Arc<Hierarchy>) -> Box<dyn KvStore> {
        match self {
            Engine::CacheKv(cfg) => Box::new(CacheKv::create(hier, cfg.clone())),
            Engine::WalLsm(cfg) => Box::new(LsmTree::create(hier, cfg.clone())),
        }
    }

    fn recover(&self, hier: Arc<Hierarchy>) -> cachekv_lsm::kv::Result<Box<dyn KvStore>> {
        match self {
            Engine::CacheKv(cfg) => Ok(Box::new(CacheKv::recover(hier, cfg.clone())?)),
            Engine::WalLsm(cfg) => Ok(Box::new(LsmTree::recover(hier, cfg.clone())?)),
        }
    }

    /// Can committed ops be checked exactly after recovery in `domain`?
    /// CacheKV's no-flush write path only commits durably on eADR;
    /// on ADR its cached writes legitimately die, so only the weaker
    /// no-fabrication check applies.
    fn exact_under(&self, domain: PersistDomain) -> bool {
        match self {
            Engine::CacheKv(_) => domain == PersistDomain::Eadr,
            Engine::WalLsm(_) => true,
        }
    }
}

/// Sweep parameters.
pub struct SweepOptions {
    pub engine: Engine,
    pub domain: PersistDomain,
    /// How many strided injection points to take from `1..=total_events`
    /// (context-targeted points are added on top).
    pub points: usize,
    /// Use torn-XPLine (beyond-ADR) semantics: un-evicted XPBuffer lines
    /// are lost and the freshest line is torn by a per-point seed. Only
    /// the no-fabrication check applies.
    pub torn: bool,
    pub seed: u64,
    pub ops: Vec<Op>,
}

/// What a sweep did, for assertions and reporting.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Total persistence events in the (traced) baseline run.
    pub total_events: u64,
    /// Injection points actually exercised.
    pub points_run: usize,
    /// Points where the fault plan fired (the rest saw fewer events than
    /// the baseline due to thread interleaving and fell back to a plain
    /// power-fail at end of workload).
    pub trips: usize,
    /// Recoveries that returned an error with nothing committed (a crash
    /// before store creation finished) — acceptable, counted for info.
    pub early_recovery_errors: usize,
    /// How many trips landed inside each fault-context label.
    pub contexts: BTreeMap<String, usize>,
}

fn make_store_device(domain: PersistDomain) -> (Arc<PmemDevice>, Arc<Hierarchy>) {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled()
            .with_total_capacity(24 << 20)
            .with_domain(domain)
            .with_latency(LatencyConfig::zero()),
    ));
    let hier = Arc::new(Hierarchy::new(dev.clone(), CacheConfig::paper()));
    (dev, hier)
}

/// Every value each key can legitimately hold at any point in the workload
/// (`None` = absent). Used by the relaxed no-fabrication check.
fn value_history(ops: &[Op]) -> BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>> {
    let mut h: BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>> = BTreeMap::new();
    for op in ops {
        let e = h.entry(op.key().to_vec()).or_default();
        e.insert(None); // every key starts absent
        e.insert(op.value().map(|v| v.to_vec()));
    }
    h
}

fn apply(store: &dyn KvStore, op: &Op) -> cachekv_lsm::kv::Result<()> {
    match op {
        Op::Put(k, v) => store.put(k, v),
        Op::Delete(k) => store.delete(k),
    }
}

const PHANTOM_KEYS: [&[u8]; 3] = [b"zz-never-written", b"zz-phantom", b"aaa-phantom"];

/// Run the full crash-point sweep described in the module docs.
///
/// Panics (with a descriptive message) on any consistency violation; on
/// success returns what was covered so callers can assert breadth.
pub fn sweep_store(opts: &SweepOptions) -> SweepOutcome {
    // ---- Baseline: count events and trace labelled code paths. ----
    let (dev, hier) = make_store_device(opts.domain);
    dev.install_fault_plan(FaultPlan::count_only().traced());
    {
        let store = opts.engine.build(hier.clone());
        for op in &opts.ops {
            apply(&*store, op).expect("baseline op");
        }
        store.quiesce();
    }
    let total_events = dev.fault_events();
    let trace = dev.take_fault_trace();
    drop((dev, hier));
    assert!(total_events > 0, "workload generated no persistence events");

    // ---- Choose injection points: a stride over everything, plus points
    // aimed at each labelled code path (first / middle / last occurrences,
    // so run-to-run event drift still lands inside the label's span). ----
    let mut points: BTreeSet<u64> = BTreeSet::new();
    let stride = (total_events / opts.points.max(1) as u64).max(1);
    let mut k = 1;
    while k <= total_events && points.len() < opts.points {
        points.insert(k);
        k += stride;
    }
    let mut by_label: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for &(idx, label) in &trace {
        by_label.entry(label).or_default().push(idx);
    }
    for occurrences in by_label.values() {
        let n = occurrences.len();
        for frac in [n / 8, n / 2, n * 7 / 8, n.saturating_sub(1)] {
            points.insert(occurrences[frac.min(n - 1)]);
        }
    }

    // ---- The sweep itself. ----
    let history = value_history(&opts.ops);
    let exact = opts.engine.exact_under(opts.domain) && !opts.torn;
    let mut outcome = SweepOutcome {
        total_events,
        points_run: 0,
        trips: 0,
        early_recovery_errors: 0,
        contexts: BTreeMap::new(),
    };

    for &k in &points {
        let (dev, hier) = make_store_device(opts.domain);
        let plan = if opts.torn {
            FaultPlan::torn(k, opts.seed ^ (k.wrapping_mul(0x9E37_79B9)))
        } else {
            FaultPlan::at(k)
        };
        dev.install_fault_plan(plan);

        // Shadow model: last committed value per key, plus the one op that
        // was in flight when the trip became visible.
        let mut committed: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut in_flight: Option<(Vec<u8>, Option<Vec<u8>>)> = None;
        {
            let store = opts.engine.build(hier.clone());
            for op in &opts.ops {
                if dev.fault_tripped() {
                    break;
                }
                let r = apply(&*store, op);
                if dev.fault_tripped() {
                    in_flight = Some((op.key().to_vec(), op.value().map(|v| v.to_vec())));
                    break;
                }
                r.unwrap_or_else(|e| panic!("point {k}: op failed before any crash: {e:?}"));
                committed.insert(op.key().to_vec(), op.value().map(|v| v.to_vec()));
            }
            // Mirror the baseline's shutdown so event counts line up; after
            // a trip this runs against a blackholed device and is a no-op
            // durability-wise. Drop then joins the background threads.
            store.quiesce();
        }

        let (media, context) = match dev.take_trip_report() {
            Some(rep) => {
                outcome.trips += 1;
                for label in &rep.context {
                    *outcome.contexts.entry((*label).to_string()).or_insert(0) += 1;
                }
                (rep.media, rep.context)
            }
            None => {
                // This run produced fewer events than the baseline (thread
                // interleaving): degenerate to a power-fail at the end.
                // Disarm first — the writeback must not trip the stale plan
                // and blackhole its own final writes.
                dev.clear_fault_plan();
                hier.power_fail();
                (dev.clone_media(), Vec::new())
            }
        };
        let config = dev.config().clone();
        drop((dev, hier));

        // ---- Recover from the surviving image and check. ----
        let dev2 = Arc::new(PmemDevice::from_media(config, media));
        let hier2 = Arc::new(Hierarchy::new(dev2, CacheConfig::paper()));
        let store2 = match opts.engine.recover(hier2) {
            Ok(s) => s,
            Err(e) => {
                // Under torn (beyond-ADR) semantics losing the entire log is
                // legitimate — un-drained XPBuffer lines die, including the
                // flush log's selector. Otherwise only a crash before the
                // store finished creating may fail recovery.
                assert!(
                    opts.torn || committed.is_empty(),
                    "point {k} (ctx {context:?}): recovery failed with {} committed ops: {e:?}",
                    committed.len()
                );
                outcome.early_recovery_errors += 1;
                outcome.points_run += 1;
                continue;
            }
        };
        if exact {
            for (key, want) in &committed {
                if in_flight.as_ref().is_some_and(|(ik, _)| ik == key) {
                    continue; // checked below against both states
                }
                let got = store2.get(key).unwrap();
                assert_eq!(
                    &got,
                    want,
                    "point {k} (ctx {context:?}): committed key {} diverged",
                    String::from_utf8_lossy(key)
                );
            }
            if let Some((key, new_v)) = &in_flight {
                let got = store2.get(key).unwrap();
                let prior = committed.get(key).cloned().unwrap_or(None);
                assert!(
                    got == prior || got == *new_v,
                    "point {k} (ctx {context:?}): in-flight key {} is neither its prior \
                     nor its new value",
                    String::from_utf8_lossy(key)
                );
            }
        } else {
            // Relaxed: whatever survives must be a value that was actually
            // written at some point — nothing fabricated, no panics.
            for (key, allowed) in &history {
                let got = store2.get(key).unwrap();
                assert!(
                    allowed.contains(&got),
                    "point {k} (ctx {context:?}): key {} recovered a value never written",
                    String::from_utf8_lossy(key)
                );
            }
        }
        for p in PHANTOM_KEYS {
            assert_eq!(
                store2.get(p).unwrap(),
                None,
                "point {k} (ctx {context:?}): phantom key fabricated"
            );
        }
        // Post-recovery scans agree with post-recovery gets: the merged
        // cursor rebuilds from the same recovered sources the point-read
        // path probes. Engines without a native scan keep the trait's
        // "unsupported" default and are skipped.
        match store2.scan(b"", b"", usize::MAX) {
            Ok(scanned) => {
                let mut prev: Option<&[u8]> = None;
                for (key, val) in &scanned {
                    if let Some(p) = prev {
                        assert!(
                            p < key.as_slice(),
                            "point {k} (ctx {context:?}): scan keys out of order"
                        );
                    }
                    prev = Some(key);
                    assert_eq!(
                        store2.get(key).unwrap().as_deref(),
                        Some(val.as_slice()),
                        "point {k} (ctx {context:?}): scan and get disagree on key {}",
                        String::from_utf8_lossy(key)
                    );
                }
                let seen: BTreeSet<&[u8]> = scanned.iter().map(|(key, _)| key.as_slice()).collect();
                for key in history.keys() {
                    if store2.get(key).unwrap().is_some() {
                        assert!(
                            seen.contains(key.as_slice()),
                            "point {k} (ctx {context:?}): get sees key {} but scan missed it",
                            String::from_utf8_lossy(key)
                        );
                    }
                }
            }
            Err(e) => assert!(
                format!("{e:?}").contains("scan is not supported"),
                "point {k} (ctx {context:?}): post-recovery scan failed: {e:?}"
            ),
        }
        outcome.points_run += 1;
    }
    outcome
}

// ---------------------------------------------------------------------------
// FlushLog-only sweep: single-threaded, dense, byte-for-byte reproducible.
// ---------------------------------------------------------------------------

/// Outcome of [`sweep_flushlog`].
#[derive(Debug)]
pub struct FlushLogSweep {
    pub total_events: u64,
    pub points_run: usize,
    /// FNV-1a digest over every point's surviving media image — two sweeps
    /// with the same arguments must produce the same digest (determinism).
    pub digest: u64,
    /// Trips per fault-context label (always includes
    /// `flushlog::reset_with` — the script resets twice).
    pub contexts: BTreeMap<String, usize>,
}

const FL_BASE: u64 = 0;
const FL_CAP: u64 = 64 << 10;

type LogState = (Option<(u64, u64)>, Vec<(u64, u64, u64)>);

/// The scripted FlushLog life cycle: create, record a pool, flush tables,
/// compact twice, flush more. Returns the model state after each step.
fn flushlog_script(hier: &Arc<Hierarchy>, mut after_step: impl FnMut()) -> Vec<LogState> {
    let pool = (1 << 16, 64 << 10);
    let ft = |g: u64| (g, 0x10_0000 + g * 0x1000, 256 + g * 64);
    let mut states: Vec<LogState> = Vec::new();
    let mut flushed: Vec<(u64, u64, u64)> = Vec::new();

    let log = FlushLog::create(hier.clone(), FL_BASE, FL_CAP);
    states.push((None, Vec::new()));
    after_step();
    log.log_pool(pool.0, pool.1);
    states.push((Some(pool), Vec::new()));
    after_step();
    for g in 1..=4u64 {
        log.log_flushed(ft(g).0, ft(g).1, ft(g).2);
        flushed.push(ft(g));
        states.push((Some(pool), flushed.clone()));
        after_step();
    }
    let survivors = vec![ft(2), ft(4)];
    log.reset_with(pool.0, pool.1, &survivors);
    flushed = survivors;
    states.push((Some(pool), flushed.clone()));
    after_step();
    for g in 5..=6u64 {
        log.log_flushed(ft(g).0, ft(g).1, ft(g).2);
        flushed.push(ft(g));
        states.push((Some(pool), flushed.clone()));
        after_step();
    }
    let survivors = vec![ft(4), ft(6)];
    log.reset_with(pool.0, pool.1, &survivors);
    flushed = survivors;
    states.push((Some(pool), flushed.clone()));
    after_step();
    for g in 7..=8u64 {
        log.log_flushed(ft(g).0, ft(g).1, ft(g).2);
        flushed.push(ft(g));
        states.push((Some(pool), flushed.clone()));
        after_step();
    }
    states
}

fn make_log_device(domain: PersistDomain) -> (Arc<PmemDevice>, Arc<Hierarchy>) {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::small()
            .with_domain(domain)
            .with_latency(LatencyConfig::zero()),
    ));
    let hier = Arc::new(Hierarchy::new(dev.clone(), CacheConfig::small()));
    (dev, hier)
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Densely sweep every persistence event of the scripted FlushLog life
/// cycle: crash at each index, recover, and require the recovered log to be
/// one of the two model states the crash straddles (old or new — never a
/// mix, never empty-when-it-had-data). With `torn`, the recovered flushed
/// list need only be a prefix of a model state.
pub fn sweep_flushlog(domain: PersistDomain, torn: bool, seed: u64) -> FlushLogSweep {
    // Baseline: count events at each step boundary.
    let (dev, hier) = make_log_device(domain);
    dev.install_fault_plan(FaultPlan::count_only());
    let mut boundaries: Vec<u64> = Vec::new();
    let states = {
        let d = dev.clone();
        flushlog_script(&hier, || boundaries.push(d.fault_events()))
    };
    let total_events = *boundaries.last().unwrap();
    drop((dev, hier));

    let mut sweep = FlushLogSweep {
        total_events,
        points_run: 0,
        digest: 0xCBF2_9CE4_8422_2325,
        contexts: BTreeMap::new(),
    };
    for k in 1..=total_events {
        let (dev, hier) = make_log_device(domain);
        let plan = if torn {
            FaultPlan::torn(k, seed ^ k)
        } else {
            FaultPlan::at(k)
        };
        dev.install_fault_plan(plan);
        flushlog_script(&hier, || ());
        let rep = dev
            .take_trip_report()
            .unwrap_or_else(|| panic!("point {k}: single-threaded script must trip"));
        for label in &rep.context {
            *sweep.contexts.entry((*label).to_string()).or_insert(0) += 1;
        }
        fnv1a(&mut sweep.digest, &k.to_le_bytes());
        for dimm in &rep.media {
            fnv1a(&mut sweep.digest, dimm);
        }
        let config = dev.config().clone();
        let context = rep.context.clone();
        drop((dev, hier));

        let dev2 = Arc::new(PmemDevice::from_media(config, rep.media));
        let hier2 = Arc::new(Hierarchy::new(dev2, CacheConfig::small()));
        let (pool, flushed, _log) = FlushLog::recover(hier2, FL_BASE, FL_CAP);
        let got: LogState = (pool, flushed);

        // Steps fully complete by event k, by baseline boundary counts.
        // `states[done - 1]` is the last fully durable state; the step in
        // flight may also have fully landed (its last event tripped), so
        // `states[done]` is acceptable too. Crash mid-create recovers the
        // empty state, which `states[0]` already is.
        let done = boundaries.iter().filter(|&&b| b <= k).count();
        let lo = done.saturating_sub(1);
        let hi = done.min(states.len() - 1);
        if torn {
            // Lost XPBuffer lines may truncate the active half at a record
            // boundary (CRC guards partial records), or lose the selector
            // flip itself — any model-state prefix is sound.
            let plausible = states
                .iter()
                .any(|(p, f)| (got.0.is_none() || got.0 == *p) && f.starts_with(&got.1));
            assert!(
                plausible,
                "torn point {k} (ctx {context:?}): recovered {got:?} is not a prefix \
                 of any model state"
            );
        } else {
            assert!(
                got == states[lo] || got == states[hi],
                "point {k} (ctx {context:?}): recovered {got:?}, expected state {lo} \
                 {:?} or state {hi} {:?}",
                states[lo],
                states[hi]
            );
        }
        sweep.points_run += 1;
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = standard_workload(7, 100);
        let b = standard_workload(7, 100);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.iter().any(|op| matches!(op, Op::Delete(_))));
    }

    #[test]
    fn history_contains_absent_and_all_written_values() {
        let ops = vec![
            Op::Put(b"k".to_vec(), b"1".to_vec()),
            Op::Put(b"k".to_vec(), b"2".to_vec()),
            Op::Delete(b"k".to_vec()),
        ];
        let h = value_history(&ops);
        let k = &h[b"k".as_slice()];
        assert!(k.contains(&None));
        assert!(k.contains(&Some(b"1".to_vec())));
        assert!(k.contains(&Some(b"2".to_vec())));
        assert_eq!(k.len(), 3);
    }
}
