//! The merged range cursor: one sorted, tombstone-free stream over every
//! live source of the store.
//!
//! A scan sees the same components a get probes — active per-core
//! sub-MemTables, sealed sub-ImmMemTables, copy-flushed tables, the
//! compacted global index, and the LSM levels — but instead of racing them
//! for one key it must present a *consistent ordered view* of a whole
//! range. The store captures each source as a [`ScanSource`] (memory
//! components materialized under their pin guards, sstables as lazily
//! streamed Arc-pinned iterators) and this module heap-merges them in
//! internal order (key asc, sequence desc).
//!
//! Consistency comes from two rules:
//!
//! * **Snapshot sequence.** The store reads the global sequence counter
//!   once at scan start; every entry newer than that cut is dropped. Writes
//!   that completed before the scan began hold sequences at or below the
//!   cut, so the scan is exactly the committed prefix at its start time,
//!   no matter how long the merge runs or what lands concurrently.
//! * **Newest-first dedup.** Within the heap, versions of one key surface
//!   newest first (the same `internal_cmp` order the skiplists and tables
//!   store), so the first head per key is authoritative: a put yields its
//!   value, a tombstone suppresses the key, and every later version of the
//!   same key is stale and skipped.

use cachekv_lsm::kv::{internal_cmp, meta_kind, meta_seq, EntryKind};
use cachekv_lsm::sstable::OwnedTableIter;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One versioned candidate from a source: `(key, meta, value)`, where a
/// `None` value records a tombstone.
pub(crate) type VersionedEntry = (Vec<u8>, u64, Option<Vec<u8>>);

/// A sorted run of versioned entries feeding the merge heap.
pub(crate) enum ScanSource {
    /// Materialized memory-component run, already range-restricted and in
    /// internal order (values copied out while the source was pinned).
    Mem(std::vec::IntoIter<VersionedEntry>),
    /// Lazily streamed sstable, seeked to the scan's start block. Range
    /// and snapshot filtering happen here as blocks decode.
    Table(OwnedTableIter),
}

impl ScanSource {
    /// Next in-range entry at or below the snapshot cut, or `None` when
    /// the source is exhausted (or past the end bound).
    fn next(&mut self, start: &[u8], end: &[u8], snapshot_seq: u64) -> Option<VersionedEntry> {
        match self {
            ScanSource::Mem(it) => it.find(|(_, meta, _)| meta_seq(*meta) <= snapshot_seq),
            ScanSource::Table(it) => loop {
                let e = it.next()?;
                if e.key.as_slice() < start {
                    continue; // pre-range entries of the seeked first block
                }
                if !end.is_empty() && e.key.as_slice() >= end {
                    return None; // tables are sorted: nothing further is in range
                }
                if meta_seq(e.meta) > snapshot_seq {
                    continue;
                }
                let value = match meta_kind(e.meta) {
                    EntryKind::Delete => None,
                    EntryKind::Put => Some(e.value),
                };
                return Some((e.key, e.meta, value));
            },
        }
    }
}

/// One source's current head in the merge heap. Ordered by internal order
/// then source index, so equal `(key, meta)` pairs pop deterministically.
struct Head {
    key: Vec<u8>,
    meta: u64,
    value: Option<Vec<u8>>,
    src: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        internal_cmp(&self.key, self.meta, &other.key, other.meta).then(self.src.cmp(&other.src))
    }
}

/// K-way merge over [`ScanSource`]s yielding live `(key, value)` pairs in
/// ascending key order: newest version per key, tombstones resolved away.
pub(crate) struct MergedCursor {
    start: Vec<u8>,
    end: Vec<u8>,
    snapshot_seq: u64,
    sources: Vec<ScanSource>,
    heap: BinaryHeap<Reverse<Head>>,
    last_key: Option<Vec<u8>>,
}

impl MergedCursor {
    pub(crate) fn new(
        start: &[u8],
        end: &[u8],
        snapshot_seq: u64,
        mut sources: Vec<ScanSource>,
    ) -> Self {
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (src, source) in sources.iter_mut().enumerate() {
            if let Some((key, meta, value)) = source.next(start, end, snapshot_seq) {
                heap.push(Reverse(Head {
                    key,
                    meta,
                    value,
                    src,
                }));
            }
        }
        MergedCursor {
            start: start.to_vec(),
            end: end.to_vec(),
            snapshot_seq,
            sources,
            heap,
            last_key: None,
        }
    }
}

impl Iterator for MergedCursor {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        loop {
            let Reverse(head) = self.heap.pop()?;
            if let Some((key, meta, value)) =
                self.sources[head.src].next(&self.start, &self.end, self.snapshot_seq)
            {
                self.heap.push(Reverse(Head {
                    key,
                    meta,
                    value,
                    src: head.src,
                }));
            }
            if self.last_key.as_deref() == Some(head.key.as_slice()) {
                continue; // stale older version of an emitted/suppressed key
            }
            self.last_key = Some(head.key.clone());
            match head.value {
                Some(v) => return Some((head.key, v)),
                None => continue, // newest version is a tombstone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_lsm::kv::pack_meta;

    fn mem(entries: Vec<(&str, u64, EntryKind, Option<&str>)>) -> ScanSource {
        let run: Vec<VersionedEntry> = entries
            .into_iter()
            .map(|(k, seq, kind, v)| {
                (
                    k.as_bytes().to_vec(),
                    pack_meta(seq, kind),
                    v.map(|v| v.as_bytes().to_vec()),
                )
            })
            .collect();
        ScanSource::Mem(run.into_iter())
    }

    fn collect(cursor: MergedCursor) -> Vec<(String, String)> {
        cursor
            .map(|(k, v)| (String::from_utf8(k).unwrap(), String::from_utf8(v).unwrap()))
            .collect()
    }

    #[test]
    fn newest_version_wins_across_sources() {
        let a = mem(vec![("k1", 5, EntryKind::Put, Some("new"))]);
        let b = mem(vec![
            ("k1", 2, EntryKind::Put, Some("old")),
            ("k2", 3, EntryKind::Put, Some("live")),
        ]);
        let got = collect(MergedCursor::new(b"", b"", u64::MAX, vec![a, b]));
        assert_eq!(
            got,
            vec![("k1".into(), "new".into()), ("k2".into(), "live".into())]
        );
    }

    #[test]
    fn tombstone_suppresses_older_puts() {
        let a = mem(vec![("k1", 9, EntryKind::Delete, None)]);
        let b = mem(vec![
            ("k1", 4, EntryKind::Put, Some("dead")),
            ("k2", 1, EntryKind::Put, Some("v")),
        ]);
        let got = collect(MergedCursor::new(b"", b"", u64::MAX, vec![a, b]));
        assert_eq!(got, vec![("k2".into(), "v".into())]);
    }

    #[test]
    fn snapshot_cut_hides_newer_writes() {
        let a = mem(vec![
            ("k1", 9, EntryKind::Put, Some("future")),
            ("k1", 3, EntryKind::Put, Some("past")),
        ]);
        let got = collect(MergedCursor::new(b"", b"", 5, vec![a]));
        assert_eq!(got, vec![("k1".into(), "past".into())]);
    }

    #[test]
    fn snapshot_cut_hides_newer_tombstone() {
        let a = mem(vec![
            ("k1", 9, EntryKind::Delete, None),
            ("k1", 3, EntryKind::Put, Some("alive-at-cut")),
        ]);
        let got = collect(MergedCursor::new(b"", b"", 5, vec![a]));
        assert_eq!(got, vec![("k1".into(), "alive-at-cut".into())]);
    }

    #[test]
    fn empty_sources_yield_nothing() {
        let got = collect(MergedCursor::new(b"a", b"z", u64::MAX, Vec::new()));
        assert!(got.is_empty());
    }
}
