//! Persistent log of copy-flushed sub-ImmMemTable regions.
//!
//! The DRAM side knows where flushed tables live; after a crash that
//! knowledge must come from somewhere persistent. This small log records
//! the pool region and every flushed table's `(generation, base, len)`;
//! it is rewritten (compacted) whenever a dump retires regions.

use cachekv_cache::Hierarchy;
use cachekv_storage::{PmemObject, WalReader, WalWriter};
use parking_lot::Mutex;
use std::sync::Arc;

const REC_POOL: u8 = 1;
const REC_FLUSHED: u8 = 2;

/// One recovered flushed-table record: `(generation, base, len)`.
pub type FlushedRecord = (u64, u64, u64);

/// Result of replaying the log: the pool region, the flushed tables, and a
/// writer positioned at the valid tail.
pub type RecoveredLog = (Option<(u64, u64)>, Vec<FlushedRecord>, FlushLog);

/// The flushed-table log.
pub struct FlushLog {
    hier: Arc<Hierarchy>,
    base: u64,
    cap: u64,
    writer: Mutex<WalWriter>,
}

impl FlushLog {
    /// Create a fresh (empty) log at `[base, base+cap)`.
    pub fn create(hier: Arc<Hierarchy>, base: u64, cap: u64) -> Self {
        // Invalidate any stale first record.
        hier.store(base, &[0u8; 8]);
        hier.clwb(base, 8);
        hier.sfence();
        let obj = Arc::new(PmemObject::create(hier.clone(), base, cap));
        FlushLog { hier, base, cap, writer: Mutex::new(WalWriter::new(obj)) }
    }

    /// Replay the log region after a crash. Returns the recorded pool
    /// region, the flushed tables, and a writer positioned at the tail.
    pub fn recover(hier: Arc<Hierarchy>, base: u64, cap: u64) -> RecoveredLog {
        let scan = Arc::new(PmemObject::open(hier.clone(), base, cap, cap));
        let mut reader = WalReader::new(scan);
        let mut pool = None;
        let mut flushed = Vec::new();
        let mut valid = 0;
        while let Some(rec) = reader.next() {
            match rec.first() {
                Some(&REC_POOL) if rec.len() >= 17 => {
                    let b = u64::from_le_bytes(rec[1..9].try_into().unwrap());
                    let s = u64::from_le_bytes(rec[9..17].try_into().unwrap());
                    pool = Some((b, s));
                }
                Some(&REC_FLUSHED) if rec.len() >= 25 => {
                    let gen = u64::from_le_bytes(rec[1..9].try_into().unwrap());
                    let b = u64::from_le_bytes(rec[9..17].try_into().unwrap());
                    let l = u64::from_le_bytes(rec[17..25].try_into().unwrap());
                    flushed.push((gen, b, l));
                }
                _ => break,
            }
            valid = reader.pos();
        }
        let obj = Arc::new(PmemObject::open(hier.clone(), base, cap, valid));
        let log = FlushLog { hier, base, cap, writer: Mutex::new(WalWriter::new(obj)) };
        (pool, flushed, log)
    }

    /// Record the pool region (first record of a fresh log).
    pub fn log_pool(&self, base: u64, size: u64) {
        let mut rec = Vec::with_capacity(17);
        rec.push(REC_POOL);
        rec.extend_from_slice(&base.to_le_bytes());
        rec.extend_from_slice(&size.to_le_bytes());
        self.writer.lock().append(&rec);
    }

    /// Record one flushed table.
    pub fn log_flushed(&self, gen: u64, base: u64, len: u64) {
        let mut rec = Vec::with_capacity(25);
        rec.push(REC_FLUSHED);
        rec.extend_from_slice(&gen.to_le_bytes());
        rec.extend_from_slice(&base.to_le_bytes());
        rec.extend_from_slice(&len.to_le_bytes());
        self.writer.lock().append(&rec);
    }

    /// Compact the log after a dump: keep only the pool record and the
    /// surviving flushed tables.
    pub fn reset_with(&self, pool_base: u64, pool_size: u64, survivors: &[(u64, u64, u64)]) {
        let mut w = self.writer.lock();
        self.hier.store(self.base, &[0u8; 8]);
        self.hier.clwb(self.base, 8);
        self.hier.sfence();
        *w = WalWriter::new(Arc::new(PmemObject::create(self.hier.clone(), self.base, self.cap)));
        let mut rec = Vec::with_capacity(25);
        rec.push(REC_POOL);
        rec.extend_from_slice(&pool_base.to_le_bytes());
        rec.extend_from_slice(&pool_size.to_le_bytes());
        w.append(&rec);
        for &(gen, base, len) in survivors {
            rec.clear();
            rec.push(REC_FLUSHED);
            rec.extend_from_slice(&gen.to_le_bytes());
            rec.extend_from_slice(&base.to_le_bytes());
            rec.extend_from_slice(&len.to_le_bytes());
            w.append(&rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        Arc::new(Hierarchy::new(dev, CacheConfig::small()))
    }

    #[test]
    fn roundtrip_through_crash() {
        let h = hier();
        {
            let log = FlushLog::create(h.clone(), 0, 64 << 10);
            log.log_pool(1 << 16, 12 << 10);
            log.log_flushed(1, 0x5000, 4096);
            log.log_flushed(2, 0x7000, 2048);
        }
        h.power_fail();
        let (pool, flushed, _log) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, Some((1 << 16, 12 << 10)));
        assert_eq!(flushed, vec![(1, 0x5000, 4096), (2, 0x7000, 2048)]);
    }

    #[test]
    fn reset_keeps_only_survivors() {
        let h = hier();
        let log = FlushLog::create(h.clone(), 0, 64 << 10);
        log.log_pool(100, 200);
        log.log_flushed(1, 0x1000, 64);
        log.log_flushed(2, 0x2000, 64);
        log.reset_with(100, 200, &[(2, 0x2000, 64)]);
        log.log_flushed(3, 0x3000, 64);
        drop(log);
        h.power_fail();
        let (pool, flushed, _) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, Some((100, 200)));
        assert_eq!(flushed, vec![(2, 0x2000, 64), (3, 0x3000, 64)]);
    }

    #[test]
    fn empty_log_recovers_empty() {
        let h = hier();
        let (pool, flushed, _) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, None);
        assert!(flushed.is_empty());
    }
}
