//! Persistent log of copy-flushed sub-ImmMemTable regions.
//!
//! The DRAM side knows where flushed tables live; after a crash that
//! knowledge must come from somewhere persistent. This small log records
//! the pool region and every flushed table's `(generation, base, len)`;
//! it is rewritten (compacted) whenever a dump retires regions.
//!
//! # Crash safety: double-buffered halves
//!
//! A naive compaction (zero the log header, then re-append the survivors)
//! has a fatal window: a power failure between the zeroing and the first
//! re-append leaves an *empty* log, losing the pool record and every
//! flushed table — exactly the kind of bug a crash-point sweep exists to
//! find. The log therefore keeps **two halves** and an epoch selector:
//!
//! ```text
//!   base ──► [ selector line: magic | epoch ]   (one cacheline)
//!            [ half 0 ........................ ]
//!            [ half 1 ........................ ]
//! ```
//!
//! The half `epoch % 2` is live; appends go to it. [`FlushLog::reset_with`]
//! writes the compacted record stream into the *inactive* half and only
//! then publishes `epoch + 1` with a single 8-byte store + `clwb` +
//! `sfence`. A crash at any point inside the reset recovers either the
//! complete old log or the complete new one — never an empty log.

use cachekv_cache::Hierarchy;
use cachekv_pmem::fault_context;
use cachekv_storage::{PmemObject, WalReader, WalWriter};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const REC_POOL: u8 = 1;
const REC_FLUSHED: u8 = 2;

/// High 32 bits of the selector word. A selector that does not carry the
/// magic (zeroed media, ADR-torn garbage) reads as "no log".
const SELECTOR_MAGIC: u64 = 0x464C_4F47; // "FLOG"

/// One recovered flushed-table record: `(generation, base, len)`.
pub type FlushedRecord = (u64, u64, u64);

/// Result of replaying the log: the pool region, the flushed tables, and a
/// writer positioned at the valid tail.
pub type RecoveredLog = (Option<(u64, u64)>, Vec<FlushedRecord>, FlushLog);

struct LogState {
    epoch: u64,
    writer: WalWriter,
}

/// The flushed-table log.
pub struct FlushLog {
    hier: Arc<Hierarchy>,
    base: u64,
    cap: u64,
    state: Mutex<LogState>,
    /// Records appended this process lifetime (metrics).
    appends: AtomicU64,
    /// Compacting resets performed this process lifetime (metrics).
    resets: AtomicU64,
}

fn half_cap_of(cap: u64) -> u64 {
    ((cap - 64) / 2) & !63
}

fn half_base_of(base: u64, cap: u64, epoch: u64) -> u64 {
    base + 64 + (epoch & 1) * half_cap_of(cap)
}

/// Terminate any stale record stream at `half`, then wrap it as a fresh
/// writer. Durable before the caller publishes the selector.
fn fresh_half(hier: &Arc<Hierarchy>, half: u64, half_cap: u64) -> WalWriter {
    hier.store(half, &[0u8; 8]);
    hier.clwb(half, 8);
    hier.sfence();
    WalWriter::new(Arc::new(PmemObject::create(hier.clone(), half, half_cap)))
}

impl FlushLog {
    /// Atomically point recovery at `epoch`'s half.
    fn publish_epoch(&self, epoch: u64) {
        self.hier
            .store_u64(self.base, (SELECTOR_MAGIC << 32) | (epoch & 0xFFFF_FFFF));
        self.hier.clwb(self.base, 8);
        self.hier.sfence();
    }

    /// Create a fresh (empty) log at `[base, base+cap)`.
    pub fn create(hier: Arc<Hierarchy>, base: u64, cap: u64) -> Self {
        assert!(
            half_cap_of(cap) >= 64,
            "log region too small for two halves"
        );
        let writer = fresh_half(&hier, half_base_of(base, cap, 1), half_cap_of(cap));
        let log = FlushLog {
            hier,
            base,
            cap,
            state: Mutex::new(LogState { epoch: 1, writer }),
            appends: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        };
        log.publish_epoch(1);
        log
    }

    /// Replay the log region after a crash. Returns the recorded pool
    /// region, the flushed tables, and a writer positioned at the tail.
    pub fn recover(hier: Arc<Hierarchy>, base: u64, cap: u64) -> RecoveredLog {
        let selector = {
            let mut b = [0u8; 8];
            hier.load(base, &mut b);
            u64::from_le_bytes(b)
        };
        let (epoch, valid_selector) = if selector >> 32 == SELECTOR_MAGIC {
            (selector & 0xFFFF_FFFF, true)
        } else {
            (0, false)
        };
        let half = half_base_of(base, cap, epoch);
        let mut pool = None;
        let mut flushed = Vec::new();
        let mut valid = 0;
        if valid_selector {
            let scan = Arc::new(PmemObject::open(
                hier.clone(),
                half,
                half_cap_of(cap),
                half_cap_of(cap),
            ));
            let mut reader = WalReader::new(scan);
            while let Some(rec) = reader.next() {
                match rec.first() {
                    Some(&REC_POOL) if rec.len() >= 17 => {
                        let b = u64::from_le_bytes(rec[1..9].try_into().unwrap());
                        let s = u64::from_le_bytes(rec[9..17].try_into().unwrap());
                        pool = Some((b, s));
                    }
                    Some(&REC_FLUSHED) if rec.len() >= 25 => {
                        let gen = u64::from_le_bytes(rec[1..9].try_into().unwrap());
                        let b = u64::from_le_bytes(rec[9..17].try_into().unwrap());
                        let l = u64::from_le_bytes(rec[17..25].try_into().unwrap());
                        flushed.push((gen, b, l));
                    }
                    _ => break,
                }
                valid = reader.pos();
            }
        }
        let obj = Arc::new(PmemObject::open(
            hier.clone(),
            half,
            half_cap_of(cap),
            valid,
        ));
        let log = FlushLog {
            hier,
            base,
            cap,
            state: Mutex::new(LogState {
                epoch,
                writer: WalWriter::new(obj),
            }),
            appends: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        };
        (pool, flushed, log)
    }

    fn encode_pool(rec: &mut Vec<u8>, base: u64, size: u64) {
        rec.push(REC_POOL);
        rec.extend_from_slice(&base.to_le_bytes());
        rec.extend_from_slice(&size.to_le_bytes());
    }

    fn encode_flushed(rec: &mut Vec<u8>, gen: u64, base: u64, len: u64) {
        rec.push(REC_FLUSHED);
        rec.extend_from_slice(&gen.to_le_bytes());
        rec.extend_from_slice(&base.to_le_bytes());
        rec.extend_from_slice(&len.to_le_bytes());
    }

    /// Record the pool region (first record of a fresh log).
    pub fn log_pool(&self, base: u64, size: u64) {
        let mut rec = Vec::with_capacity(17);
        Self::encode_pool(&mut rec, base, size);
        self.state.lock().writer.append(&rec);
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one flushed table.
    pub fn log_flushed(&self, gen: u64, base: u64, len: u64) {
        let mut rec = Vec::with_capacity(25);
        Self::encode_flushed(&mut rec, gen, base, len);
        self.state.lock().writer.append(&rec);
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records appended since this handle was created (monotonic).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Compacting resets since this handle was created (monotonic).
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Compact the log after a dump: keep only the pool record and the
    /// surviving flushed tables. Crash-atomic — the old log stays live
    /// until the new half is complete and the epoch selector flips.
    pub fn reset_with(&self, pool_base: u64, pool_size: u64, survivors: &[(u64, u64, u64)]) {
        let _ctx = fault_context("flushlog::reset_with");
        let mut st = self.state.lock();
        let next = st.epoch + 1;
        let w = fresh_half(
            &self.hier,
            half_base_of(self.base, self.cap, next),
            half_cap_of(self.cap),
        );
        let mut rec = Vec::with_capacity(25);
        Self::encode_pool(&mut rec, pool_base, pool_size);
        w.append(&rec);
        for &(gen, base, len) in survivors {
            rec.clear();
            Self::encode_flushed(&mut rec, gen, base, len);
            w.append(&rec);
        }
        // The commit point: everything before this is invisible to
        // recovery, everything after recovers the full new log.
        self.publish_epoch(next);
        st.epoch = next;
        st.writer = w;
        self.resets.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{FaultPlan, PersistDomain, PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        Arc::new(Hierarchy::new(dev, CacheConfig::small()))
    }

    #[test]
    fn roundtrip_through_crash() {
        let h = hier();
        {
            let log = FlushLog::create(h.clone(), 0, 64 << 10);
            log.log_pool(1 << 16, 12 << 10);
            log.log_flushed(1, 0x5000, 4096);
            log.log_flushed(2, 0x7000, 2048);
        }
        h.power_fail();
        let (pool, flushed, _log) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, Some((1 << 16, 12 << 10)));
        assert_eq!(flushed, vec![(1, 0x5000, 4096), (2, 0x7000, 2048)]);
    }

    #[test]
    fn reset_keeps_only_survivors() {
        let h = hier();
        let log = FlushLog::create(h.clone(), 0, 64 << 10);
        log.log_pool(100, 200);
        log.log_flushed(1, 0x1000, 64);
        log.log_flushed(2, 0x2000, 64);
        log.reset_with(100, 200, &[(2, 0x2000, 64)]);
        log.log_flushed(3, 0x3000, 64);
        drop(log);
        h.power_fail();
        let (pool, flushed, _) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, Some((100, 200)));
        assert_eq!(flushed, vec![(2, 0x2000, 64), (3, 0x3000, 64)]);
    }

    #[test]
    fn empty_log_recovers_empty() {
        let h = hier();
        let (pool, flushed, _) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, None);
        assert!(flushed.is_empty());
    }

    #[test]
    fn repeated_resets_alternate_halves_and_roundtrip() {
        let h = hier();
        let log = FlushLog::create(h.clone(), 0, 64 << 10);
        log.log_pool(100, 200);
        for round in 1..=5u64 {
            log.log_flushed(round, round * 0x1000, 64);
            log.reset_with(100, 200, &[(round, round * 0x1000, 64)]);
        }
        drop(log);
        h.power_fail();
        let (pool, flushed, _) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, Some((100, 200)));
        assert_eq!(flushed, vec![(5, 5 * 0x1000, 64)]);
    }

    #[test]
    fn crash_at_the_start_of_reset_keeps_the_old_log() {
        // Regression for the naive zero-then-rewrite reset: a crash on the
        // very first persistence event inside reset_with must leave the old
        // log fully recoverable (under ADR, so nothing unflushed survives).
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::small().with_domain(PersistDomain::Adr),
        ));
        let h = Arc::new(Hierarchy::new(dev.clone(), CacheConfig::small()));
        let log = FlushLog::create(h.clone(), 0, 64 << 10);
        log.log_pool(100, 200);
        log.log_flushed(1, 0x1000, 64);
        log.log_flushed(2, 0x2000, 64);
        dev.install_fault_plan(FaultPlan::at(1));
        log.reset_with(100, 200, &[(2, 0x2000, 64)]);
        assert!(dev.fault_tripped(), "reset generated persistence events");
        let report = dev.take_trip_report().expect("tripped");
        assert_eq!(report.context, vec!["flushlog::reset_with"]);

        let dev2 = Arc::new(PmemDevice::from_media(dev.config().clone(), report.media));
        let h2 = Arc::new(Hierarchy::new(dev2, CacheConfig::small()));
        let (pool, flushed, _) = FlushLog::recover(h2, 0, 64 << 10);
        assert_eq!(pool, Some((100, 200)), "old log intact mid-reset");
        assert_eq!(flushed, vec![(1, 0x1000, 64), (2, 0x2000, 64)]);
    }

    #[test]
    fn invalid_selector_reads_as_empty() {
        let h = hier();
        // Garbage where the selector lives (no magic).
        h.store_u64(0, 0xDEAD_BEEF_0000_0007);
        h.clwb(0, 8);
        h.sfence();
        let (pool, flushed, _) = FlushLog::recover(h, 0, 64 << 10);
        assert_eq!(pool, None);
        assert!(flushed.is_empty());
    }
}
