//! DRAM-resident indexes: per-sub-MemTable sub-skiplists with lazy
//! synchronization (Section III-B) and the compacted global skiplist
//! (Section III-D).
//!
//! A sub-skiplist tracks a `list counter` and `list tail pointer`; syncing
//! compares them with the sub-MemTable's packed header and replays the data
//! region's unindexed suffix. Because the index lives in volatile DRAM it is
//! fully reconstructible from the (persistent) sub-MemTable after a crash —
//! which is exactly what recovery does.

use crate::subtable::SubTable;
use cachekv_cache::Hierarchy;
use cachekv_lsm::bloom::Bloom;
use cachekv_lsm::kv::{decode_record_at, internal_cmp, Entry, RECORD_HDR};
use cachekv_lsm::{DramSpace, SkipList};
use parking_lot::RwLock;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// What a [`ReadFilter`] says about probing a table for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// Key is outside the table's `[min, max]` fence — cannot be present.
    FenceSkip,
    /// Key is in range but the bloom filter rules it out.
    BloomSkip,
    /// The table may hold the key; probe its index.
    Probe,
}

/// Per-table read pruning: min/max fence keys plus a bloom filter over every
/// indexed key. Built only for *fully synced*, immutable indexes (flushed
/// tables, the global skiplist) — an index still lagging its table would
/// yield false negatives. Lives in DRAM beside the sub-skiplist and is
/// rebuilt from data on recovery; nothing about it is persisted.
pub struct ReadFilter {
    min: Vec<u8>,
    max: Vec<u8>,
    bloom: Bloom,
}

impl ReadFilter {
    /// Build from keys in ascending order (an index iteration); duplicates
    /// (multiple versions of one key) are allowed. `None` for an empty set.
    pub fn from_sorted_keys(keys: &[Vec<u8>]) -> Option<ReadFilter> {
        let min = keys.first()?.clone();
        let max = keys.last().expect("non-empty").clone();
        debug_assert!(min <= max, "keys must be sorted ascending");
        Some(ReadFilter {
            min,
            max,
            bloom: Bloom::build(keys.iter().map(|k| k.as_slice()), 10),
        })
    }

    /// Fence check then bloom check for `key`.
    #[inline]
    pub fn check(&self, key: &[u8]) -> FilterVerdict {
        if key < self.min.as_slice() || key > self.max.as_slice() {
            FilterVerdict::FenceSkip
        } else if !self.bloom.may_contain(key) {
            FilterVerdict::BloomSkip
        } else {
            FilterVerdict::Probe
        }
    }

    /// The `[min, max]` fence.
    pub fn fences(&self) -> (&[u8], &[u8]) {
        (&self.min, &self.max)
    }
}

struct SubIndexInner {
    list: SkipList<DramSpace>,
    /// "list counter": records indexed so far.
    synced_count: u64,
    /// "list tail pointer": data-region offset indexed up to.
    synced_tail: u64,
}

/// The index of one sub-MemTable (or of one flushed sub-ImmMemTable).
pub struct SubIndex {
    inner: RwLock<SubIndexInner>,
}

impl SubIndex {
    /// Size the skiplist arena for a data region of `data_cap` bytes
    /// (worst-case small records need more index than data).
    pub fn for_data_capacity(data_cap: u64) -> Arc<Self> {
        let arena = (data_cap * 3) as usize + 4096;
        Arc::new(SubIndex {
            inner: RwLock::new(SubIndexInner {
                list: SkipList::new(DramSpace::new(arena)),
                synced_count: 0,
                synced_tail: 0,
            }),
        })
    }

    /// `(list counter, list tail pointer)`.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.read();
        (g.synced_count, g.synced_tail)
    }

    /// Whether the index lags the sub-MemTable (cheap check: counters).
    pub fn needs_sync(&self, st: &SubTable) -> bool {
        self.inner.read().synced_count != st.header().counter()
    }

    /// Bring the sub-skiplist up to date with the sub-MemTable by replaying
    /// `[list tail, table tail)` of the data region. Returns how many
    /// records were indexed.
    pub fn sync(&self, st: &SubTable) -> usize {
        let h = st.header();
        {
            let g = self.inner.read();
            if g.synced_count == h.counter() {
                return 0;
            }
        }
        let mut g = self.inner.write();
        if g.synced_count == h.counter() {
            return 0; // raced with another syncer
        }
        let start = g.synced_tail;
        let end = h.tail();
        debug_assert!(end >= start);
        let raw = st.read_data(start, (end - start) as usize);
        let mut pos = 0usize;
        let mut added = 0usize;
        while let Some((e, next)) = decode_record_at(&raw, pos) {
            let off = (start + pos as u64) as u32;
            g.list
                .insert(&e.key, e.meta, &off.to_le_bytes())
                .expect("sub-skiplist arena sized for its data region");
            pos = next;
            added += 1;
        }
        g.synced_tail = end;
        // On a clean table the scan count matches the header counter. On a
        // torn crash image the published header can claim more records than
        // the data region decodes (the counter's cacheline persisted, a data
        // line did not); adopt the counter so sync converges instead of
        // re-scanning the gap forever.
        g.synced_count = h.counter();
        added
    }

    /// Rebuild from a raw record region `[base, base+len)` (a copy-flushed
    /// data region, which has no header line): replay everything after the
    /// current list tail.
    pub fn sync_from_region(&self, hier: &Arc<Hierarchy>, base: u64, len: u64) -> usize {
        let mut g = self.inner.write();
        let start = g.synced_tail;
        if start >= len {
            return 0;
        }
        let raw = hier.load_vec(base + start, (len - start) as usize);
        let mut pos = 0usize;
        let mut added = 0usize;
        while let Some((e, next)) = decode_record_at(&raw, pos) {
            let off = (start + pos as u64) as u32;
            g.list
                .insert(&e.key, e.meta, &off.to_le_bytes())
                .expect("sub-skiplist arena sized for its data region");
            pos = next;
            added += 1;
        }
        g.synced_tail = start + pos as u64;
        g.synced_count += added as u64;
        added
    }

    /// Diligent (PCSM-mode) insert, performed on the write path. `rec_len`
    /// is the full record length at `off`: advancing the list tail past it
    /// keeps the unindexed suffix empty, so lock-free readers scanning
    /// `[list tail, table tail)` never re-decode already-indexed records.
    pub fn insert_direct(&self, key: &[u8], meta: u64, off: u64, rec_len: u64) {
        let mut g = self.inner.write();
        g.list
            .insert(key, meta, &(off as u32).to_le_bytes())
            .expect("sub-skiplist arena sized for its data region");
        g.synced_count += 1;
        g.synced_tail = g.synced_tail.max(off + rec_len);
    }

    /// Newest `(meta, data-region offset)` for `key`.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u32)> {
        let g = self.inner.read();
        g.list
            .get_latest(key)
            .map(|(meta, v)| (meta, u32::from_le_bytes(v[..4].try_into().unwrap())))
    }

    /// All indexed `(key, meta, offset)` triples in internal order.
    pub fn entries(&self) -> Vec<IndexedEntry> {
        let g = self.inner.read();
        g.list
            .iter()
            .map(|e| {
                let off = u32::from_le_bytes(e.value[..4].try_into().unwrap());
                (e.key, e.meta, off)
            })
            .collect()
    }

    /// Build a [`ReadFilter`] over every indexed key. Only meaningful once
    /// the index is fully synced with its (now immutable) table.
    pub fn build_filter(&self) -> Option<ReadFilter> {
        let g = self.inner.read();
        let keys: Vec<Vec<u8>> = g.list.iter_keys().map(|(k, _)| k).collect();
        ReadFilter::from_sorted_keys(&keys)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.read().list.len()
    }

    /// True when nothing is indexed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read the full record at `region_base + off` through the hierarchy, or
/// `None` if the bytes there don't decode. An indexed record always decodes
/// on a live device; after a fault trip blackholes the copy-flush stream,
/// a region can be indexed in DRAM while its media holds garbage.
pub fn try_read_record(hier: &Arc<Hierarchy>, region_base: u64, off: u64) -> Option<Entry> {
    let hdr = hier.load_vec(region_base + off, RECORD_HDR);
    let klen = u16::from_le_bytes(hdr[0..2].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(hdr[2..6].try_into().unwrap()) as usize;
    let raw = hier.load_vec(region_base + off, RECORD_HDR + klen + vlen);
    decode_record_at(&raw, 0).map(|(e, _)| e)
}

/// Read the full record at `region_base + off` through the hierarchy.
pub fn read_record(hier: &Arc<Hierarchy>, region_base: u64, off: u64) -> Entry {
    try_read_record(hier, region_base, off).expect("indexed record must decode")
}

/// A sub-ImmMemTable that has been copy-flushed out of the cache: its data
/// region now lives at `base` in ordinary PMem, still indexed by its (fully
/// synced) sub-skiplist.
pub struct FlushedTable {
    /// Generation number (monotone; also logged persistently).
    pub gen: u64,
    /// Region holding the copied data region.
    pub base: u64,
    /// Bytes of data.
    pub len: u64,
    /// The table's sub-skiplist.
    pub index: Arc<SubIndex>,
    /// Fence + bloom pruning for reads; `None` only for an empty table.
    pub filter: Option<ReadFilter>,
}

/// One indexed record: `(key, meta, data-region offset)`.
pub type IndexedEntry = (Vec<u8>, u64, u32);

/// One compaction source: a table generation and its indexed entries.
pub type TableEntries = (u64, Vec<IndexedEntry>);

/// The compacted global skiplist: one entry per live key across the flushed
/// tables, valued by `(generation, data offset)`.
pub struct GlobalIndex {
    list: SkipList<DramSpace>,
    entries: usize,
    /// Total key bytes stored — sizes the arena of the *next* merge round.
    key_bytes: usize,
    filter: Option<ReadFilter>,
}

/// One k-way-merge stream head: orders by [`internal_cmp`] (key ascending,
/// newest version first), tie-broken by stream id for determinism.
struct MergeHead {
    key: Vec<u8>,
    meta: u64,
    gen: u64,
    off: u32,
    src: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        internal_cmp(&self.key, self.meta, &other.key, other.meta).then(self.src.cmp(&other.src))
    }
}

impl GlobalIndex {
    /// Merge `sources` (each `(gen, entries)` in internal order, newest data
    /// included) plus an optional previous global index into a fresh,
    /// deduplicated global skiplist — the sub-skiplist compaction of
    /// Figure 9. Only the newest version of each key survives.
    ///
    /// Every input stream is already in internal order (sub-skiplists and
    /// the previous global index iterate sorted), so a k-way heap merge
    /// folds them in one pass: no global re-sort, and source keys are moved
    /// — never cloned — into the new index.
    pub fn compact(prev: Option<&GlobalIndex>, sources: Vec<TableEntries>) -> GlobalIndex {
        // Arena budget: every input entry could survive (duplicates only
        // leave slack).
        let src_bytes: usize = sources
            .iter()
            .flat_map(|(_, es)| es.iter())
            .map(|(k, ..)| k.len() + 48)
            .sum();
        let prev_bytes = prev.map_or(0, |p| p.key_bytes + p.entries * 48);
        let mut list = SkipList::new(DramSpace::new(src_bytes + prev_bytes + 4096));

        type Stream<'a> = Box<dyn Iterator<Item = (Vec<u8>, u64, u64, u32)> + 'a>;
        let mut streams: Vec<Stream<'_>> = Vec::with_capacity(sources.len() + 1);
        if let Some(p) = prev {
            streams.push(Box::new(p.list.iter().map(|e| {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                (e.key, e.meta, gen, off)
            })));
        }
        for (gen, entries) in sources {
            streams.push(Box::new(
                entries.into_iter().map(move |(k, m, off)| (k, m, gen, off)),
            ));
        }

        let mut heap: BinaryHeap<Reverse<MergeHead>> = streams
            .iter_mut()
            .enumerate()
            .filter_map(|(src, s)| {
                s.next().map(|(key, meta, gen, off)| {
                    Reverse(MergeHead {
                        key,
                        meta,
                        gen,
                        off,
                        src,
                    })
                })
            })
            .collect();

        // Survivor keys are kept (moved, not cloned) for the bloom build.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut key_bytes = 0usize;
        while let Some(Reverse(head)) = heap.pop() {
            if let Some((key, meta, gen, off)) = streams[head.src].next() {
                heap.push(Reverse(MergeHead {
                    key,
                    meta,
                    gen,
                    off,
                    src: head.src,
                }));
            }
            // Internal order yields the newest version of a key first; any
            // repeat of the key just emitted is stale.
            if keys.last().is_some_and(|k| *k == head.key) {
                continue;
            }
            let mut v = [0u8; 12];
            v[0..8].copy_from_slice(&head.gen.to_le_bytes());
            v[8..12].copy_from_slice(&head.off.to_le_bytes());
            list.insert(&head.key, head.meta, &v)
                .expect("global skiplist arena sized from inputs");
            key_bytes += head.key.len();
            keys.push(head.key);
        }
        let entries = keys.len();
        let filter = ReadFilter::from_sorted_keys(&keys);
        GlobalIndex {
            list,
            entries,
            key_bytes,
            filter,
        }
    }

    /// Fence + bloom pruning for reads; `None` when the index is empty.
    pub fn filter(&self) -> Option<&ReadFilter> {
        self.filter.as_ref()
    }

    /// Newest `(meta, gen, off)` for `key`.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u64, u32)> {
        self.list.get_latest(key).map(|(meta, v)| {
            let gen = u64::from_le_bytes(v[0..8].try_into().unwrap());
            let off = u32::from_le_bytes(v[8..12].try_into().unwrap());
            (meta, gen, off)
        })
    }

    /// Live entries (for the L0 dump).
    pub fn entries(&self) -> Vec<(Vec<u8>, u64, u64, u32)> {
        self.list
            .iter()
            .map(|e| {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                (e.key, e.meta, gen, off)
            })
            .collect()
    }

    /// Number of live keys indexed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtable::{Append, SubTable};
    use cachekv_cache::CacheConfig;
    use cachekv_lsm::kv::{meta_seq, pack_meta, EntryKind};
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn subtable() -> SubTable {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        hier.cat_lock(0, 64 << 10);
        let st = SubTable::new(hier, 0, 64 << 10);
        st.reset_free();
        st.try_acquire();
        st
    }

    fn fill(st: &SubTable, n: u64, seq0: u64) {
        let mut scratch = Vec::new();
        for i in 0..n {
            let r = st
                .append(
                    format!("key{:04}", i % 40).as_bytes(),
                    pack_meta(seq0 + i, EntryKind::Put),
                    format!("v{}", seq0 + i).as_bytes(),
                    &mut scratch,
                )
                .unwrap();
            assert!(matches!(r, Append::Ok(_)));
        }
    }

    #[test]
    fn lazy_sync_replays_exactly_the_gap() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 100, 1);
        assert!(idx.needs_sync(&st));
        assert_eq!(idx.sync(&st), 100);
        assert!(!idx.needs_sync(&st));
        assert_eq!(idx.sync(&st), 0, "second sync is a no-op");
        fill(&st, 50, 101);
        assert_eq!(idx.sync(&st), 50, "only the suffix replays");
        let (count, tail) = idx.counters();
        assert_eq!(count, 150);
        assert_eq!(tail, st.header().tail());
    }

    #[test]
    fn get_returns_newest_version() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 120, 1); // keys cycle mod 40, three versions each
        idx.sync(&st);
        let (meta, off) = idx.get(b"key0005").unwrap();
        assert_eq!(meta_seq(meta), 86, "third version of key 5 (seq 6, 46, 86)");
        let e = read_record(
            st.hierarchy(),
            st.base + crate::subtable::DATA_OFF,
            off as u64,
        );
        assert_eq!(e.value, b"v86");
    }

    #[test]
    fn direct_insert_matches_sync_results() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        let mut scratch = Vec::new();
        for i in 0..30u64 {
            let key = format!("k{i:03}");
            let meta = pack_meta(i + 1, EntryKind::Put);
            if let Append::Ok(off) = st.append(key.as_bytes(), meta, b"v", &mut scratch).unwrap() {
                let len = cachekv_lsm::kv::record_len(key.len(), 1) as u64;
                idx.insert_direct(key.as_bytes(), meta, off, len);
            }
        }
        assert_eq!(idx.len(), 30);
        assert!(idx.get(b"k015").is_some());
    }

    #[test]
    fn global_compaction_drops_stale_versions() {
        // Two "tables": gen 1 has old versions, gen 2 newer ones.
        let older: Vec<(Vec<u8>, u64, u32)> = (0..10)
            .map(|i| {
                (
                    format!("k{i:02}").into_bytes(),
                    pack_meta(i + 1, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let newer: Vec<(Vec<u8>, u64, u32)> = (0..5)
            .map(|i| {
                (
                    format!("k{i:02}").into_bytes(),
                    pack_meta(i + 100, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let g = GlobalIndex::compact(None, vec![(1, older), (2, newer)]);
        assert_eq!(g.len(), 10, "10 distinct keys survive");
        let (meta, gen, _) = g.get(b"k03").unwrap();
        assert_eq!(meta_seq(meta), 103);
        assert_eq!(gen, 2, "newest version points at the newer table");
        let (_, gen_old, _) = g.get(b"k07").unwrap();
        assert_eq!(gen_old, 1, "unshadowed key still points at gen 1");
    }

    #[test]
    fn incremental_compaction_folds_previous_global() {
        let first: Vec<(Vec<u8>, u64, u32)> =
            vec![(b"a".to_vec(), pack_meta(1, EntryKind::Put), 0)];
        let g1 = GlobalIndex::compact(None, vec![(1, first)]);
        let second: Vec<(Vec<u8>, u64, u32)> = vec![
            (b"a".to_vec(), pack_meta(9, EntryKind::Put), 64),
            (b"b".to_vec(), pack_meta(5, EntryKind::Put), 0),
        ];
        let g2 = GlobalIndex::compact(Some(&g1), vec![(2, second)]);
        assert_eq!(g2.len(), 2);
        assert_eq!(g2.get(b"a").unwrap().1, 2, "newer gen wins");
        assert!(g2.get(b"b").is_some());
    }

    #[test]
    fn filter_fences_and_bloom_prune_absent_keys() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 100, 1); // keys key0000..key0039
        idx.sync(&st);
        let f = idx.build_filter().expect("non-empty index");
        assert_eq!(f.fences(), (b"key0000".as_slice(), b"key0039".as_slice()));
        assert_eq!(f.check(b"aaa"), FilterVerdict::FenceSkip);
        assert_eq!(f.check(b"zzz"), FilterVerdict::FenceSkip);
        assert_eq!(f.check(b"key0020"), FilterVerdict::Probe);
        // In-range absent keys ("key0020" < probe < "key0039") are
        // overwhelmingly bloom-skipped (1% FPR); count over many probes to
        // tolerate false positives.
        let skipped = (0..200)
            .filter(|i| f.check(format!("key0020abs{i:03}").as_bytes()) == FilterVerdict::BloomSkip)
            .count();
        assert!(skipped > 180, "bloom pruned only {skipped}/200 absent keys");
    }

    #[test]
    fn empty_index_builds_no_filter() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        assert!(idx.build_filter().is_none());
    }

    #[test]
    fn compact_builds_global_filter() {
        let src: Vec<(Vec<u8>, u64, u32)> = (0..50)
            .map(|i| {
                (
                    format!("g{i:03}").into_bytes(),
                    pack_meta(i + 1, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let g = GlobalIndex::compact(None, vec![(1, src)]);
        let f = g.filter().expect("non-empty global index");
        assert_eq!(f.fences(), (b"g000".as_slice(), b"g049".as_slice()));
        assert_eq!(f.check(b"g025"), FilterVerdict::Probe);
        assert_eq!(f.check(b"h000"), FilterVerdict::FenceSkip);
    }

    #[test]
    fn merge_compact_matches_multiway_inputs() {
        // Three overlapping sources with interleaved versions: the k-way
        // merge must keep exactly the newest version of each key.
        let mk = |seqs: &[(u32, u64)]| -> Vec<(Vec<u8>, u64, u32)> {
            let mut v: Vec<(Vec<u8>, u64, u32)> = seqs
                .iter()
                .map(|&(k, s)| {
                    (
                        format!("m{k:03}").into_bytes(),
                        pack_meta(s, EntryKind::Put),
                        k * 16,
                    )
                })
                .collect();
            v.sort_by(|a, b| internal_cmp(&a.0, a.1, &b.0, b.1));
            v
        };
        let g1 = GlobalIndex::compact(None, vec![(1, mk(&[(0, 1), (1, 2), (2, 3)]))]);
        let g2 = GlobalIndex::compact(
            Some(&g1),
            vec![
                (2, mk(&[(1, 10), (3, 11)])),
                (3, mk(&[(0, 20), (2, 21), (4, 22)])),
            ],
        );
        assert_eq!(g2.len(), 5);
        assert_eq!(meta_seq(g2.get(b"m000").unwrap().0), 20);
        assert_eq!(meta_seq(g2.get(b"m001").unwrap().0), 10);
        assert_eq!(meta_seq(g2.get(b"m002").unwrap().0), 21);
        assert_eq!(g2.get(b"m003").unwrap().1, 2, "gen follows newest version");
        assert_eq!(g2.get(b"m004").unwrap().1, 3);
    }

    #[test]
    fn concurrent_readers_during_sync() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 200, 1);
        let idx2 = idx.clone();
        let st2 = st.clone();
        let h = std::thread::spawn(move || idx2.sync(&st2));
        // Readers may observe a prefix; they must never panic.
        for _ in 0..100 {
            let _ = idx.get(b"key0000");
        }
        h.join().unwrap();
        assert_eq!(idx.len(), 200);
    }
}
