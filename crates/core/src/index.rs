//! DRAM-resident per-table indexes: sub-skiplists with lazy
//! synchronization (Section III-B) and the fence/bloom [`ReadFilter`]s
//! that gate probes. The compacted *global* index lives in
//! [`crate::segment`] as an ordered set of range-partitioned segments.
//!
//! A sub-skiplist tracks a `list counter` and `list tail pointer`; syncing
//! compares them with the sub-MemTable's packed header and replays the data
//! region's unindexed suffix. Because the index lives in volatile DRAM it is
//! fully reconstructible from the (persistent) sub-MemTable after a crash —
//! which is exactly what recovery does.

use crate::subtable::SubTable;
use cachekv_cache::Hierarchy;
use cachekv_lsm::bloom::Bloom;
use cachekv_lsm::kv::{decode_record_at, Entry, RECORD_HDR};
use cachekv_lsm::{DramSpace, SkipList};
use parking_lot::RwLock;
use std::sync::Arc;

/// What a [`ReadFilter`] says about probing a table for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// Key is outside the table's `[min, max]` fence — cannot be present.
    FenceSkip,
    /// Key is in range but the bloom filter rules it out.
    BloomSkip,
    /// The table may hold the key; probe its index.
    Probe,
}

/// Per-table read pruning: min/max fence keys plus a bloom filter over every
/// indexed key. Built only for *fully synced*, immutable indexes (flushed
/// tables, the global skiplist) — an index still lagging its table would
/// yield false negatives. Lives in DRAM beside the sub-skiplist and is
/// rebuilt from data on recovery; nothing about it is persisted.
pub struct ReadFilter {
    min: Vec<u8>,
    max: Vec<u8>,
    bloom: Bloom,
}

impl ReadFilter {
    /// Build from keys in ascending order (an index iteration); duplicates
    /// (multiple versions of one key) are allowed. `None` for an empty set.
    pub fn from_sorted_keys(keys: &[Vec<u8>]) -> Option<ReadFilter> {
        let min = keys.first()?.clone();
        let max = keys.last().expect("non-empty").clone();
        debug_assert!(min <= max, "keys must be sorted ascending");
        Some(ReadFilter {
            min,
            max,
            bloom: Bloom::build(keys.iter().map(|k| k.as_slice()), 10),
        })
    }

    /// Fence check then bloom check for `key`.
    #[inline]
    pub fn check(&self, key: &[u8]) -> FilterVerdict {
        if key < self.min.as_slice() || key > self.max.as_slice() {
            FilterVerdict::FenceSkip
        } else if !self.bloom.may_contain(key) {
            FilterVerdict::BloomSkip
        } else {
            FilterVerdict::Probe
        }
    }

    /// The `[min, max]` fence.
    pub fn fences(&self) -> (&[u8], &[u8]) {
        (&self.min, &self.max)
    }

    /// FNV-1a digest of the encoded bloom bits: two filters over the same
    /// key set hash identically — the recovery-determinism tests compare
    /// these across independently rebuilt indexes.
    pub fn bloom_fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in self.bloom.encode() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }
}

struct SubIndexInner {
    list: SkipList<DramSpace>,
    /// "list counter": records indexed so far.
    synced_count: u64,
    /// "list tail pointer": data-region offset indexed up to.
    synced_tail: u64,
}

/// The index of one sub-MemTable (or of one flushed sub-ImmMemTable).
pub struct SubIndex {
    inner: RwLock<SubIndexInner>,
}

impl SubIndex {
    /// Size the skiplist arena for a data region of `data_cap` bytes
    /// (worst-case small records need more index than data).
    pub fn for_data_capacity(data_cap: u64) -> Arc<Self> {
        let arena = (data_cap * 3) as usize + 4096;
        Arc::new(SubIndex {
            inner: RwLock::new(SubIndexInner {
                list: SkipList::new(DramSpace::new(arena)),
                synced_count: 0,
                synced_tail: 0,
            }),
        })
    }

    /// `(list counter, list tail pointer)`.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.read();
        (g.synced_count, g.synced_tail)
    }

    /// Whether the index lags the sub-MemTable (cheap check: counters).
    pub fn needs_sync(&self, st: &SubTable) -> bool {
        self.inner.read().synced_count != st.header().counter()
    }

    /// Bring the sub-skiplist up to date with the sub-MemTable by replaying
    /// `[list tail, table tail)` of the data region. Returns how many
    /// records were indexed.
    pub fn sync(&self, st: &SubTable) -> usize {
        let h = st.header();
        {
            let g = self.inner.read();
            if g.synced_count == h.counter() {
                return 0;
            }
        }
        let mut g = self.inner.write();
        if g.synced_count == h.counter() {
            return 0; // raced with another syncer
        }
        let start = g.synced_tail;
        let end = h.tail();
        debug_assert!(end >= start);
        let raw = st.read_data(start, (end - start) as usize);
        let mut pos = 0usize;
        let mut added = 0usize;
        while let Some((e, next)) = decode_record_at(&raw, pos) {
            let off = (start + pos as u64) as u32;
            g.list
                .insert(&e.key, e.meta, &off.to_le_bytes())
                .expect("sub-skiplist arena sized for its data region");
            pos = next;
            added += 1;
        }
        g.synced_tail = end;
        // On a clean table the scan count matches the header counter. On a
        // torn crash image the published header can claim more records than
        // the data region decodes (the counter's cacheline persisted, a data
        // line did not); adopt the counter so sync converges instead of
        // re-scanning the gap forever.
        g.synced_count = h.counter();
        added
    }

    /// Rebuild from a raw record region `[base, base+len)` (a copy-flushed
    /// data region, which has no header line): replay everything after the
    /// current list tail.
    pub fn sync_from_region(&self, hier: &Arc<Hierarchy>, base: u64, len: u64) -> usize {
        let mut g = self.inner.write();
        let start = g.synced_tail;
        if start >= len {
            return 0;
        }
        let raw = hier.load_vec(base + start, (len - start) as usize);
        let mut pos = 0usize;
        let mut added = 0usize;
        while let Some((e, next)) = decode_record_at(&raw, pos) {
            let off = (start + pos as u64) as u32;
            g.list
                .insert(&e.key, e.meta, &off.to_le_bytes())
                .expect("sub-skiplist arena sized for its data region");
            pos = next;
            added += 1;
        }
        g.synced_tail = start + pos as u64;
        g.synced_count += added as u64;
        added
    }

    /// Diligent (PCSM-mode) insert, performed on the write path. `rec_len`
    /// is the full record length at `off`: advancing the list tail past it
    /// keeps the unindexed suffix empty, so lock-free readers scanning
    /// `[list tail, table tail)` never re-decode already-indexed records.
    pub fn insert_direct(&self, key: &[u8], meta: u64, off: u64, rec_len: u64) {
        let mut g = self.inner.write();
        g.list
            .insert(key, meta, &(off as u32).to_le_bytes())
            .expect("sub-skiplist arena sized for its data region");
        g.synced_count += 1;
        g.synced_tail = g.synced_tail.max(off + rec_len);
    }

    /// Newest `(meta, data-region offset)` for `key`.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u32)> {
        let g = self.inner.read();
        g.list
            .get_latest(key)
            .map(|(meta, v)| (meta, u32::from_le_bytes(v[..4].try_into().unwrap())))
    }

    /// All indexed `(key, meta, offset)` triples in internal order.
    pub fn entries(&self) -> Vec<IndexedEntry> {
        let g = self.inner.read();
        g.list
            .iter()
            .map(|e| {
                let off = u32::from_le_bytes(e.value[..4].try_into().unwrap());
                (e.key, e.meta, off)
            })
            .collect()
    }

    /// Indexed `(key, meta, offset)` triples with `start <= key < end`
    /// (empty `end` = unbounded), in internal order. Seeks instead of
    /// walking the whole list, so a narrow scan over a large index stays
    /// cheap.
    pub fn range_entries(&self, start: &[u8], end: &[u8]) -> Vec<IndexedEntry> {
        let g = self.inner.read();
        g.list
            .iter_from(start)
            .take_while(|e| end.is_empty() || e.key.as_slice() < end)
            .map(|e| {
                let off = u32::from_le_bytes(e.value[..4].try_into().unwrap());
                (e.key, e.meta, off)
            })
            .collect()
    }

    /// Build a [`ReadFilter`] over every indexed key. Only meaningful once
    /// the index is fully synced with its (now immutable) table.
    pub fn build_filter(&self) -> Option<ReadFilter> {
        let g = self.inner.read();
        let keys: Vec<Vec<u8>> = g.list.iter_keys().map(|(k, _)| k).collect();
        ReadFilter::from_sorted_keys(&keys)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.read().list.len()
    }

    /// True when nothing is indexed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read the full record at `region_base + off` through the hierarchy, or
/// `None` if the bytes there don't decode. An indexed record always decodes
/// on a live device; after a fault trip blackholes the copy-flush stream,
/// a region can be indexed in DRAM while its media holds garbage.
pub fn try_read_record(hier: &Arc<Hierarchy>, region_base: u64, off: u64) -> Option<Entry> {
    let hdr = hier.load_vec(region_base + off, RECORD_HDR);
    let klen = u16::from_le_bytes(hdr[0..2].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(hdr[2..6].try_into().unwrap()) as usize;
    let raw = hier.load_vec(region_base + off, RECORD_HDR + klen + vlen);
    decode_record_at(&raw, 0).map(|(e, _)| e)
}

/// Read the full record at `region_base + off` through the hierarchy.
pub fn read_record(hier: &Arc<Hierarchy>, region_base: u64, off: u64) -> Entry {
    try_read_record(hier, region_base, off).expect("indexed record must decode")
}

/// A sub-ImmMemTable that has been copy-flushed out of the cache: its data
/// region now lives at `base` in ordinary PMem, still indexed by its (fully
/// synced) sub-skiplist.
pub struct FlushedTable {
    /// Generation number (monotone; also logged persistently).
    pub gen: u64,
    /// Region holding the copied data region.
    pub base: u64,
    /// Bytes of data.
    pub len: u64,
    /// The table's sub-skiplist.
    pub index: Arc<SubIndex>,
    /// Fence + bloom pruning for reads; `None` only for an empty table.
    pub filter: Option<ReadFilter>,
}

/// One indexed record: `(key, meta, data-region offset)`.
pub type IndexedEntry = (Vec<u8>, u64, u32);

/// One compaction source: a table generation and its indexed entries.
pub type TableEntries = (u64, Vec<IndexedEntry>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtable::{Append, SubTable};
    use cachekv_cache::CacheConfig;
    use cachekv_lsm::kv::{meta_seq, pack_meta, EntryKind};
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn subtable() -> SubTable {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        hier.cat_lock(0, 64 << 10);
        let st = SubTable::new(hier, 0, 64 << 10);
        st.reset_free();
        st.try_acquire();
        st
    }

    fn fill(st: &SubTable, n: u64, seq0: u64) {
        let mut scratch = Vec::new();
        for i in 0..n {
            let r = st
                .append(
                    format!("key{:04}", i % 40).as_bytes(),
                    pack_meta(seq0 + i, EntryKind::Put),
                    format!("v{}", seq0 + i).as_bytes(),
                    &mut scratch,
                )
                .unwrap();
            assert!(matches!(r, Append::Ok(_)));
        }
    }

    #[test]
    fn lazy_sync_replays_exactly_the_gap() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 100, 1);
        assert!(idx.needs_sync(&st));
        assert_eq!(idx.sync(&st), 100);
        assert!(!idx.needs_sync(&st));
        assert_eq!(idx.sync(&st), 0, "second sync is a no-op");
        fill(&st, 50, 101);
        assert_eq!(idx.sync(&st), 50, "only the suffix replays");
        let (count, tail) = idx.counters();
        assert_eq!(count, 150);
        assert_eq!(tail, st.header().tail());
    }

    #[test]
    fn get_returns_newest_version() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 120, 1); // keys cycle mod 40, three versions each
        idx.sync(&st);
        let (meta, off) = idx.get(b"key0005").unwrap();
        assert_eq!(meta_seq(meta), 86, "third version of key 5 (seq 6, 46, 86)");
        let e = read_record(
            st.hierarchy(),
            st.base + crate::subtable::DATA_OFF,
            off as u64,
        );
        assert_eq!(e.value, b"v86");
    }

    #[test]
    fn direct_insert_matches_sync_results() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        let mut scratch = Vec::new();
        for i in 0..30u64 {
            let key = format!("k{i:03}");
            let meta = pack_meta(i + 1, EntryKind::Put);
            if let Append::Ok(off) = st.append(key.as_bytes(), meta, b"v", &mut scratch).unwrap() {
                let len = cachekv_lsm::kv::record_len(key.len(), 1) as u64;
                idx.insert_direct(key.as_bytes(), meta, off, len);
            }
        }
        assert_eq!(idx.len(), 30);
        assert!(idx.get(b"k015").is_some());
    }

    #[test]
    fn filter_fences_and_bloom_prune_absent_keys() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 100, 1); // keys key0000..key0039
        idx.sync(&st);
        let f = idx.build_filter().expect("non-empty index");
        assert_eq!(f.fences(), (b"key0000".as_slice(), b"key0039".as_slice()));
        assert_eq!(f.check(b"aaa"), FilterVerdict::FenceSkip);
        assert_eq!(f.check(b"zzz"), FilterVerdict::FenceSkip);
        assert_eq!(f.check(b"key0020"), FilterVerdict::Probe);
        // In-range absent keys ("key0020" < probe < "key0039") are
        // overwhelmingly bloom-skipped (1% FPR); count over many probes to
        // tolerate false positives.
        let skipped = (0..200)
            .filter(|i| f.check(format!("key0020abs{i:03}").as_bytes()) == FilterVerdict::BloomSkip)
            .count();
        assert!(skipped > 180, "bloom pruned only {skipped}/200 absent keys");
    }

    #[test]
    fn empty_index_builds_no_filter() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        assert!(idx.build_filter().is_none());
    }

    #[test]
    fn bloom_fingerprints_are_stable_per_key_set() {
        let keys: Vec<Vec<u8>> = (0..40).map(|i| format!("f{i:03}").into_bytes()).collect();
        let a = ReadFilter::from_sorted_keys(&keys).unwrap();
        let b = ReadFilter::from_sorted_keys(&keys).unwrap();
        assert_eq!(a.bloom_fingerprint(), b.bloom_fingerprint());
        let other: Vec<Vec<u8>> = (0..40).map(|i| format!("g{i:03}").into_bytes()).collect();
        let c = ReadFilter::from_sorted_keys(&other).unwrap();
        assert_ne!(a.bloom_fingerprint(), c.bloom_fingerprint());
    }

    #[test]
    fn concurrent_readers_during_sync() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 200, 1);
        let idx2 = idx.clone();
        let st2 = st.clone();
        let h = std::thread::spawn(move || idx2.sync(&st2));
        // Readers may observe a prefix; they must never panic.
        for _ in 0..100 {
            let _ = idx.get(b"key0000");
        }
        h.join().unwrap();
        assert_eq!(idx.len(), 200);
    }
}
