//! DRAM-resident indexes: per-sub-MemTable sub-skiplists with lazy
//! synchronization (Section III-B) and the compacted global skiplist
//! (Section III-D).
//!
//! A sub-skiplist tracks a `list counter` and `list tail pointer`; syncing
//! compares them with the sub-MemTable's packed header and replays the data
//! region's unindexed suffix. Because the index lives in volatile DRAM it is
//! fully reconstructible from the (persistent) sub-MemTable after a crash —
//! which is exactly what recovery does.

use crate::subtable::SubTable;
use cachekv_cache::Hierarchy;
use cachekv_lsm::kv::{decode_record_at, Entry, RECORD_HDR};
use cachekv_lsm::{DramSpace, SkipList};
use parking_lot::RwLock;
use std::sync::Arc;

struct SubIndexInner {
    list: SkipList<DramSpace>,
    /// "list counter": records indexed so far.
    synced_count: u64,
    /// "list tail pointer": data-region offset indexed up to.
    synced_tail: u64,
}

/// The index of one sub-MemTable (or of one flushed sub-ImmMemTable).
pub struct SubIndex {
    inner: RwLock<SubIndexInner>,
}

impl SubIndex {
    /// Size the skiplist arena for a data region of `data_cap` bytes
    /// (worst-case small records need more index than data).
    pub fn for_data_capacity(data_cap: u64) -> Arc<Self> {
        let arena = (data_cap * 3) as usize + 4096;
        Arc::new(SubIndex {
            inner: RwLock::new(SubIndexInner {
                list: SkipList::new(DramSpace::new(arena)),
                synced_count: 0,
                synced_tail: 0,
            }),
        })
    }

    /// `(list counter, list tail pointer)`.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.read();
        (g.synced_count, g.synced_tail)
    }

    /// Whether the index lags the sub-MemTable (cheap check: counters).
    pub fn needs_sync(&self, st: &SubTable) -> bool {
        self.inner.read().synced_count != st.header().counter()
    }

    /// Bring the sub-skiplist up to date with the sub-MemTable by replaying
    /// `[list tail, table tail)` of the data region. Returns how many
    /// records were indexed.
    pub fn sync(&self, st: &SubTable) -> usize {
        let h = st.header();
        {
            let g = self.inner.read();
            if g.synced_count == h.counter() {
                return 0;
            }
        }
        let mut g = self.inner.write();
        if g.synced_count == h.counter() {
            return 0; // raced with another syncer
        }
        let start = g.synced_tail;
        let end = h.tail();
        debug_assert!(end >= start);
        let raw = st.read_data(start, (end - start) as usize);
        let mut pos = 0usize;
        let mut added = 0usize;
        while let Some((e, next)) = decode_record_at(&raw, pos) {
            let off = (start + pos as u64) as u32;
            g.list
                .insert(&e.key, e.meta, &off.to_le_bytes())
                .expect("sub-skiplist arena sized for its data region");
            pos = next;
            added += 1;
        }
        g.synced_tail = end;
        // On a clean table the scan count matches the header counter. On a
        // torn crash image the published header can claim more records than
        // the data region decodes (the counter's cacheline persisted, a data
        // line did not); adopt the counter so sync converges instead of
        // re-scanning the gap forever.
        g.synced_count = h.counter();
        added
    }

    /// Rebuild from a raw record region `[base, base+len)` (a copy-flushed
    /// data region, which has no header line): replay everything after the
    /// current list tail.
    pub fn sync_from_region(&self, hier: &Arc<Hierarchy>, base: u64, len: u64) -> usize {
        let mut g = self.inner.write();
        let start = g.synced_tail;
        if start >= len {
            return 0;
        }
        let raw = hier.load_vec(base + start, (len - start) as usize);
        let mut pos = 0usize;
        let mut added = 0usize;
        while let Some((e, next)) = decode_record_at(&raw, pos) {
            let off = (start + pos as u64) as u32;
            g.list
                .insert(&e.key, e.meta, &off.to_le_bytes())
                .expect("sub-skiplist arena sized for its data region");
            pos = next;
            added += 1;
        }
        g.synced_tail = start + pos as u64;
        g.synced_count += added as u64;
        added
    }

    /// Diligent (PCSM-mode) insert, performed on the write path.
    pub fn insert_direct(&self, key: &[u8], meta: u64, off: u64) {
        let mut g = self.inner.write();
        g.list
            .insert(key, meta, &(off as u32).to_le_bytes())
            .expect("sub-skiplist arena sized for its data region");
        g.synced_count += 1;
        // Tail advances with the table; exact value is refreshed on sync.
    }

    /// Newest `(meta, data-region offset)` for `key`.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u32)> {
        let g = self.inner.read();
        g.list
            .get_latest(key)
            .map(|(meta, v)| (meta, u32::from_le_bytes(v[..4].try_into().unwrap())))
    }

    /// All indexed `(key, meta, offset)` triples in internal order.
    pub fn entries(&self) -> Vec<IndexedEntry> {
        let g = self.inner.read();
        g.list
            .iter()
            .map(|e| {
                let off = u32::from_le_bytes(e.value[..4].try_into().unwrap());
                (e.key, e.meta, off)
            })
            .collect()
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.read().list.len()
    }

    /// True when nothing is indexed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read the full record at `region_base + off` through the hierarchy, or
/// `None` if the bytes there don't decode. An indexed record always decodes
/// on a live device; after a fault trip blackholes the copy-flush stream,
/// a region can be indexed in DRAM while its media holds garbage.
pub fn try_read_record(hier: &Arc<Hierarchy>, region_base: u64, off: u64) -> Option<Entry> {
    let hdr = hier.load_vec(region_base + off, RECORD_HDR);
    let klen = u16::from_le_bytes(hdr[0..2].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(hdr[2..6].try_into().unwrap()) as usize;
    let raw = hier.load_vec(region_base + off, RECORD_HDR + klen + vlen);
    decode_record_at(&raw, 0).map(|(e, _)| e)
}

/// Read the full record at `region_base + off` through the hierarchy.
pub fn read_record(hier: &Arc<Hierarchy>, region_base: u64, off: u64) -> Entry {
    try_read_record(hier, region_base, off).expect("indexed record must decode")
}

/// A sub-ImmMemTable that has been copy-flushed out of the cache: its data
/// region now lives at `base` in ordinary PMem, still indexed by its (fully
/// synced) sub-skiplist.
pub struct FlushedTable {
    /// Generation number (monotone; also logged persistently).
    pub gen: u64,
    /// Region holding the copied data region.
    pub base: u64,
    /// Bytes of data.
    pub len: u64,
    /// The table's sub-skiplist.
    pub index: Arc<SubIndex>,
}

/// One indexed record: `(key, meta, data-region offset)`.
pub type IndexedEntry = (Vec<u8>, u64, u32);

/// One compaction source: a table generation and its indexed entries.
pub type TableEntries = (u64, Vec<IndexedEntry>);

/// The compacted global skiplist: one entry per live key across the flushed
/// tables, valued by `(generation, data offset)`.
pub struct GlobalIndex {
    list: SkipList<DramSpace>,
    entries: usize,
}

impl GlobalIndex {
    /// Merge `sources` (each `(gen, entries)` in internal order, newest data
    /// included) plus an optional previous global index into a fresh,
    /// deduplicated global skiplist — the sub-skiplist compaction of
    /// Figure 9. Only the newest version of each key survives.
    pub fn compact(prev: Option<&GlobalIndex>, sources: &[TableEntries]) -> GlobalIndex {
        // Gather (key, meta, gen, off) from every source, then sort in
        // internal order and keep the first (= newest) per key.
        let mut all: Vec<(Vec<u8>, u64, u64, u32)> = Vec::new();
        if let Some(p) = prev {
            for e in p.list.iter() {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                all.push((e.key, e.meta, gen, off));
            }
        }
        for (gen, entries) in sources {
            for (key, meta, off) in entries {
                all.push((key.clone(), *meta, *gen, *off));
            }
        }
        all.sort_by(|a, b| cachekv_lsm::kv::internal_cmp(&a.0, a.1, &b.0, b.1));
        let node_budget: usize = all.iter().map(|(k, ..)| k.len() + 48).sum::<usize>() + 4096;
        let mut list = SkipList::new(DramSpace::new(node_budget));
        let mut entries = 0;
        let mut last_key: Option<&[u8]> = None;
        // Borrow gymnastics: collect survivor indices first.
        let mut keep = Vec::with_capacity(all.len());
        for (i, (key, ..)) in all.iter().enumerate() {
            if last_key == Some(key.as_slice()) {
                continue;
            }
            last_key = Some(key.as_slice());
            keep.push(i);
        }
        for i in keep {
            let (key, meta, gen, off) = &all[i];
            let mut v = [0u8; 12];
            v[0..8].copy_from_slice(&gen.to_le_bytes());
            v[8..12].copy_from_slice(&off.to_le_bytes());
            list.insert(key, *meta, &v)
                .expect("global skiplist arena sized from inputs");
            entries += 1;
        }
        GlobalIndex { list, entries }
    }

    /// Newest `(meta, gen, off)` for `key`.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u64, u32)> {
        self.list.get_latest(key).map(|(meta, v)| {
            let gen = u64::from_le_bytes(v[0..8].try_into().unwrap());
            let off = u32::from_le_bytes(v[8..12].try_into().unwrap());
            (meta, gen, off)
        })
    }

    /// Live entries (for the L0 dump).
    pub fn entries(&self) -> Vec<(Vec<u8>, u64, u64, u32)> {
        self.list
            .iter()
            .map(|e| {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                (e.key, e.meta, gen, off)
            })
            .collect()
    }

    /// Number of live keys indexed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtable::{Append, SubTable};
    use cachekv_cache::CacheConfig;
    use cachekv_lsm::kv::{meta_seq, pack_meta, EntryKind};
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn subtable() -> SubTable {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        hier.cat_lock(0, 64 << 10);
        let st = SubTable::new(hier, 0, 64 << 10);
        st.reset_free();
        st.try_acquire();
        st
    }

    fn fill(st: &SubTable, n: u64, seq0: u64) {
        let mut scratch = Vec::new();
        for i in 0..n {
            let r = st
                .append(
                    format!("key{:04}", i % 40).as_bytes(),
                    pack_meta(seq0 + i, EntryKind::Put),
                    format!("v{}", seq0 + i).as_bytes(),
                    &mut scratch,
                )
                .unwrap();
            assert!(matches!(r, Append::Ok(_)));
        }
    }

    #[test]
    fn lazy_sync_replays_exactly_the_gap() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 100, 1);
        assert!(idx.needs_sync(&st));
        assert_eq!(idx.sync(&st), 100);
        assert!(!idx.needs_sync(&st));
        assert_eq!(idx.sync(&st), 0, "second sync is a no-op");
        fill(&st, 50, 101);
        assert_eq!(idx.sync(&st), 50, "only the suffix replays");
        let (count, tail) = idx.counters();
        assert_eq!(count, 150);
        assert_eq!(tail, st.header().tail());
    }

    #[test]
    fn get_returns_newest_version() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 120, 1); // keys cycle mod 40, three versions each
        idx.sync(&st);
        let (meta, off) = idx.get(b"key0005").unwrap();
        assert_eq!(meta_seq(meta), 86, "third version of key 5 (seq 6, 46, 86)");
        let e = read_record(
            st.hierarchy(),
            st.base + crate::subtable::DATA_OFF,
            off as u64,
        );
        assert_eq!(e.value, b"v86");
    }

    #[test]
    fn direct_insert_matches_sync_results() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        let mut scratch = Vec::new();
        for i in 0..30u64 {
            let key = format!("k{i:03}");
            let meta = pack_meta(i + 1, EntryKind::Put);
            if let Append::Ok(off) = st.append(key.as_bytes(), meta, b"v", &mut scratch).unwrap() {
                idx.insert_direct(key.as_bytes(), meta, off);
            }
        }
        assert_eq!(idx.len(), 30);
        assert!(idx.get(b"k015").is_some());
    }

    #[test]
    fn global_compaction_drops_stale_versions() {
        // Two "tables": gen 1 has old versions, gen 2 newer ones.
        let older: Vec<(Vec<u8>, u64, u32)> = (0..10)
            .map(|i| {
                (
                    format!("k{i:02}").into_bytes(),
                    pack_meta(i + 1, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let newer: Vec<(Vec<u8>, u64, u32)> = (0..5)
            .map(|i| {
                (
                    format!("k{i:02}").into_bytes(),
                    pack_meta(i + 100, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let g = GlobalIndex::compact(None, &[(1, older), (2, newer)]);
        assert_eq!(g.len(), 10, "10 distinct keys survive");
        let (meta, gen, _) = g.get(b"k03").unwrap();
        assert_eq!(meta_seq(meta), 103);
        assert_eq!(gen, 2, "newest version points at the newer table");
        let (_, gen_old, _) = g.get(b"k07").unwrap();
        assert_eq!(gen_old, 1, "unshadowed key still points at gen 1");
    }

    #[test]
    fn incremental_compaction_folds_previous_global() {
        let first: Vec<(Vec<u8>, u64, u32)> =
            vec![(b"a".to_vec(), pack_meta(1, EntryKind::Put), 0)];
        let g1 = GlobalIndex::compact(None, &[(1, first)]);
        let second: Vec<(Vec<u8>, u64, u32)> = vec![
            (b"a".to_vec(), pack_meta(9, EntryKind::Put), 64),
            (b"b".to_vec(), pack_meta(5, EntryKind::Put), 0),
        ];
        let g2 = GlobalIndex::compact(Some(&g1), &[(2, second)]);
        assert_eq!(g2.len(), 2);
        assert_eq!(g2.get(b"a").unwrap().1, 2, "newer gen wins");
        assert!(g2.get(b"b").is_some());
    }

    #[test]
    fn concurrent_readers_during_sync() {
        let st = subtable();
        let idx = SubIndex::for_data_capacity(st.data_capacity());
        fill(&st, 200, 1);
        let idx2 = idx.clone();
        let st2 = st.clone();
        let h = std::thread::spawn(move || idx2.sync(&st2));
        // Readers may observe a prefix; they must never panic.
        for _ in 0..100 {
            let _ = idx.get(b"key0000");
        }
        h.join().unwrap();
        assert_eq!(idx.len(), 200);
    }
}
