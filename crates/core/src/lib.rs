//! # CacheKV
//!
//! A reproduction of **"Redesigning High-Performance LSM-based Key-Value
//! Stores with Persistent CPU Caches"** (Zhong, Shen, Yu, Shu — ICDE 2023):
//! the first LSM key-value store designed for eADR platforms, where the
//! persistence boundary reaches the CPU caches.
//!
//! ## Architecture (paper Figure 6)
//!
//! ```text
//!   writers (one sub-MemTable per core)          readers
//!      │  append + 64-bit header CAS                │
//!      ▼                                            ▼
//!   ┌──────────── CAT-locked LLC pool ────────────────────┐   DRAM:
//!   │ [sub-MemTable][sub-MemTable][sub-MemTable]...       │   sub-skiplists
//!   └──────────────────────────────────────────────────────┘  (lazy sync)
//!      │ copy-based flush (non-temporal stream)
//!      ▼
//!   flushed sub-ImmMemTables in PMem ←── partitioned global index
//!      │ dump at threshold               (fence-bounded segments,
//!      ▼                                  merged off-path in parallel)
//!   LSM storage component (L0 partially sorted, L1+ leveled)
//! ```
//!
//! The four techniques and where they live:
//!
//! * **Per-core sub-MemTable (PCSM)** — [`pool`], [`subtable`]: a pool of
//!   small tables pinned in the LLC via Intel CAT; each core appends to its
//!   own, eliminating MemTable lock contention (paper R2). The packed
//!   38/2/24-bit header word is published by a single CAS for crash
//!   atomicity.
//! * **Lazy index update (LIU)** — [`index::SubIndex`]: DRAM sub-skiplists
//!   synchronized off the critical path (on read / every N writes / on
//!   seal).
//! * **Copy-based flush (CF)** — [`store`]: sealed tables are streamed to
//!   PMem with non-temporal stores in one multi-MB copy, filling whole
//!   XPLines instead of leaking random cachelines (paper R1).
//! * **Sub-skiplist compaction (SC)** — [`segment::PartitionedIndex`] +
//!   [`sched::Scheduler`]: flushed tables' indexes merge into a
//!   range-partitioned global index (ordered fence-bounded segments),
//!   dropping stale nodes to bound read amplification. Rounds only touch
//!   overlapped segments, merges run in parallel on an off-path
//!   housekeeping worker pool, and puts never compact inline.
//!
//! ## Example
//!
//! ```
//! use cachekv::{CacheKv, CacheKvConfig};
//! use cachekv_cache::{CacheConfig, Hierarchy};
//! use cachekv_lsm::KvStore;
//! use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
//! use std::sync::Arc;
//!
//! let dev = Arc::new(PmemDevice::new(
//!     PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
//! ));
//! let hier = Arc::new(Hierarchy::new(dev, CacheConfig::paper()));
//! let db = CacheKv::create(hier, CacheKvConfig::test_small());
//! db.put(b"hello", b"persistent caches").unwrap();
//! assert_eq!(db.get(b"hello").unwrap(), Some(b"persistent caches".to_vec()));
//! ```

pub mod config;
pub mod crashtest;
pub(crate) mod cursor;
pub mod flushlog;
pub mod index;
pub mod metrics;
pub mod pool;
pub mod sched;
pub mod segment;
pub mod store;
pub mod subtable;

pub use config::{CacheKvConfig, Techniques};
pub use pool::Pool;
pub use store::CacheKv;
pub use subtable::{PackedHeader, SlotState, SubTable};
