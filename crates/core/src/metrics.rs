//! CacheKV's registered instruments.
//!
//! One [`StoreObs`] per store instance, shared by the front-end write/read
//! paths and the background flush/maintenance threads. All hot-path handles
//! are pre-fetched `Arc`s so recording is purely atomic; the registry lock
//! is only taken at store construction and at snapshot time.

use std::sync::Arc;

use cachekv_obs::{Counter, Gauge, Histogram, PhaseSet, Registry, TimeSource};

/// Instruments for the memory component and its pipelines.
pub struct StoreObs {
    pub registry: Registry,
    pub time_source: TimeSource,

    // Front-end operations.
    pub puts: Arc<Counter>,
    pub gets: Arc<Counter>,
    pub deletes: Arc<Counter>,
    /// Whole-op write latency (puts + deletes share the write path).
    pub write_ns: Arc<Histogram>,
    /// Whole-op get latency.
    pub get_ns: Arc<Histogram>,
    /// Figure 5 phase decomposition of the write path.
    pub put_phases: PhaseSet,

    // Seal / flush pipeline.
    pub seals: Arc<Counter>,
    /// Sub-MemTables force-sealed away from an idle peer core (the
    /// contention signal behind Figure 12).
    pub steals: Arc<Counter>,
    pub flushes: Arc<Counter>,
    pub flushed_bytes: Arc<Counter>,
    pub flush_ns: Arc<Histogram>,
    /// Sealed tables queued for flushing, not yet flushed.
    pub flush_queue_depth: Arc<Gauge>,

    // Lazy index update.
    pub liu_syncs: Arc<Counter>,

    // Sub-skiplist compaction and L0 dumps.
    pub sc_merges: Arc<Counter>,
    pub sc_merge_ns: Arc<Histogram>,
    pub l0_dumps: Arc<Counter>,
    pub l0_dump_entries: Arc<Counter>,

    // Recovery.
    pub recoveries: Arc<Counter>,
    pub recovery_ns: Arc<Histogram>,
}

impl StoreObs {
    /// Register every instrument under the `core.` namespace.
    pub fn new(time_source: TimeSource) -> Self {
        let registry = Registry::new();
        StoreObs {
            time_source,
            puts: registry.counter("core.puts"),
            gets: registry.counter("core.gets"),
            deletes: registry.counter("core.deletes"),
            write_ns: registry.histogram("core.write_ns"),
            get_ns: registry.histogram("core.get_ns"),
            put_phases: PhaseSet::register(&registry, "core.put", time_source),
            seals: registry.counter("core.seals"),
            steals: registry.counter("core.steals"),
            flushes: registry.counter("core.flushes"),
            flushed_bytes: registry.counter("core.flushed_bytes"),
            flush_ns: registry.histogram("core.flush_ns"),
            flush_queue_depth: registry.gauge("core.flush.queue_depth"),
            liu_syncs: registry.counter("core.liu.syncs"),
            sc_merges: registry.counter("core.sc.merges"),
            sc_merge_ns: registry.histogram("core.sc.merge_ns"),
            l0_dumps: registry.counter("core.l0.dumps"),
            l0_dump_entries: registry.counter("core.l0.dump_entries"),
            recoveries: registry.counter("core.recoveries"),
            recovery_ns: registry.histogram("core.recovery_ns"),
            registry,
        }
    }
}
