//! CacheKV's registered instruments.
//!
//! One [`StoreObs`] per store instance, shared by the front-end write/read
//! paths and the background flush/maintenance threads. All hot-path handles
//! are pre-fetched `Arc`s so recording is purely atomic; the registry lock
//! is only taken at store construction and at snapshot time.

use std::sync::Arc;

use cachekv_obs::{
    Counter, Gauge, Histogram, HousekeepPhaseSet, PhaseSet, ReadPhaseSet, Registry, TimeSource,
};

/// Instruments for the memory component and its pipelines.
pub struct StoreObs {
    pub registry: Registry,
    pub time_source: TimeSource,

    // Front-end operations.
    pub puts: Arc<Counter>,
    pub gets: Arc<Counter>,
    pub deletes: Arc<Counter>,
    /// Whole-op write latency (puts + deletes share the write path).
    pub write_ns: Arc<Histogram>,
    /// Whole-op get latency.
    pub get_ns: Arc<Histogram>,
    /// Range scans served.
    pub scans: Arc<Counter>,
    /// Whole-op scan latency (snapshot capture + merge).
    pub scan_ns: Arc<Histogram>,
    /// Live `(key, value)` pairs returned by scans.
    pub scan_items: Arc<Counter>,
    /// Sources (flushed tables, segments, sstables) a scan skipped because
    /// their key fences were disjoint from the range.
    pub scan_fence_skips: Arc<Counter>,
    /// Snapshot captures thrown away and retried because a version-dropping
    /// compaction (SC fold swap, L0 dump, LSM compaction) landed mid-capture.
    pub scan_retries: Arc<Counter>,
    /// Figure 5 phase decomposition of the write path.
    pub put_phases: PhaseSet,
    /// Probe-order decomposition of the read path.
    pub get_phases: ReadPhaseSet,

    // Read-path pruning (contention-free read path).
    /// Sub-indexes actually probed (active, sealing, flushed, global).
    pub read_probes: Arc<Counter>,
    /// Tables skipped because the key fell outside their min/max fence.
    pub read_fence_skips: Arc<Counter>,
    /// Tables skipped by a bloom-filter miss (key in range, not present).
    pub read_bloom_skips: Arc<Counter>,
    /// LSM probes skipped because an in-memory hit dominated every
    /// persisted sequence number.
    pub read_lsm_short_circuits: Arc<Counter>,
    /// CoreSlot mutex acquisitions made from inside a get. The read path
    /// is lock-free by construction, so this must stay at zero; it exists
    /// as a regression tripwire, asserted in tests and `validate_metrics`.
    pub read_core_lock_acquisitions: Arc<Counter>,

    // Seal / flush pipeline.
    pub seals: Arc<Counter>,
    /// Sub-MemTables force-sealed away from an idle peer core (the
    /// contention signal behind Figure 12).
    pub steals: Arc<Counter>,
    pub flushes: Arc<Counter>,
    pub flushed_bytes: Arc<Counter>,
    pub flush_ns: Arc<Histogram>,
    /// Sealed tables queued for flushing, not yet flushed.
    pub flush_queue_depth: Arc<Gauge>,

    // Lazy index update.
    pub liu_syncs: Arc<Counter>,

    // Housekeeping scheduler (the off-path worker pool).
    /// Plan / merge / swap / dump decomposition of a housekeeping round.
    pub hk_phases: HousekeepPhaseSet,
    /// Jobs queued and not yet dequeued by a worker.
    pub hk_queue_depth: Arc<Gauge>,
    /// Background submitters that blocked on a full queue.
    pub hk_stalls: Arc<Counter>,
    /// Puts stalled at a seal by the flushed-bytes watermark.
    pub hk_put_stalls: Arc<Counter>,
    /// Total nanoseconds puts spent stalled at the watermark.
    pub hk_put_stall_ns: Arc<Counter>,
    /// Reader sync nudges dropped because the queue was full.
    pub hk_sync_dropped: Arc<Counter>,
    /// Sync jobs discarded because their sealed generation already rolled.
    pub hk_sync_stale: Arc<Counter>,
    /// Compaction merges executed from inside a put. The scheduler exists
    /// so this never happens; it is the off-path regression tripwire,
    /// asserted zero in tests and `validate_metrics`.
    pub hk_inline_merges: Arc<Counter>,
    /// Housekeeping rounds executed.
    pub hk_rounds: Arc<Counter>,

    // Sub-skiplist compaction and L0 dumps.
    pub sc_merges: Arc<Counter>,
    pub sc_merge_ns: Arc<Histogram>,
    /// One sample per segment merge task (the parallel unit of SC).
    pub sc_segment_merge_ns: Arc<Histogram>,
    /// Index bytes read by merges — against `core.sc.index_bytes`, the
    /// incrementality claim: merge bytes track touched data, not the index.
    pub sc_merge_bytes: Arc<Counter>,
    /// Live segments in the partitioned global index.
    pub sc_segments: Arc<Gauge>,
    /// Approximate resident bytes of the partitioned global index.
    pub sc_index_bytes: Arc<Gauge>,
    /// Segments created beyond a merge's input count (splits).
    pub sc_splits: Arc<Counter>,
    /// Segments carried over untouched across SC rounds.
    pub sc_segments_kept: Arc<Counter>,
    /// Segments folded (rebuilt) by SC rounds.
    pub sc_segments_merged: Arc<Counter>,
    pub l0_dumps: Arc<Counter>,
    pub l0_dump_entries: Arc<Counter>,

    // Recovery.
    pub recoveries: Arc<Counter>,
    pub recovery_ns: Arc<Histogram>,
}

impl StoreObs {
    /// Register every instrument under the `core.` namespace.
    pub fn new(time_source: TimeSource) -> Self {
        let registry = Registry::new();
        StoreObs {
            time_source,
            puts: registry.counter("core.puts"),
            gets: registry.counter("core.gets"),
            deletes: registry.counter("core.deletes"),
            write_ns: registry.histogram("core.write_ns"),
            get_ns: registry.histogram("core.get_ns"),
            scans: registry.counter("core.scans"),
            scan_ns: registry.histogram("core.scan_ns"),
            scan_items: registry.counter("core.scan.items"),
            scan_fence_skips: registry.counter("core.scan.fence_skips"),
            scan_retries: registry.counter("core.scan.retries"),
            put_phases: PhaseSet::register(&registry, "core.put", time_source),
            get_phases: ReadPhaseSet::register(&registry, "core.get", time_source),
            read_probes: registry.counter("core.read.probes"),
            read_fence_skips: registry.counter("core.read.fence_skips"),
            read_bloom_skips: registry.counter("core.read.bloom_skips"),
            read_lsm_short_circuits: registry.counter("core.read.lsm_short_circuits"),
            read_core_lock_acquisitions: registry.counter("core.read.core_lock_acquisitions"),
            seals: registry.counter("core.seals"),
            steals: registry.counter("core.steals"),
            flushes: registry.counter("core.flushes"),
            flushed_bytes: registry.counter("core.flushed_bytes"),
            flush_ns: registry.histogram("core.flush_ns"),
            flush_queue_depth: registry.gauge("core.flush.queue_depth"),
            liu_syncs: registry.counter("core.liu.syncs"),
            hk_phases: HousekeepPhaseSet::register(&registry, "core.housekeep", time_source),
            hk_queue_depth: registry.gauge("core.housekeeping.queue_depth"),
            hk_stalls: registry.counter("core.housekeeping.stalls"),
            hk_put_stalls: registry.counter("core.housekeeping.put_stalls"),
            hk_put_stall_ns: registry.counter("core.housekeeping.put_stall_ns"),
            hk_sync_dropped: registry.counter("core.housekeeping.sync_dropped"),
            hk_sync_stale: registry.counter("core.housekeeping.sync_stale"),
            hk_inline_merges: registry.counter("core.housekeeping.inline_merges"),
            hk_rounds: registry.counter("core.housekeeping.rounds"),
            sc_merges: registry.counter("core.sc.merges"),
            sc_merge_ns: registry.histogram("core.sc.merge_ns"),
            sc_segment_merge_ns: registry.histogram("core.sc.segment_merge_ns"),
            sc_merge_bytes: registry.counter("core.sc.merge_bytes"),
            sc_segments: registry.gauge("core.sc.segments"),
            sc_index_bytes: registry.gauge("core.sc.index_bytes"),
            sc_splits: registry.counter("core.sc.splits"),
            sc_segments_kept: registry.counter("core.sc.segments_kept"),
            sc_segments_merged: registry.counter("core.sc.segments_merged"),
            l0_dumps: registry.counter("core.l0.dumps"),
            l0_dump_entries: registry.counter("core.l0.dump_entries"),
            recoveries: registry.counter("core.recoveries"),
            recovery_ns: registry.histogram("core.recovery_ns"),
            registry,
        }
    }
}
