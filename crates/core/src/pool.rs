//! The sub-MemTable pool (Section III-A) with elasticity.
//!
//! A fixed cache-pinned region is carved into slots. The slot directory
//! (count + per-slot geometry) is persisted in the pool's first 8 KiB so
//! crash recovery can re-discover every sub-MemTable; slot *states* live in
//! the slots' own packed headers. The directory is double-buffered: a
//! rewrite (split/merge changes the geometry at runtime) fills the
//! inactive copy, then publishes it with a single 8-byte header store, so
//! a crash anywhere in the rewrite leaves a fully consistent copy behind
//! — recovery never sees torn geometry.
//!
//! Elasticity: a `miss counter` tracks acquire failures. Past a threshold
//! the pool halves a free sub-MemTable to raise slot count under bursty
//! writes; when misses stay at zero it re-merges adjacent free buddies to
//! cut background flush overhead.

use crate::subtable::{SlotState, SubTable};
use cachekv_cache::Hierarchy;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Persistent directory header size (8-byte publish word + two copies).
pub const DIR_BYTES: u64 = 8192;
/// Bytes available to each of the two directory copies.
const DIR_COPY_BYTES: u64 = (DIR_BYTES - 8) / 2;
const DIR_MAGIC: u32 = 0xCACE_4B56;
/// Bit of the header's second word that names the active copy.
const DIR_WHICH_BIT: u32 = 1 << 31;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    base: u64,
    size: u64,
}

/// The pool. Shared by writer threads and flush threads.
pub struct Pool {
    hier: Arc<Hierarchy>,
    base: u64,
    size: u64,
    min_subtable: u64,
    slots: Mutex<Vec<Slot>>,
    freed: Condvar,
    /// Which directory copy is currently published (0 or 1). Only read and
    /// advanced under the `slots` lock (every rewrite holds it).
    dir_which: AtomicU64,
    /// Times a core failed to find a free sub-MemTable (Section III-A).
    /// Reset whenever the elasticity threshold trips, so it is a *window*
    /// counter, not a lifetime one.
    pub miss_counter: AtomicU64,
    /// Lifetime acquire misses — never reset, safe for monotonic metrics.
    total_misses: AtomicU64,
    miss_threshold: u64,
    /// Set when the miss counter crossed the threshold; the next release
    /// performs the split (there is nothing free to split at miss time).
    split_pending: AtomicU64,
    /// Acquires since the last miss, for the merge heuristic.
    calm_acquires: AtomicU64,
}

impl Pool {
    /// Create a pool at `[base, base+size)`: CAT-lock it, write the slot
    /// directory, and reset every slot header to `Free`.
    pub fn create(
        hier: Arc<Hierarchy>,
        base: u64,
        size: u64,
        subtable_bytes: u64,
        min_subtable: u64,
        miss_threshold: u64,
    ) -> Self {
        assert!(
            size > DIR_BYTES + subtable_bytes,
            "pool too small for one sub-MemTable"
        );
        hier.cat_lock(base, size);
        Self::warm_locked(&hier, base, size);
        let mut slots = Vec::new();
        let mut cur = base + DIR_BYTES;
        while cur + subtable_bytes <= base + size {
            slots.push(Slot {
                base: cur,
                size: subtable_bytes,
            });
            cur += subtable_bytes;
        }
        let pool = Pool {
            hier,
            base,
            size,
            min_subtable,
            slots: Mutex::new(slots),
            freed: Condvar::new(),
            dir_which: AtomicU64::new(1),
            miss_counter: AtomicU64::new(0),
            total_misses: AtomicU64::new(0),
            miss_threshold,
            split_pending: AtomicU64::new(0),
            calm_acquires: AtomicU64::new(0),
        };
        {
            let slots = pool.slots.lock();
            for s in slots.iter() {
                pool.subtable_of(*s).reset_free();
            }
            // write_directory flips to the inactive copy, so this first
            // write lands in copy 0.
            pool.write_directory(&slots);
        }
        pool
    }

    /// Read the freshly locked region once, pulling every line into the
    /// locked partition. Intel CAT pseudo-locking does the same at setup
    /// (the region is streamed through the locked ways before use); it
    /// also means runtime appends never fill from the device, so their
    /// simulated cost cannot depend on concurrent XPBuffer state.
    fn warm_locked(hier: &Hierarchy, base: u64, size: u64) {
        let mut buf = [0u8; 4096];
        let mut cur = base;
        let end = base + size;
        while cur < end {
            let n = buf.len().min((end - cur) as usize);
            hier.load(cur, &mut buf[..n]);
            cur += n as u64;
        }
    }

    /// Re-attach to an existing pool after a crash: re-establish the CAT
    /// region and read the persisted directory. Slot headers are untouched.
    /// Returns `None` when no valid directory survives (an ADR platform
    /// lost the cache-resident directory) — the caller recreates the pool.
    pub fn try_reattach(
        hier: Arc<Hierarchy>,
        base: u64,
        size: u64,
        min_subtable: u64,
        miss_threshold: u64,
    ) -> Option<Self> {
        let mut hdr = [0u8; 8];
        hier.load(base, &mut hdr);
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        if magic != DIR_MAGIC {
            return None;
        }
        Some(Self::reattach(
            hier,
            base,
            size,
            min_subtable,
            miss_threshold,
        ))
    }

    /// Re-attach, panicking if the persisted directory is invalid.
    pub fn reattach(
        hier: Arc<Hierarchy>,
        base: u64,
        size: u64,
        min_subtable: u64,
        miss_threshold: u64,
    ) -> Self {
        hier.cat_lock(base, size);
        Self::warm_locked(&hier, base, size);
        let mut hdr = [0u8; 8];
        hier.load(base, &mut hdr);
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        assert_eq!(magic, DIR_MAGIC, "pool directory magic mismatch");
        let word = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        let which = u64::from(word & DIR_WHICH_BIT != 0);
        let count = (word & !DIR_WHICH_BIT) as usize;
        let raw = hier.load_vec(Self::copy_base(base, which), count * 16);
        let slots: Vec<Slot> = (0..count)
            .map(|i| Slot {
                base: u64::from_le_bytes(raw[i * 16..i * 16 + 8].try_into().unwrap()),
                size: u64::from_le_bytes(raw[i * 16 + 8..i * 16 + 16].try_into().unwrap()),
            })
            .collect();
        // The publish protocol makes a torn directory unreachable; check
        // the geometry anyway so corruption fails loudly here, not as a
        // wild access through a recovered SubTable.
        for s in &slots {
            assert!(
                s.base >= base + DIR_BYTES
                    && s.size > crate::subtable::DATA_OFF
                    && s.base + s.size <= base + size,
                "recovered slot directory names an invalid slot [{:#x}, +{:#x}) \
                 in pool [{:#x}, +{:#x})",
                s.base,
                s.size,
                base,
                size
            );
        }
        Pool {
            hier,
            base,
            size,
            min_subtable,
            slots: Mutex::new(slots),
            freed: Condvar::new(),
            dir_which: AtomicU64::new(which),
            miss_counter: AtomicU64::new(0),
            total_misses: AtomicU64::new(0),
            miss_threshold,
            split_pending: AtomicU64::new(0),
            calm_acquires: AtomicU64::new(0),
        }
    }

    /// Base address of directory copy `which` (0 or 1).
    fn copy_base(base: u64, which: u64) -> u64 {
        base + 8 + which * DIR_COPY_BYTES
    }

    /// Persist the slot geometry crash-atomically: fill the inactive copy,
    /// then publish it with a single 8-byte header store. A crash before
    /// the publish leaves the previous copy active and intact.
    fn write_directory(&self, slots: &[Slot]) {
        let mut b = Vec::with_capacity(slots.len() * 16);
        for s in slots {
            b.extend_from_slice(&s.base.to_le_bytes());
            b.extend_from_slice(&s.size.to_le_bytes());
        }
        assert!(b.len() as u64 <= DIR_COPY_BYTES, "slot directory overflow");
        let which = self.dir_which.load(Ordering::Relaxed) ^ 1;
        if !b.is_empty() {
            self.hier.store(Self::copy_base(self.base, which), &b);
        }
        let word = slots.len() as u32 | if which == 1 { DIR_WHICH_BIT } else { 0 };
        let mut hdr = [0u8; 8];
        hdr[0..4].copy_from_slice(&DIR_MAGIC.to_le_bytes());
        hdr[4..8].copy_from_slice(&word.to_le_bytes());
        self.hier.store(self.base, &hdr);
        self.dir_which.store(which, Ordering::Relaxed);
    }

    fn subtable_of(&self, s: Slot) -> SubTable {
        SubTable::new(self.hier.clone(), s.base, s.size)
    }

    /// Pool region `(base, size)`.
    pub fn region(&self) -> (u64, u64) {
        (self.base, self.size)
    }

    /// Current slot geometry `(base, size)` pairs (recovery and tests).
    pub fn slot_layout(&self) -> Vec<(u64, u64)> {
        self.slots.lock().iter().map(|s| (s.base, s.size)).collect()
    }

    /// Every slot as a handle (recovery scans all states).
    pub fn all_subtables(&self) -> Vec<SubTable> {
        self.slots
            .lock()
            .iter()
            .map(|s| self.subtable_of(*s))
            .collect()
    }

    /// Try once to acquire a free sub-MemTable.
    pub fn try_acquire(&self) -> Option<SubTable> {
        let slots = self.slots.lock();
        for s in slots.iter() {
            let st = self.subtable_of(*s);
            if st.try_acquire() {
                drop(slots);
                self.calm_acquires.fetch_add(1, Ordering::Relaxed);
                return Some(st);
            }
        }
        None
    }

    /// One bounded wait-and-rescan round: waits briefly for a release and
    /// returns a table if one freed up. Callers loop, interleaving their
    /// own remedies (CacheKV force-seals idle peers between rounds).
    pub fn wait_brief(&self) -> Option<SubTable> {
        let mut slots = self.slots.lock();
        for s in slots.iter() {
            let st = self.subtable_of(*s);
            if st.try_acquire() {
                return Some(st);
            }
        }
        self.freed
            .wait_for(&mut slots, std::time::Duration::from_micros(200));
        for s in slots.iter() {
            let st = self.subtable_of(*s);
            if st.try_acquire() {
                return Some(st);
            }
        }
        None
    }

    /// Record one acquire miss; past the threshold, arm a split for the
    /// next release (nothing is free to split at miss time).
    pub fn note_miss(&self) {
        let misses = self.miss_counter.fetch_add(1, Ordering::Relaxed) + 1;
        self.total_misses.fetch_add(1, Ordering::Relaxed);
        self.calm_acquires.store(0, Ordering::Relaxed);
        if misses >= self.miss_threshold {
            self.miss_counter.store(0, Ordering::Relaxed);
            self.split_pending.store(1, Ordering::Relaxed);
        }
    }

    /// Acquire a free sub-MemTable, blocking until one is available.
    /// Records misses and arms elasticity (Section III-A).
    pub fn acquire(&self) -> SubTable {
        if let Some(st) = self.try_acquire() {
            return st;
        }
        loop {
            self.note_miss();
            {
                let mut slots = self.slots.lock();
                for s in slots.iter() {
                    let st = self.subtable_of(*s);
                    if st.try_acquire() {
                        return st;
                    }
                }
                // Wait for a flush to free a slot (with a timeout to
                // re-check under races).
                self.freed
                    .wait_for(&mut slots, std::time::Duration::from_millis(1));
            }
        }
    }

    /// Return a flushed slot to the pool: reset its header to `Free`, then
    /// apply any pending elasticity action, and wake waiters.
    pub fn release(&self, st: &SubTable) {
        st.reset_free();
        if self.split_pending.swap(0, Ordering::Relaxed) != 0 {
            self.split_one_free();
        } else if self.calm_acquires.load(Ordering::Relaxed)
            >= self.miss_threshold.saturating_mul(8)
        {
            self.merge_free_buddies();
        }
        self.freed.notify_all();
    }

    /// Halve the largest free slot into two free sub-MemTables.
    fn split_one_free(&self) {
        let mut slots = self.slots.lock();
        let candidate = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.size / 2 >= self.min_subtable
                    && self.subtable_of(**s).header().state() == SlotState::Free
            })
            .max_by_key(|(_, s)| s.size)
            .map(|(i, _)| i);
        if let Some(i) = candidate {
            let s = slots[i];
            // Take the slot out of circulation while we re-shape it.
            let st = self.subtable_of(s);
            if !st.try_acquire() {
                return; // lost a race with a writer; skip this round
            }
            let half = s.size / 2;
            slots[i] = Slot {
                base: s.base,
                size: half,
            };
            slots.insert(
                i + 1,
                Slot {
                    base: s.base + half,
                    size: half,
                },
            );
            self.subtable_of(slots[i]).reset_free();
            self.subtable_of(slots[i + 1]).reset_free();
            self.write_directory(&slots);
        }
    }

    /// Merge adjacent equal-size free buddies back together (the reverse
    /// elasticity direction, reducing flush overhead when load is calm).
    fn merge_free_buddies(&self) {
        let mut slots = self.slots.lock();
        let mut i = 0;
        while i + 1 < slots.len() {
            let (a, b) = (slots[i], slots[i + 1]);
            let buddy = a.size == b.size && a.base + a.size == b.base;
            if buddy
                && self.subtable_of(a).header().state() == SlotState::Free
                && self.subtable_of(b).header().state() == SlotState::Free
            {
                let (sa, sb) = (self.subtable_of(a), self.subtable_of(b));
                if sa.try_acquire() {
                    if sb.try_acquire() {
                        slots[i] = Slot {
                            base: a.base,
                            size: a.size * 2,
                        };
                        slots.remove(i + 1);
                        self.subtable_of(slots[i]).reset_free();
                        self.write_directory(&slots);
                        self.calm_acquires.store(0, Ordering::Relaxed);
                        return; // one merge per call is enough
                    }
                    sa.reset_free();
                }
            }
            i += 1;
        }
    }

    /// Number of slots currently free (tests / reporting).
    pub fn free_slots(&self) -> usize {
        self.slots
            .lock()
            .iter()
            .filter(|s| self.subtable_of(**s).header().state() == SlotState::Free)
            .count()
    }

    /// Total slot count.
    pub fn slot_count(&self) -> usize {
        self.slots.lock().len()
    }

    /// Lifetime acquire misses (monotonic, unlike `miss_counter`).
    pub fn total_misses(&self) -> u64 {
        self.total_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        Arc::new(Hierarchy::new(dev, CacheConfig::small()))
    }

    fn pool(h: &Arc<Hierarchy>) -> Pool {
        // 4 KiB directory + 4 slots of 16 KiB.
        Pool::create(
            h.clone(),
            0,
            DIR_BYTES + 4 * (16 << 10),
            16 << 10,
            4 << 10,
            2,
        )
    }

    #[test]
    fn creation_carves_expected_slots() {
        let h = hier();
        let p = pool(&h);
        assert_eq!(p.slot_count(), 4);
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn acquire_release_cycle() {
        let h = hier();
        let p = pool(&h);
        let a = p.acquire();
        let b = p.acquire();
        assert_ne!(a.base, b.base);
        assert_eq!(p.free_slots(), 2);
        a.seal();
        p.release(&a);
        assert_eq!(p.free_slots(), 3);
    }

    #[test]
    fn exhaustion_blocks_until_release() {
        let h = hier();
        let p = Arc::new(pool(&h));
        let held: Vec<SubTable> = (0..4).map(|_| p.acquire()).collect();
        assert_eq!(p.free_slots(), 0);
        let p2 = p.clone();
        let waiter = std::thread::spawn(move || p2.acquire());
        std::thread::sleep(std::time::Duration::from_millis(20));
        held[0].seal();
        p.release(&held[0]);
        let got = waiter.join().unwrap();
        assert_eq!(got.base, held[0].base);
    }

    #[test]
    fn misses_trigger_split_on_release() {
        let h = hier();
        let p = Arc::new(pool(&h));
        let held: Vec<SubTable> = (0..4).map(|_| p.acquire()).collect();
        // Generate misses past the threshold from a blocked acquirer.
        let p2 = p.clone();
        let waiter = std::thread::spawn(move || {
            let a = p2.acquire();
            let b = p2.acquire();
            (a, b)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        held[0].seal();
        p.release(&held[0]);
        held[1].seal();
        p.release(&held[1]);
        let _ = waiter.join().unwrap();
        // A split happened: more than the original 4 slots now exist.
        assert!(
            p.slot_count() > 4,
            "elasticity split: {} slots",
            p.slot_count()
        );
        // Geometry remains a partition of the pool area.
        let layout = p.slot_layout();
        let total: u64 = layout.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 4 * (16 << 10));
    }

    #[test]
    fn reattach_reads_directory_and_preserves_states() {
        let h = hier();
        let (a_base, layout_before);
        {
            let p = pool(&h);
            let a = p.acquire();
            a_base = a.base;
            layout_before = p.slot_layout();
        }
        h.power_fail();
        let p = Pool::reattach(h.clone(), 0, DIR_BYTES + 4 * (16 << 10), 4 << 10, 2);
        assert_eq!(p.slot_layout(), layout_before);
        // The acquired slot is still Allocated after the crash.
        let allocated: Vec<u64> = p
            .all_subtables()
            .iter()
            .filter(|s| s.header().state() == SlotState::Allocated)
            .map(|s| s.base)
            .collect();
        assert_eq!(allocated, vec![a_base]);
    }

    #[test]
    fn split_geometry_survives_crash() {
        let h = hier();
        let layout;
        {
            let p = pool(&h);
            p.split_one_free();
            assert_eq!(p.slot_count(), 5);
            layout = p.slot_layout();
        }
        h.power_fail();
        let p = Pool::reattach(h.clone(), 0, DIR_BYTES + 4 * (16 << 10), 4 << 10, 2);
        assert_eq!(p.slot_layout(), layout);
    }

    #[test]
    fn unpublished_directory_rewrite_is_invisible_after_crash() {
        // A crash mid-rewrite leaves garbage in the inactive copy but the
        // publish word still naming the old one; recovery must read the
        // old, consistent geometry.
        let h = hier();
        let layout_before;
        {
            let p = pool(&h);
            layout_before = p.slot_layout();
            let inactive = p.dir_which.load(Ordering::Relaxed) ^ 1;
            h.store(Pool::copy_base(0, inactive), &[0xAAu8; 64]);
        }
        h.power_fail();
        let p = Pool::reattach(h.clone(), 0, DIR_BYTES + 4 * (16 << 10), 4 << 10, 2);
        assert_eq!(p.slot_layout(), layout_before);
    }

    #[test]
    fn merge_restores_larger_slots_when_calm() {
        let h = hier();
        let p = pool(&h);
        // Force a split first.
        p.split_one_free();
        assert_eq!(p.slot_count(), 5);
        // Simulate calm traffic.
        p.calm_acquires.store(1_000, Ordering::Relaxed);
        let a = p.acquire();
        a.seal();
        p.release(&a);
        assert_eq!(p.slot_count(), 4, "buddies re-merged");
    }
}
