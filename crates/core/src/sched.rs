//! The off-path housekeeping scheduler.
//!
//! Puts never execute compaction or dump work inline: flush threads and
//! readers *enqueue* jobs on a bounded queue drained by a small worker
//! pool (`housekeeping_threads`). The queue being bounded is the
//! backpressure contract — a full queue stalls the (background) submitter
//! and bumps `core.housekeeping.stalls`, it never stalls a put. Reader
//! nudges are strictly best-effort: on a full queue they are dropped and
//! counted (`core.housekeeping.sync_dropped`), which is safe because the
//! flush path syncs every index anyway.

use cachekv_obs::{Counter, Gauge};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One unit of background work.
pub enum Job {
    /// Bring `core`'s sub-skiplist up to date — only if the core still
    /// runs the sealed generation (`epoch`) the nudge was issued for.
    SyncCore { core: usize, epoch: u64 },
    /// One housekeeping round: SC fold + (maybe) the L0 dump.
    Round,
    /// Worker shutdown.
    Stop,
}

/// Bounded job queue + dedupe state shared between submitters and the
/// worker pool.
pub struct Scheduler {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    /// At most one `Round` queued at a time: flush completions arrive in
    /// bursts and one round covers them all.
    round_pending: AtomicBool,
    queue_depth: Arc<Gauge>,
    stalls: Arc<Counter>,
    sync_dropped: Arc<Counter>,
}

impl Scheduler {
    pub fn new(
        cap: usize,
        queue_depth: Arc<Gauge>,
        stalls: Arc<Counter>,
        sync_dropped: Arc<Counter>,
    ) -> Scheduler {
        let (tx, rx) = bounded(cap.max(1));
        Scheduler {
            tx,
            rx,
            round_pending: AtomicBool::new(false),
            queue_depth,
            stalls,
            sync_dropped,
        }
    }

    /// A receiver handle for one worker.
    pub fn receiver(&self) -> Receiver<Job> {
        self.rx.clone()
    }

    /// Queue a housekeeping round, deduped. Called from flush threads and
    /// stalled writers; may block on a full queue (that is backpressure on
    /// the *flush* pipeline, by design — never on a put's hot path).
    pub fn submit_round(&self) {
        if self.round_pending.swap(true, Ordering::AcqRel) {
            return;
        }
        match self.tx.try_send(Job::Round) {
            Ok(()) => self.queue_depth.inc(),
            Err(TrySendError::Full(job)) => {
                self.stalls.inc();
                if self.tx.send(job).is_ok() {
                    self.queue_depth.inc();
                }
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// A worker dequeued a `Round` and is about to run it; clear the latch
    /// *before* the round so a flush landing mid-round queues the next one.
    pub fn take_round(&self) {
        self.round_pending.store(false, Ordering::Release);
    }

    /// Queue a per-core index sync. Never blocks (callers sit on put/get
    /// hot paths); returns false when the nudge was dropped.
    pub fn submit_sync(&self, core: usize, epoch: u64) -> bool {
        match self.tx.try_send(Job::SyncCore { core, epoch }) {
            Ok(()) => {
                self.queue_depth.inc();
                true
            }
            Err(TrySendError::Full(_)) => {
                self.sync_dropped.inc();
                false
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }

    /// A worker dequeued a countable job.
    pub fn note_dequeue(&self) {
        self.queue_depth.dec();
    }

    /// Shut the pool down: one `Stop` per worker (uncounted in the depth
    /// gauge; workers drain the queue ahead of them first).
    pub fn stop(&self, workers: usize) {
        for _ in 0..workers {
            let _ = self.tx.send(Job::Stop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_obs::Registry;

    fn sched(cap: usize) -> (Scheduler, Registry) {
        let reg = Registry::new();
        let s = Scheduler::new(
            cap,
            reg.gauge("q"),
            reg.counter("stalls"),
            reg.counter("dropped"),
        );
        (s, reg)
    }

    #[test]
    fn round_submissions_dedupe() {
        let (s, _reg) = sched(16);
        s.submit_round();
        s.submit_round();
        s.submit_round();
        let rx = s.receiver();
        assert!(matches!(rx.try_recv(), Ok(Job::Round)));
        s.note_dequeue();
        s.take_round();
        assert!(rx.try_recv().is_err(), "duplicate rounds were queued");
        // After take_round a new round can queue again.
        s.submit_round();
        assert!(matches!(rx.try_recv(), Ok(Job::Round)));
    }

    #[test]
    fn sync_nudges_drop_on_full_queue() {
        let (s, reg) = sched(2);
        assert!(s.submit_sync(0, 1));
        assert!(s.submit_sync(1, 1));
        assert!(!s.submit_sync(2, 1), "queue full: nudge must drop");
        assert_eq!(reg.export().counters["dropped"], 1);
        assert_eq!(reg.export().gauges["q"], 2);
    }

    #[test]
    fn stop_delivers_one_per_worker() {
        let (s, _reg) = sched(8);
        s.stop(2);
        let rx = s.receiver();
        assert!(matches!(rx.try_recv(), Ok(Job::Stop)));
        assert!(matches!(rx.try_recv(), Ok(Job::Stop)));
        assert!(rx.try_recv().is_err());
    }
}
