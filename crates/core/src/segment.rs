//! The range-partitioned global index (Section III-D, re-architected).
//!
//! The paper's sub-skiplist compaction (SC) folds flushed sub-skiplists
//! into one global skiplist. A monolithic global index makes every fold
//! cost O(total index size): each round re-streams the whole previous
//! index through the merge. This module partitions the global index into
//! an ordered set of fence-bounded, immutable [`Segment`]s instead, so a
//! round only merges the segments a flushed table's key range overlaps —
//! cost proportional to touched data — and independent segment merges run
//! in parallel on the housekeeping worker pool.
//!
//! Invariants:
//!
//! * Segments are disjoint and ordered: `seg[i].max() < seg[i+1].min()`.
//! * Segments are never empty and are immutable once built; the index swap
//!   replaces `Arc`s, so the lock-free read path keeps probing old
//!   segments it already holds.
//! * Everything here is DRAM-only. Recovery rebuilds the index from the
//!   persistent flushed-table regions, and chunking is deterministic: the
//!   same inputs rebuild the same fences and blooms.

use crate::index::{FilterVerdict, IndexedEntry, ReadFilter, TableEntries};
use cachekv_lsm::kv::internal_cmp;
use cachekv_lsm::{DramSpace, SkipList};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One live global-index record: `(key, meta, table generation, offset)`.
pub type GlobalEntry = (Vec<u8>, u64, u64, u32);

/// One immutable, fence-bounded slice of the global index.
pub struct Segment {
    list: SkipList<DramSpace>,
    entries: usize,
    key_bytes: usize,
    filter: ReadFilter,
}

impl Segment {
    /// Build from deduplicated entries in internal order. Callers never
    /// construct empty segments — the filter build requires keys.
    fn build(entries: Vec<GlobalEntry>) -> Arc<Segment> {
        debug_assert!(!entries.is_empty(), "segments are never empty");
        let arena: usize = entries.iter().map(|(k, ..)| k.len() + 48).sum::<usize>() + 4096;
        let mut list = SkipList::new(DramSpace::new(arena));
        let mut keys: Vec<Vec<u8>> = Vec::with_capacity(entries.len());
        let mut key_bytes = 0usize;
        for (key, meta, gen, off) in entries {
            let mut v = [0u8; 12];
            v[0..8].copy_from_slice(&gen.to_le_bytes());
            v[8..12].copy_from_slice(&off.to_le_bytes());
            list.insert(&key, meta, &v)
                .expect("segment arena sized from inputs");
            key_bytes += key.len();
            keys.push(key);
        }
        let filter = ReadFilter::from_sorted_keys(&keys).expect("non-empty segment");
        Arc::new(Segment {
            list,
            entries: keys.len(),
            key_bytes,
            filter,
        })
    }

    /// Number of live keys in this segment.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Always false — empty segments are never built.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Smallest key (inclusive fence).
    pub fn min(&self) -> &[u8] {
        self.filter.fences().0
    }

    /// Largest key (inclusive fence).
    pub fn max(&self) -> &[u8] {
        self.filter.fences().1
    }

    /// Fence + bloom pruning for reads.
    pub fn filter(&self) -> &ReadFilter {
        &self.filter
    }

    /// Newest `(meta, gen, off)` for `key`.
    pub fn get(&self, key: &[u8]) -> Option<(u64, u64, u32)> {
        self.list.get_latest(key).map(|(meta, v)| {
            let gen = u64::from_le_bytes(v[0..8].try_into().unwrap());
            let off = u32::from_le_bytes(v[8..12].try_into().unwrap());
            (meta, gen, off)
        })
    }

    /// All live entries in internal order (bounds one L0 dump stream step).
    pub fn entries(&self) -> Vec<GlobalEntry> {
        self.list
            .iter()
            .map(|e| {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                (e.key, e.meta, gen, off)
            })
            .collect()
    }

    /// Entries with key `>= start`, in internal order. The caller applies
    /// its end bound; segment fences already bound the tail.
    pub fn entries_from(&self, start: &[u8]) -> Vec<GlobalEntry> {
        self.list
            .iter_from(start)
            .map(|e| {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                (e.key, e.meta, gen, off)
            })
            .collect()
    }

    /// Approximate resident bytes (keys + fixed per-entry value).
    fn approx_bytes(&self) -> u64 {
        (self.key_bytes + self.entries * 12) as u64
    }
}

/// What probing the partitioned index for a key concluded.
pub enum GlobalProbe {
    /// No segments at all.
    Empty,
    /// Key falls outside every segment's fences.
    FenceSkip,
    /// The owning segment's bloom filter rules the key out.
    BloomSkip,
    /// The owning segment was probed and holds no version of the key.
    Miss,
    /// Newest `(meta, gen, off)` for the key.
    Hit(u64, u64, u32),
}

/// The range-partitioned global index: ordered, disjoint segments behind
/// cheap-to-clone `Arc`s. Cloning the index (for a dump snapshot) copies
/// only the `Arc` vector.
#[derive(Clone, Default)]
pub struct PartitionedIndex {
    segments: Vec<Arc<Segment>>,
}

impl PartitionedIndex {
    /// An empty index (fresh store, or just after an L0 dump retired
    /// everything).
    pub fn new() -> PartitionedIndex {
        PartitionedIndex::default()
    }

    /// Total live keys across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Approximate resident bytes across all segments (the denominator of
    /// the "merge bytes ≪ index size" incrementality claim).
    pub fn approx_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.approx_bytes()).sum()
    }

    /// The ordered segment set.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Probe for `key`: binary-search the owning segment by fence, then
    /// fence/bloom gate it before touching its skiplist.
    pub fn probe(&self, key: &[u8]) -> GlobalProbe {
        if self.segments.is_empty() {
            return GlobalProbe::Empty;
        }
        // Last segment whose min <= key; keys below every fence fall out
        // at i == 0.
        let i = self.segments.partition_point(|s| s.min() <= key);
        if i == 0 {
            return GlobalProbe::FenceSkip;
        }
        let seg = &self.segments[i - 1];
        match seg.filter.check(key) {
            FilterVerdict::FenceSkip => GlobalProbe::FenceSkip,
            FilterVerdict::BloomSkip => GlobalProbe::BloomSkip,
            FilterVerdict::Probe => match seg.get(key) {
                Some((meta, gen, off)) => GlobalProbe::Hit(meta, gen, off),
                None => GlobalProbe::Miss,
            },
        }
    }

    /// Newest `(meta, gen, off)` for `key` (tests / tools).
    pub fn get(&self, key: &[u8]) -> Option<(u64, u64, u32)> {
        match self.probe(key) {
            GlobalProbe::Hit(meta, gen, off) => Some((meta, gen, off)),
            _ => None,
        }
    }

    /// All live entries in internal order (tests / tools).
    pub fn entries(&self) -> Vec<GlobalEntry> {
        self.segments.iter().flat_map(|s| s.entries()).collect()
    }

    /// Plan one SC round: route each source's entries (already in internal
    /// order) to the segment region they overlap, mark those regions dirty,
    /// pull undersized neighbours of dirty regions in (so split/merge churn
    /// converges back toward `target` entries per segment), and group
    /// maximal dirty runs into independent [`MergeTask`]s. Clean segments
    /// are *kept* — their `Arc`s move to the next index untouched, which is
    /// what makes round cost proportional to overlapped data.
    ///
    /// `full_fold` marks everything dirty — the monolithic-baseline mode
    /// used for A/B benchmarking.
    pub fn plan(&self, sources: Vec<TableEntries>, target: usize, full_fold: bool) -> MergePlan {
        let n = self.segments.len();
        if n == 0 {
            let sources: Vec<(u64, Vec<IndexedEntry>)> = sources
                .into_iter()
                .filter(|(_, es)| !es.is_empty())
                .collect();
            let tasks = if sources.is_empty() {
                Vec::new()
            } else {
                vec![MergeTask {
                    slot: 0,
                    segments: Vec::new(),
                    sources,
                }]
            };
            return MergePlan {
                tasks,
                kept: Vec::new(),
            };
        }
        // Route: peel each sorted source apart at the segment fences, last
        // region first, moving (never cloning) the entry slices.
        let mut region_sources: Vec<Vec<(u64, Vec<IndexedEntry>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (gen, mut entries) in sources {
            for i in (0..n).rev() {
                if entries.is_empty() {
                    break;
                }
                let slice = if i == 0 {
                    std::mem::take(&mut entries)
                } else {
                    let lower = self.segments[i].min();
                    let cut = entries.partition_point(|(k, ..)| k.as_slice() < lower);
                    entries.split_off(cut)
                };
                if !slice.is_empty() {
                    region_sources[i].push((gen, slice));
                }
            }
        }
        let mut dirty: Vec<bool> = region_sources.iter().map(|s| !s.is_empty()).collect();
        if full_fold {
            dirty.iter_mut().for_each(|d| *d = true);
        }
        // Fold undersized neighbours into adjacent dirty runs so repeated
        // narrow merges can't fragment the index into slivers.
        let target = target.max(1);
        let small = |s: &Arc<Segment>| s.len() < target / 2;
        for i in 1..n {
            if dirty[i - 1] && small(&self.segments[i]) {
                dirty[i] = true;
            }
        }
        for i in (0..n - 1).rev() {
            if dirty[i + 1] && small(&self.segments[i]) {
                dirty[i] = true;
            }
        }
        let mut tasks = Vec::new();
        let mut kept = Vec::new();
        let mut i = 0;
        while i < n {
            if !dirty[i] {
                kept.push((i, self.segments[i].clone()));
                i += 1;
                continue;
            }
            let slot = i;
            let mut segs = Vec::new();
            let mut srcs = Vec::new();
            while i < n && dirty[i] {
                segs.push(self.segments[i].clone());
                srcs.append(&mut region_sources[i]);
                i += 1;
            }
            tasks.push(MergeTask {
                slot,
                segments: segs,
                sources: srcs,
            });
        }
        MergePlan { tasks, kept }
    }

    /// Reassemble an index from a plan's kept segments plus each task's
    /// output, in fence order (tasks and kept slots never interleave out of
    /// order because runs are maximal and disjoint).
    pub fn assemble(
        kept: Vec<(usize, Arc<Segment>)>,
        outputs: Vec<(usize, Vec<Arc<Segment>>)>,
    ) -> PartitionedIndex {
        let mut slots: Vec<(usize, Vec<Arc<Segment>>)> = outputs;
        slots.extend(kept.into_iter().map(|(slot, s)| (slot, vec![s])));
        slots.sort_by_key(|(slot, _)| *slot);
        let segments: Vec<Arc<Segment>> = slots.into_iter().flat_map(|(_, v)| v).collect();
        debug_assert!(
            segments.windows(2).all(|w| w[0].max() < w[1].min()),
            "segments must stay disjoint and ordered"
        );
        PartitionedIndex { segments }
    }
}

/// One SC round's plan: independent merge tasks plus untouched segments.
pub struct MergePlan {
    /// Independent merges, each covering one maximal dirty run.
    pub tasks: Vec<MergeTask>,
    kept: Vec<(usize, Arc<Segment>)>,
}

impl MergePlan {
    /// True when nothing overlaps (no sources routed anywhere).
    pub fn is_noop(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Segments carried over without being touched.
    pub fn kept_count(&self) -> usize {
        self.kept.len()
    }

    /// Split into `(tasks, kept)` for execution + reassembly.
    pub fn into_parts(self) -> (Vec<MergeTask>, Vec<(usize, Arc<Segment>)>) {
        (self.tasks, self.kept)
    }
}

/// One independent per-run merge: the dirty segments of a maximal run plus
/// every source slice routed into it. Tasks share nothing and run in
/// parallel on the housekeeping workers.
pub struct MergeTask {
    /// Original index of the run's first region (orders reassembly).
    pub(crate) slot: usize,
    segments: Vec<Arc<Segment>>,
    sources: Vec<(u64, Vec<IndexedEntry>)>,
}

/// One k-way-merge stream head: orders by [`internal_cmp`] (key ascending,
/// newest version first), tie-broken by stream id for determinism.
struct MergeHead {
    key: Vec<u8>,
    meta: u64,
    gen: u64,
    off: u32,
    src: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        internal_cmp(&self.key, self.meta, &other.key, other.meta).then(self.src.cmp(&other.src))
    }
}

impl MergeTask {
    /// Reassembly slot (tests / scheduling).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// How many existing segments this task folds.
    pub fn segments_in(&self) -> usize {
        self.segments.len()
    }

    /// Bytes of index data this merge reads: folded segments plus routed
    /// source entries. Summed per round into `core.sc.merge_bytes` — the
    /// counter behind the "merge bytes ≪ index size" claim.
    pub fn input_bytes(&self) -> u64 {
        let seg: u64 = self.segments.iter().map(|s| s.approx_bytes()).sum();
        let src: u64 = self
            .sources
            .iter()
            .flat_map(|(_, es)| es.iter())
            .map(|(k, ..)| (k.len() + 12) as u64)
            .sum();
        seg + src
    }

    /// Execute: k-way heap merge of the folded segments and source slices
    /// (every stream already in internal order), dedup to the newest
    /// version per key, then chunk the output into near-equal segments of
    /// at most `target` entries. Chunk boundaries are a pure function of
    /// the merged entry count, so identical inputs rebuild identical
    /// fences — the recovery-determinism contract.
    pub fn run(self, target: usize) -> Vec<Arc<Segment>> {
        let MergeTask {
            segments, sources, ..
        } = self;
        type Stream<'a> = Box<dyn Iterator<Item = GlobalEntry> + 'a>;
        let mut streams: Vec<Stream<'_>> = Vec::with_capacity(segments.len() + sources.len());
        for seg in &segments {
            streams.push(Box::new(seg.list.iter().map(|e| {
                let gen = u64::from_le_bytes(e.value[0..8].try_into().unwrap());
                let off = u32::from_le_bytes(e.value[8..12].try_into().unwrap());
                (e.key, e.meta, gen, off)
            })));
        }
        for (gen, entries) in sources {
            streams.push(Box::new(
                entries.into_iter().map(move |(k, m, off)| (k, m, gen, off)),
            ));
        }
        let mut heap: BinaryHeap<Reverse<MergeHead>> = streams
            .iter_mut()
            .enumerate()
            .filter_map(|(src, s)| {
                s.next().map(|(key, meta, gen, off)| {
                    Reverse(MergeHead {
                        key,
                        meta,
                        gen,
                        off,
                        src,
                    })
                })
            })
            .collect();
        let mut out: Vec<GlobalEntry> = Vec::new();
        while let Some(Reverse(head)) = heap.pop() {
            if let Some((key, meta, gen, off)) = streams[head.src].next() {
                heap.push(Reverse(MergeHead {
                    key,
                    meta,
                    gen,
                    off,
                    src: head.src,
                }));
            }
            // Internal order yields the newest version of a key first; any
            // repeat of the key just emitted is stale.
            if out.last().is_some_and(|(k, ..)| *k == head.key) {
                continue;
            }
            out.push((head.key, head.meta, head.gen, head.off));
        }
        if out.is_empty() {
            return Vec::new();
        }
        let target = target.max(1);
        let chunks = out.len().div_ceil(target);
        let base = out.len() / chunks;
        let extra = out.len() % chunks;
        let mut result = Vec::with_capacity(chunks);
        let mut it = out.into_iter();
        for c in 0..chunks {
            let size = base + usize::from(c < extra);
            let chunk: Vec<GlobalEntry> = it.by_ref().take(size).collect();
            result.push(Segment::build(chunk));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_lsm::kv::{meta_seq, pack_meta, EntryKind};

    /// Fold `sources` into `idx` the way an SC round does: plan, run every
    /// task, reassemble.
    fn fold(idx: &PartitionedIndex, sources: Vec<TableEntries>, target: usize) -> PartitionedIndex {
        let plan = idx.plan(sources, target, false);
        let (tasks, kept) = plan.into_parts();
        let outputs = tasks
            .into_iter()
            .map(|t| {
                let slot = t.slot();
                (slot, t.run(target))
            })
            .collect();
        PartitionedIndex::assemble(kept, outputs)
    }

    fn src(seqs: &[(u32, u64)]) -> Vec<IndexedEntry> {
        let mut v: Vec<IndexedEntry> = seqs
            .iter()
            .map(|&(k, s)| {
                (
                    format!("m{k:03}").into_bytes(),
                    pack_meta(s, EntryKind::Put),
                    k * 16,
                )
            })
            .collect();
        v.sort_by(|a, b| internal_cmp(&a.0, a.1, &b.0, b.1));
        v
    }

    #[test]
    fn compaction_drops_stale_versions() {
        let older: Vec<IndexedEntry> = (0..10)
            .map(|i| {
                (
                    format!("k{i:02}").into_bytes(),
                    pack_meta(i + 1, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let newer: Vec<IndexedEntry> = (0..5)
            .map(|i| {
                (
                    format!("k{i:02}").into_bytes(),
                    pack_meta(i + 100, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let g = fold(&PartitionedIndex::new(), vec![(1, older), (2, newer)], 1024);
        assert_eq!(g.len(), 10, "10 distinct keys survive");
        let (meta, gen, _) = g.get(b"k03").unwrap();
        assert_eq!(meta_seq(meta), 103);
        assert_eq!(gen, 2, "newest version points at the newer table");
        let (_, gen_old, _) = g.get(b"k07").unwrap();
        assert_eq!(gen_old, 1, "unshadowed key still points at gen 1");
    }

    #[test]
    fn incremental_fold_extends_previous_index() {
        let first: Vec<IndexedEntry> = vec![(b"a".to_vec(), pack_meta(1, EntryKind::Put), 0)];
        let g1 = fold(&PartitionedIndex::new(), vec![(1, first)], 1024);
        let second: Vec<IndexedEntry> = vec![
            (b"a".to_vec(), pack_meta(9, EntryKind::Put), 64),
            (b"b".to_vec(), pack_meta(5, EntryKind::Put), 0),
        ];
        let g2 = fold(&g1, vec![(2, second)], 1024);
        assert_eq!(g2.len(), 2);
        assert_eq!(g2.get(b"a").unwrap().1, 2, "newer gen wins");
        assert!(g2.get(b"b").is_some());
    }

    #[test]
    fn segments_build_filters() {
        let entries: Vec<IndexedEntry> = (0..50)
            .map(|i| {
                (
                    format!("g{i:03}").into_bytes(),
                    pack_meta(i + 1, EntryKind::Put),
                    i as u32 * 32,
                )
            })
            .collect();
        let g = fold(&PartitionedIndex::new(), vec![(1, entries)], 1024);
        assert_eq!(g.segments().len(), 1);
        let f = g.segments()[0].filter();
        assert_eq!(f.fences(), (b"g000".as_slice(), b"g049".as_slice()));
        assert!(matches!(g.probe(b"g025"), GlobalProbe::Hit(..)));
        assert!(matches!(g.probe(b"h000"), GlobalProbe::FenceSkip));
        assert!(matches!(g.probe(b"a"), GlobalProbe::FenceSkip));
    }

    #[test]
    fn merge_matches_multiway_inputs() {
        let g1 = fold(
            &PartitionedIndex::new(),
            vec![(1, src(&[(0, 1), (1, 2), (2, 3)]))],
            1024,
        );
        let g2 = fold(
            &g1,
            vec![
                (2, src(&[(1, 10), (3, 11)])),
                (3, src(&[(0, 20), (2, 21), (4, 22)])),
            ],
            1024,
        );
        assert_eq!(g2.len(), 5);
        assert_eq!(meta_seq(g2.get(b"m000").unwrap().0), 20);
        assert_eq!(meta_seq(g2.get(b"m001").unwrap().0), 10);
        assert_eq!(meta_seq(g2.get(b"m002").unwrap().0), 21);
        assert_eq!(g2.get(b"m003").unwrap().1, 2, "gen follows newest version");
        assert_eq!(g2.get(b"m004").unwrap().1, 3);
    }

    #[test]
    fn large_merge_splits_into_target_sized_segments() {
        let entries: Vec<IndexedEntry> = (0..1000u32)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    pack_meta(i as u64 + 1, EntryKind::Put),
                    i * 16,
                )
            })
            .collect();
        let g = fold(&PartitionedIndex::new(), vec![(1, entries)], 128);
        assert_eq!(g.len(), 1000);
        assert_eq!(g.segments().len(), 1000usize.div_ceil(128));
        for s in g.segments() {
            assert!(s.len() <= 128, "segment over target: {}", s.len());
            assert!(s.len() >= 64, "sliver segment: {}", s.len());
        }
        // Disjoint + ordered, every key resolvable through its segment.
        for w in g.segments().windows(2) {
            assert!(w[0].max() < w[1].min());
        }
        for i in (0..1000u32).step_by(37) {
            assert!(g.get(format!("k{i:05}").as_bytes()).is_some(), "k{i}");
        }
    }

    #[test]
    fn narrow_source_touches_only_overlapped_segments() {
        let wide: Vec<IndexedEntry> = (0..1000u32)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    pack_meta(i as u64 + 1, EntryKind::Put),
                    i * 16,
                )
            })
            .collect();
        let g = fold(&PartitionedIndex::new(), vec![(1, wide)], 128);
        let n_segs = g.segments().len();
        assert!(n_segs >= 4);
        // A source confined to one segment's range.
        let hot: Vec<IndexedEntry> = (300..330u32)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    pack_meta(5000 + i as u64, EntryKind::Put),
                    i * 16,
                )
            })
            .collect();
        let plan = g.plan(vec![(2, hot)], 128, false);
        assert_eq!(plan.tasks.len(), 1, "one dirty run");
        assert!(
            plan.kept_count() >= n_segs - 2,
            "kept {} of {n_segs}",
            plan.kept_count()
        );
        let total_in: u64 = plan.tasks.iter().map(|t| t.input_bytes()).sum();
        assert!(
            total_in < g.approx_bytes() / 2,
            "merge bytes {total_in} not ≪ index bytes {}",
            g.approx_bytes()
        );
        let (tasks, kept) = plan.into_parts();
        let outputs = tasks.into_iter().map(|t| (t.slot(), t.run(128))).collect();
        let g2 = PartitionedIndex::assemble(kept, outputs);
        assert_eq!(g2.len(), 1000);
        assert_eq!(meta_seq(g2.get(b"k00310").unwrap().0), 5310);
        assert_eq!(meta_seq(g2.get(b"k00700").unwrap().0), 701);
    }

    #[test]
    fn sources_spanning_boundaries_route_to_each_region() {
        let wide: Vec<IndexedEntry> = (0..400u32)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    pack_meta(i as u64 + 1, EntryKind::Put),
                    i * 16,
                )
            })
            .collect();
        let g = fold(&PartitionedIndex::new(), vec![(1, wide)], 100);
        // A source spanning the whole space dirties everything but still
        // folds correctly.
        let overwrite: Vec<IndexedEntry> = (0..400u32)
            .step_by(3)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    pack_meta(1000 + i as u64, EntryKind::Put),
                    i * 16,
                )
            })
            .collect();
        let g2 = fold(&g, vec![(2, overwrite)], 100);
        assert_eq!(g2.len(), 400);
        assert_eq!(meta_seq(g2.get(b"k00003").unwrap().0), 1003);
        assert_eq!(meta_seq(g2.get(b"k00004").unwrap().0), 5);
    }

    #[test]
    fn full_fold_dirties_every_segment() {
        let wide: Vec<IndexedEntry> = (0..300u32)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    pack_meta(i as u64 + 1, EntryKind::Put),
                    i * 16,
                )
            })
            .collect();
        let g = fold(&PartitionedIndex::new(), vec![(1, wide)], 64);
        let plan = g.plan(vec![(2, src(&[]))], 64, true);
        assert_eq!(plan.kept_count(), 0, "full fold keeps nothing");
        assert_eq!(plan.tasks.len(), 1, "one run spanning everything");
    }

    #[test]
    fn deterministic_rebuild_produces_identical_fences() {
        let build = || {
            let a: Vec<IndexedEntry> = (0..500u32)
                .map(|i| {
                    (
                        format!("k{i:05}").into_bytes(),
                        pack_meta(i as u64 + 1, EntryKind::Put),
                        i * 16,
                    )
                })
                .collect();
            let b: Vec<IndexedEntry> = (100..200u32)
                .map(|i| {
                    (
                        format!("k{i:05}").into_bytes(),
                        pack_meta(900 + i as u64, EntryKind::Put),
                        i * 16,
                    )
                })
                .collect();
            let g = fold(&PartitionedIndex::new(), vec![(1, a)], 77);
            fold(&g, vec![(2, b)], 77)
        };
        let g1 = build();
        let g2 = build();
        let fences = |g: &PartitionedIndex| -> Vec<(Vec<u8>, Vec<u8>, usize)> {
            g.segments()
                .iter()
                .map(|s| (s.min().to_vec(), s.max().to_vec(), s.len()))
                .collect()
        };
        assert_eq!(fences(&g1), fences(&g2));
    }

    #[test]
    fn empty_plan_is_noop() {
        let g = PartitionedIndex::new();
        let plan = g.plan(vec![(1, Vec::new())], 64, false);
        assert!(plan.is_noop());
        let g2 = PartitionedIndex::assemble(plan.into_parts().1, Vec::new());
        assert!(g2.is_empty());
    }
}
