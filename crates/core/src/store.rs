//! The CacheKV store: per-core sub-MemTables in persistent CPU caches,
//! lazy index update, copy-based flush, and sub-skiplist compaction.

use crate::config::CacheKvConfig;
use crate::cursor::{MergedCursor, ScanSource, VersionedEntry};
use crate::flushlog::FlushLog;
use crate::index::{
    read_record, try_read_record, FilterVerdict, FlushedTable, SubIndex, TableEntries,
};
use crate::metrics::StoreObs;
use crate::pool::Pool;
use crate::sched::{Job, Scheduler};
use crate::segment::{GlobalProbe, MergeTask, PartitionedIndex, Segment};
use crate::subtable::{Append, SlotState, SubTable, DATA_OFF};
use cachekv_cache::Hierarchy;
use cachekv_lsm::kv::{
    decode_record_at, internal_cmp, meta_kind, meta_seq, pack_meta, record_len, EntryKind, Error,
    KvStore, Result,
};
use cachekv_lsm::tree::PmemLayout;
use cachekv_lsm::StorageComponent;
use cachekv_obs::{HousekeepPhase, Phase, ReadPhase, StatsSnapshot, TimeSource};
use cachekv_storage::PmemAllocator;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-core write state (the paper's global metadata structure maps cores to
/// sub-MemTables; the mutex is uncontended when one thread runs per core).
struct CoreSlot {
    st: Option<SubTable>,
    index: Arc<SubIndex>,
    writes_since_sync: u64,
    scratch: Vec<u8>,
}

/// What readers see of one core's *active* sub-MemTable: the table plus the
/// sub-skiplist indexing it. Published beside the CoreSlot mutex on every
/// table acquire/seal, so the read path probes it under an uncontended
/// `RwLock` read guard — writers only take the write side at roll-over —
/// and never touches the CoreSlot mutex itself.
struct ActiveView {
    st: SubTable,
    index: Arc<SubIndex>,
}

/// The memory component's shared read view.
struct MemIndexes {
    /// Sealed sub-ImmMemTables still in the cache, awaiting flush.
    sealing: Vec<(SubTable, Arc<SubIndex>)>,
    /// Copy-flushed tables not yet folded into the global index.
    flushed: Vec<FlushedTable>,
    /// The compacted global index: ordered, range-partitioned segments.
    global: PartitionedIndex,
    /// gen → (region base, len) for every live flushed table.
    gen_regions: HashMap<u64, (u64, u64)>,
    /// Total flushed bytes (drives the L0 dump threshold).
    flushed_bytes: u64,
}

enum FlushMsg {
    Seal(SubTable, Arc<SubIndex>),
    Stop,
}

/// Per-core LIU-nudge dedupe state. `epoch` counts sealed generations
/// (bumped on every view publish); `pending` latches one outstanding sync
/// job per core per epoch; `req_tail` is the reader-side table-tail
/// watermark within the epoch.
struct CoreSync {
    epoch: AtomicU64,
    pending: AtomicBool,
    req_tail: AtomicU64,
}

struct Shared {
    hier: Arc<Hierarchy>,
    alloc: Arc<PmemAllocator>,
    cfg: CacheKvConfig,
    pool: Pool,
    mem: RwLock<MemIndexes>,
    storage: StorageComponent,
    flushlog: FlushLog,
    next_gen: AtomicU64,
    pending_flushes: Mutex<usize>,
    flush_idle: Condvar,
    stop: AtomicBool,
    /// The off-path housekeeping scheduler (bounded queue + worker pool).
    sched: Scheduler,
    /// Per-core sync-nudge dedupe (one queued sync per sealed generation).
    core_sync: Vec<CoreSync>,
    /// Lock-free mirror of `MemIndexes::flushed_bytes` for the write-path
    /// backpressure gate (the canonical value stays under `mem`).
    flushed_total: AtomicU64,
    /// Stalled writers wait here for a housekeeping round to finish.
    dump_mutex: Mutex<()>,
    dump_done: Condvar,
    /// Serializes housekeeping (compaction + dump) across callers.
    housekeep_lock: Mutex<()>,
    /// Bumped (under the `mem` write lock) by every memory-component swap
    /// that can *drop* key versions — the SC fold swap and the L0 dump
    /// retirement. Scans sample it before and after snapshot capture: a
    /// change means a version at or below the scan's sequence cut may have
    /// been compacted away mid-capture, so the capture must be retried.
    /// Migrations that merely move data (seal, flush) never bump it.
    drop_epoch: AtomicU64,
    obs: StoreObs,
}

impl Shared {
    /// Request a background LIU sync for `core`, deduped per sealed
    /// generation: at most one queued sync job per core per epoch. Never
    /// blocks; on a full queue the latch is released so a later caller
    /// retries.
    fn nudge_sync(&self, core: usize) {
        let cs = &self.core_sync[core];
        let epoch = cs.epoch.load(Ordering::Acquire);
        if cs
            .pending
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
            && !self.sched.submit_sync(core, epoch)
        {
            cs.pending.store(false, Ordering::Release);
        }
    }

    /// The effective write-stall watermark: the configured bytes, floored
    /// at twice the dump threshold so a stall can always be relieved by a
    /// dump (0 = disabled).
    fn backpressure_limit(&self) -> u64 {
        if self.cfg.hk_backpressure_bytes == 0 {
            0
        } else {
            self.cfg
                .hk_backpressure_bytes
                .max(2 * self.cfg.dump_threshold_bytes)
        }
    }
}

/// CacheKV (Section III). See the crate docs for the architecture.
pub struct CacheKv {
    shared: Arc<Shared>,
    cores: Vec<Mutex<CoreSlot>>,
    /// Per-core published [`ActiveView`]s, read by the lock-free read path.
    /// Written only at table acquire/seal, while holding that core's mutex
    /// (so the view always mirrors `CoreSlot::st`).
    publish: Vec<RwLock<Option<ActiveView>>>,
    /// Bit `i` set ⇒ core `i` (i < 64) has a published view: readers skip
    /// empty cores with one load. Cores ≥ 64 are always probed.
    active_mask: AtomicU64,
    flush_tx: Sender<FlushMsg>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_core: AtomicUsize,
    /// Unique instance id (threads cache their core per store instance).
    store_id: u64,
}

thread_local! {
    /// Cached `(store instance id, core id)`: a thread keeps its core for
    /// one store but re-registers when it touches a different instance.
    static CORE_ID: std::cell::Cell<Option<(u64, usize)>> = const { std::cell::Cell::new(None) };
    /// Whether this thread is inside `get` — the tripwire for the read
    /// path's lock-freedom (see `lock_core`).
    static IN_READ: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Whether this thread is inside a put — the tripwire for the write
    /// path's off-path compaction (see `run_merge_tasks`).
    static IN_PUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Per-thread scratch for the read path's unindexed-suffix decode-scan,
    /// so a lagging index costs a buffer reuse, not an allocation per get.
    static READ_SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

static STORE_IDS: AtomicU64 = AtomicU64::new(1);

impl CacheKv {
    /// Create a fresh store over `hier`.
    pub fn create(hier: Arc<Hierarchy>, cfg: CacheKvConfig) -> Self {
        let layout = PmemLayout::standard(hier.device().capacity());
        let alloc = Arc::new(PmemAllocator::new(layout.arena_base, layout.arena_cap));
        let storage = StorageComponent::create(
            hier.clone(),
            alloc.clone(),
            layout.manifest_base,
            layout.manifest_cap,
            cfg.storage.clone(),
        );
        // CacheKV needs no WAL (sub-MemTables are durable in the caches);
        // the WAL region hosts the flushed-table log instead.
        let flushlog = FlushLog::create(hier.clone(), layout.wal_base, layout.wal_cap);
        let pool_base = alloc.alloc(cfg.pool_bytes).expect("pool region");
        flushlog.log_pool(pool_base, cfg.pool_bytes);
        let pool = Pool::create(
            hier.clone(),
            pool_base,
            cfg.pool_bytes,
            cfg.subtable_bytes,
            cfg.min_subtable_bytes,
            cfg.miss_threshold,
        );
        Self::assemble(
            hier,
            alloc,
            cfg,
            pool,
            storage,
            flushlog,
            MemIndexes {
                sealing: Vec::new(),
                flushed: Vec::new(),
                global: PartitionedIndex::new(),
                gen_regions: HashMap::new(),
                flushed_bytes: 0,
            },
            1,
        )
    }

    /// Recover after a power failure (Section III-E): re-establish the CAT
    /// pool, rebuild sub-skiplists from the persistent sub-MemTables,
    /// re-register flushed tables from the flush log, rebuild the global
    /// skiplist, and replay the LSM manifest.
    pub fn recover(hier: Arc<Hierarchy>, cfg: CacheKvConfig) -> Result<Self> {
        let t0 = std::time::Instant::now();
        let layout = PmemLayout::standard(hier.device().capacity());
        let alloc = Arc::new(PmemAllocator::new(layout.arena_base, layout.arena_cap));
        let storage = StorageComponent::recover(
            hier.clone(),
            alloc.clone(),
            layout.manifest_base,
            layout.manifest_cap,
            cfg.storage.clone(),
        )?;
        let (pool_info, flushed_regions, flushlog) =
            FlushLog::recover(hier.clone(), layout.wal_base, layout.wal_cap);
        let (pool_base, pool_bytes) = pool_info.ok_or_else(|| {
            Error::Corruption("flush log has no pool record: store was never created".into())
        })?;
        alloc.reserve(pool_base, pool_bytes);
        // On eADR the directory and slot headers survived in the caches; on
        // ADR they died with them, so the pool is rebuilt empty (anything
        // not yet copy-flushed is gone — which is why the paper's design
        // requires eADR).
        let pool = Pool::try_reattach(
            hier.clone(),
            pool_base,
            pool_bytes,
            cfg.min_subtable_bytes,
            cfg.miss_threshold,
        )
        .unwrap_or_else(|| {
            Pool::create(
                hier.clone(),
                pool_base,
                pool_bytes,
                cfg.subtable_bytes,
                cfg.min_subtable_bytes,
                cfg.miss_threshold,
            )
        });

        let mut max_seq = storage.versions().last_seq();
        let mut next_gen = 1u64;
        // Rebuild flushed tables: reserve their regions and re-index them by
        // scanning the self-describing record stream.
        let mut mem = MemIndexes {
            sealing: Vec::new(),
            flushed: Vec::new(),
            global: PartitionedIndex::new(),
            gen_regions: HashMap::new(),
            flushed_bytes: 0,
        };
        for (gen, base, len) in flushed_regions {
            alloc.reserve(base, len);
            let index = SubIndex::for_data_capacity(len);
            index.sync_from_region(&hier, base, len);
            for (_, meta, _) in index.entries() {
                max_seq = max_seq.max(cachekv_lsm::kv::meta_seq(meta));
            }
            next_gen = next_gen.max(gen + 1);
            mem.gen_regions.insert(gen, (base, len));
            mem.flushed_bytes += len;
            let filter = index.build_filter();
            mem.flushed.push(FlushedTable {
                gen,
                base,
                len,
                index,
                filter,
            });
        }
        storage.versions().bump_seq_to(max_seq);

        let kv = Self::assemble(hier, alloc, cfg, pool, storage, flushlog, mem, next_gen);

        // Sub-MemTables that were live in the (persistent) caches: rebuild
        // their indexes, then flush them out and return the slots (the
        // paper re-frees all allocated sub-MemTables after recovery).
        let mut crash_max_seq = 0u64;
        for st in kv.shared.pool.all_subtables() {
            let h = st.header();
            if h.state() == SlotState::Free {
                continue;
            }
            if h.state() == SlotState::Allocated {
                st.seal();
            }
            let index = SubIndex::for_data_capacity(st.data_capacity());
            index.sync(&st);
            for (_, meta, _) in index.entries() {
                crash_max_seq = crash_max_seq.max(cachekv_lsm::kv::meta_seq(meta));
            }
            kv.shared
                .mem
                .write()
                .sealing
                .push((st.clone(), index.clone()));
            *kv.shared.pending_flushes.lock() += 1;
            kv.shared.obs.flush_queue_depth.inc();
            kv.flush_tx
                .send(FlushMsg::Seal(st, index))
                .expect("flush thread alive");
        }
        kv.shared.storage.versions().bump_seq_to(crash_max_seq);
        kv.quiesce();
        kv.shared.obs.recoveries.inc();
        kv.shared
            .obs
            .recovery_ns
            .record((t0.elapsed().as_nanos() as u64).max(1));
        Ok(kv)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        hier: Arc<Hierarchy>,
        alloc: Arc<PmemAllocator>,
        cfg: CacheKvConfig,
        pool: Pool,
        storage: StorageComponent,
        flushlog: FlushLog,
        mem: MemIndexes,
        next_gen: u64,
    ) -> Self {
        let obs = StoreObs::new(TimeSource::for_mode(hier.device().clock().mode()));
        let sched = Scheduler::new(
            cfg.housekeeping_queue_cap,
            obs.hk_queue_depth.clone(),
            obs.hk_stalls.clone(),
            obs.hk_sync_dropped.clone(),
        );
        let core_sync = (0..cfg.num_cores)
            .map(|_| CoreSync {
                epoch: AtomicU64::new(0),
                pending: AtomicBool::new(false),
                req_tail: AtomicU64::new(0),
            })
            .collect();
        let flushed_total = AtomicU64::new(mem.flushed_bytes);
        let shared = Arc::new(Shared {
            hier,
            alloc,
            pool,
            mem: RwLock::new(mem),
            storage,
            flushlog,
            next_gen: AtomicU64::new(next_gen),
            pending_flushes: Mutex::new(0),
            flush_idle: Condvar::new(),
            stop: AtomicBool::new(false),
            sched,
            core_sync,
            flushed_total,
            dump_mutex: Mutex::new(()),
            dump_done: Condvar::new(),
            housekeep_lock: Mutex::new(()),
            drop_epoch: AtomicU64::new(0),
            obs,
            cfg,
        });
        let cores = (0..shared.cfg.num_cores)
            .map(|_| {
                Mutex::new(CoreSlot {
                    st: None,
                    index: SubIndex::for_data_capacity(shared.cfg.subtable_bytes),
                    writes_since_sync: 0,
                    scratch: Vec::with_capacity(256),
                })
            })
            .collect();
        let publish = (0..shared.cfg.num_cores)
            .map(|_| RwLock::new(None))
            .collect();
        let (flush_tx, flush_rx) = unbounded::<FlushMsg>();
        let mut threads = Vec::new();
        for i in 0..shared.cfg.flush_threads {
            let s = shared.clone();
            let rx = flush_rx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cachekv-flush-{i}"))
                    .spawn(move || flush_loop(&s, &rx))
                    .expect("spawn flush thread"),
            );
        }
        let kv = CacheKv {
            shared: shared.clone(),
            cores,
            publish,
            active_mask: AtomicU64::new(0),
            flush_tx,
            threads: Mutex::new(threads),
            next_core: AtomicUsize::new(0),
            store_id: STORE_IDS.fetch_add(1, Ordering::Relaxed),
        };
        let core_refs: Arc<Vec<CoreRef>> = Arc::new(
            kv.cores
                .iter()
                .map(|c| CoreRef {
                    ptr: c as *const Mutex<CoreSlot> as usize,
                })
                .collect(),
        );
        let mut threads = kv.threads.lock();
        for i in 0..shared.cfg.housekeeping_threads.max(1) {
            let s = shared.clone();
            let rx = s.sched.receiver();
            let cores = core_refs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cachekv-hk-{i}"))
                    .spawn(move || housekeeping_loop(&s, &rx, &cores))
                    .expect("spawn housekeeping thread"),
            );
        }
        drop(threads);
        kv
    }

    /// The only sanctioned way to lock a CoreSlot. Gets must never come
    /// through here: the read path works off published views, and a reader
    /// acquiring a core lock would re-create the Observation-2 contention
    /// the per-core design removes. The counter is the regression tripwire
    /// (asserted zero in tests and `validate_metrics`).
    fn lock_core(&self, core: usize) -> parking_lot::MutexGuard<'_, CoreSlot> {
        if IN_READ.with(|c| c.get()) {
            self.shared.obs.read_core_lock_acquisitions.inc();
            debug_assert!(false, "read path must not take CoreSlot locks");
        }
        self.cores[core].lock()
    }

    /// Publish `view` as core `core`'s active table (or retract it with
    /// `None`). Must be called with the core's mutex held, so the published
    /// view always mirrors `CoreSlot::st`.
    fn publish_view(&self, core: usize, view: Option<ActiveView>) {
        let present = view.is_some();
        // New sealed generation: roll the sync epoch so queued sync jobs
        // for the previous table are recognized as stale, clear the pending
        // latch, and reset the reader-side sync-request watermark so nudges
        // for the fresh table aren't suppressed by the previous table's
        // (larger) tail.
        let cs = &self.shared.core_sync[core];
        cs.epoch.fetch_add(1, Ordering::Release);
        cs.pending.store(false, Ordering::Release);
        cs.req_tail.store(0, Ordering::Relaxed);
        *self.publish[core].write() = view;
        if core < 64 {
            let bit = 1u64 << core;
            if present {
                self.active_mask.fetch_or(bit, Ordering::SeqCst);
            } else {
                self.active_mask.fetch_and(!bit, Ordering::SeqCst);
            }
        }
    }

    fn core_id(&self) -> usize {
        CORE_ID.with(|c| {
            if let Some((sid, id)) = c.get() {
                if sid == self.store_id {
                    return id;
                }
            }
            let id = self.next_core.fetch_add(1, Ordering::Relaxed) % self.shared.cfg.num_cores;
            c.set(Some((self.store_id, id)));
            id
        })
    }

    /// Seal one *other* core's sub-MemTable and send it to the flushers,
    /// freeing a pool slot. Called when acquisition starves because peer
    /// cores sit idle on partially-filled tables (a case the paper's
    /// always-writing benchmarks never hit, but a real store must handle).
    fn force_seal_one(&self, self_core: usize) -> bool {
        for (i, c) in self.cores.iter().enumerate() {
            if i == self_core {
                continue;
            }
            let Some(mut cs) = c.try_lock() else { continue };
            if let Some(st) = cs.st.take() {
                st.seal();
                let index = cs.index.clone();
                self.shared.obs.steals.inc();
                self.seal_to_flush(i, st, index);
                return true;
            }
        }
        false
    }

    /// Publish a sealed table to readers and enqueue its flush. Ordering is
    /// load-bearing for the lock-free read path: the table enters
    /// `mem.sealing` *before* its active view is retracted (no window where
    /// its records are reachable through neither), and the flush message —
    /// which lets a flusher eventually recycle the slot — is sent only
    /// *after* the retraction, so a reader's post-probe view validation
    /// can always detect recycling.
    fn seal_to_flush(&self, core: usize, st: SubTable, index: Arc<SubIndex>) {
        self.shared
            .mem
            .write()
            .sealing
            .push((st.clone(), index.clone()));
        self.publish_view(core, None);
        *self.shared.pending_flushes.lock() += 1;
        self.shared.obs.seals.inc();
        self.shared.obs.flush_queue_depth.inc();
        self.flush_tx
            .send(FlushMsg::Seal(st, index))
            .expect("flush thread alive");
    }

    /// Get a free sub-MemTable for `core`, force-sealing idle peers if the
    /// pool starves.
    fn acquire_for(&self, core: usize) -> SubTable {
        loop {
            if let Some(st) = self.shared.pool.try_acquire() {
                return st;
            }
            self.shared.pool.note_miss();
            // Give in-flight flushes a moment; then reclaim from idle peers.
            if let Some(st) = self.shared.pool.wait_brief() {
                return st;
            }
            self.force_seal_one(core);
        }
    }

    fn write(&self, key: &[u8], value: &[u8], kind: EntryKind) -> Result<()> {
        let obs = &self.shared.obs;
        match kind {
            EntryKind::Put => obs.puts.inc(),
            EntryKind::Delete => obs.deletes.inc(),
        }
        let op = obs.time_source.begin();
        IN_PUT.with(|c| c.set(true));
        let out = self.write_inner(key, value, kind);
        IN_PUT.with(|c| c.set(false));
        obs.write_ns.record(op.elapsed_ns());
        obs.put_phases.op();
        out
    }

    /// The write-path backpressure gate: when flushed bytes sit above the
    /// watermark, block *before* taking the core lock (never under it — a
    /// housekeeping worker may need that lock for a sync job) until a
    /// housekeeping round drains the backlog. Explicit and observable:
    /// `core.housekeeping.put_stalls` / `.put_stall_ns` count every stall.
    fn backpressure_gate(&self) {
        let s = &self.shared;
        let limit = s.backpressure_limit();
        if limit == 0 || s.flushed_total.load(Ordering::Relaxed) <= limit {
            return;
        }
        s.obs.hk_put_stalls.inc();
        let t0 = std::time::Instant::now();
        let mut guard = s.dump_mutex.lock();
        while s.flushed_total.load(Ordering::Relaxed) > limit
            && !s.stop.load(Ordering::Relaxed)
            && !s.hier.fault_tripped()
        {
            s.sched.submit_round();
            if s.dump_done
                .wait_for(&mut guard, std::time::Duration::from_millis(10))
                .timed_out()
            {
                continue;
            }
        }
        drop(guard);
        s.obs
            .hk_put_stall_ns
            .add((t0.elapsed().as_nanos() as u64).max(1));
    }

    /// The write path, decomposed into the paper's Figure 5 phases: lock
    /// wait, allocation, data copy, index update, persistence handoff.
    fn write_inner(&self, key: &[u8], value: &[u8], kind: EntryKind) -> Result<()> {
        let obs = &self.shared.obs;
        let src = obs.time_source;
        self.backpressure_gate();
        let core = self.core_id();
        let t = src.begin();
        let mut cs = self.lock_core(core);
        obs.put_phases.record(Phase::LockWait, t.elapsed_ns());
        if cs.st.is_none() {
            let t = src.begin();
            let st = self.acquire_for(core);
            obs.put_phases.record(Phase::Alloc, t.elapsed_ns());
            cs.index = SubIndex::for_data_capacity(st.data_capacity());
            self.publish_view(
                core,
                Some(ActiveView {
                    st: st.clone(),
                    index: cs.index.clone(),
                }),
            );
            cs.st = Some(st);
        }
        let seq = self.shared.storage.versions().next_seq();
        let meta = pack_meta(seq, kind);
        loop {
            let st = cs.st.as_ref().expect("core has a sub-MemTable").clone();
            let t = src.begin();
            let appended = st.append(key, meta, value, &mut cs.scratch)?;
            obs.put_phases.record(Phase::DataCopy, t.elapsed_ns());
            match appended {
                Append::Ok(off) => {
                    let t = src.begin();
                    if self.shared.cfg.techniques.lazy_index {
                        cs.writes_since_sync += 1;
                        if cs.writes_since_sync >= self.shared.cfg.sync_every {
                            cs.writes_since_sync = 0;
                            self.shared.nudge_sync(core);
                        }
                    } else {
                        cs.index.insert_direct(
                            key,
                            meta,
                            off,
                            record_len(key.len(), value.len()) as u64,
                        );
                    }
                    obs.put_phases.record(Phase::IndexUpdate, t.elapsed_ns());
                    return Ok(());
                }
                Append::Full => {
                    // Seal, make visible to readers, hand to a flush thread,
                    // grab a fresh sub-MemTable.
                    let t = src.begin();
                    st.seal();
                    cs.st = None;
                    let index = cs.index.clone();
                    self.seal_to_flush(core, st, index);
                    obs.put_phases.record(Phase::Persist, t.elapsed_ns());
                    let t = src.begin();
                    let fresh = self.acquire_for(core);
                    obs.put_phases.record(Phase::Alloc, t.elapsed_ns());
                    cs.index = SubIndex::for_data_capacity(fresh.data_capacity());
                    self.publish_view(
                        core,
                        Some(ActiveView {
                            st: fresh.clone(),
                            index: cs.index.clone(),
                        }),
                    );
                    cs.st = Some(fresh);
                    cs.writes_since_sync = 0;
                }
            }
        }
    }

    /// The LSM storage component (tests / reporting).
    pub fn storage(&self) -> &StorageComponent {
        &self.shared.storage
    }

    /// The sub-MemTable pool (tests / reporting).
    pub fn pool(&self) -> &Pool {
        &self.shared.pool
    }

    /// `(sealing, flushed-pending, global keys, flushed bytes)` snapshot.
    pub fn memory_stats(&self) -> (usize, usize, usize, u64) {
        let m = self.shared.mem.read();
        (
            m.sealing.len(),
            m.flushed.len(),
            m.global.len(),
            m.flushed_bytes,
        )
    }

    /// Fence and size of every live global-index segment, plus each
    /// segment's bloom fingerprint: `(min, max, entries, fingerprint)`.
    /// Test accessor — used to prove recovery rebuilds identical segments.
    pub fn segment_fences(&self) -> Vec<(Vec<u8>, Vec<u8>, usize, u64)> {
        let m = self.shared.mem.read();
        m.global
            .segments()
            .iter()
            .map(|seg| {
                (
                    seg.min().to_vec(),
                    seg.max().to_vec(),
                    seg.len(),
                    seg.filter().bloom_fingerprint(),
                )
            })
            .collect()
    }

    /// Cross-layer metrics snapshot: device and cache counters, the memory
    /// component's registry (plus sampled pool / LIU / flush-log state), and
    /// the LSM storage component's registry.
    pub fn snapshot(&self) -> StatsSnapshot {
        let s = &self.shared;
        let mut memory = s.obs.registry.export();
        // LIU lag: writes per core not yet reflected in its sub-skiplist.
        // Core locks are taken one at a time (same first-lock order as the
        // write path, and never while holding `mem`).
        let mut lag_total = 0u64;
        let mut lag_max = 0u64;
        for c in &self.cores {
            let lag = c.lock().writes_since_sync;
            lag_total += lag;
            lag_max = lag_max.max(lag);
        }
        memory.insert_gauge("core.liu.lag_total", lag_total as i64);
        memory.insert_gauge("core.liu.lag_max", lag_max as i64);
        memory.insert_counter("core.pool.misses", s.pool.total_misses());
        memory.insert_gauge("core.pool.slots", s.pool.slot_count() as i64);
        memory.insert_gauge("core.pool.free_slots", s.pool.free_slots() as i64);
        memory.insert_counter("core.flushlog.appends", s.flushlog.appends());
        memory.insert_counter("core.flushlog.resets", s.flushlog.resets());
        {
            let m = s.mem.read();
            memory.insert_gauge("core.mem.sealing_tables", m.sealing.len() as i64);
            memory.insert_gauge("core.mem.flushed_tables", m.flushed.len() as i64);
            memory.insert_gauge("core.mem.global_keys", m.global.len() as i64);
            memory.insert_gauge("core.mem.global_segments", m.global.segments().len() as i64);
            memory.insert_gauge("core.mem.flushed_bytes", m.flushed_bytes as i64);
        }
        StatsSnapshot {
            system: self.name().to_string(),
            device: s.hier.pmem_stats(),
            cache: s.hier.cache_stats(),
            memory,
            lsm: s.storage.export_metrics(),
        }
    }
}

impl KvStore for CacheKv {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, EntryKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", EntryKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let obs = &self.shared.obs;
        obs.gets.inc();
        let op = obs.time_source.begin();
        IN_READ.with(|c| c.set(true));
        let out = READ_SCRATCH.with(|buf| self.get_inner(key, &mut buf.borrow_mut()));
        IN_READ.with(|c| c.set(false));
        obs.get_ns.record(op.elapsed_ns());
        obs.get_phases.op();
        out
    }

    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let obs = &self.shared.obs;
        obs.scans.inc();
        let op = obs.time_source.begin();
        IN_READ.with(|c| c.set(true));
        let out = self.scan_inner(start, end, limit);
        IN_READ.with(|c| c.set(false));
        obs.scan_ns.record(op.elapsed_ns());
        if let Ok(items) = &out {
            obs.scan_items.add(items.len() as u64);
        }
        out
    }

    fn name(&self) -> &'static str {
        match (
            self.shared.cfg.techniques.lazy_index,
            self.shared.cfg.techniques.compaction,
        ) {
            (false, _) => "PCSM",
            (true, false) => "PCSM+LIU",
            (true, true) => "CacheKV",
        }
    }

    fn quiesce(&self) {
        {
            let mut pending = self.shared.pending_flushes.lock();
            while *pending > 0 {
                self.shared.flush_idle.wait(&mut pending);
            }
        }
        // One synchronous housekeeping round (compaction + possible dump).
        housekeep_round(&self.shared);
        self.shared.storage.wait_idle();
    }

    fn snapshot_json(&self) -> Option<String> {
        Some(self.snapshot().to_json_string())
    }
}

impl CacheKv {
    /// The contention-free read path. Probe order: active sub-MemTables
    /// (published views, no CoreSlot locks), then sealing + flushed tables
    /// and the global skiplist (fence/bloom gated) under the `mem` read
    /// lock, then the LSM — unless an in-memory hit already dominates every
    /// persisted sequence number.
    fn get_inner(&self, key: &[u8], scratch: &mut Vec<u8>) -> Result<Option<Vec<u8>>> {
        let s = &self.shared;
        let obs = &s.obs;
        let src = obs.time_source;
        let mut best: Candidate = None;
        let consider = |meta: u64, value: Option<Vec<u8>>, best: &mut Candidate| {
            if best.as_ref().is_none_or(|(m, _)| meta > *m) {
                *best = Some((meta, value));
            }
        };

        // 1. Active sub-MemTables: snapshot each published view and probe
        // it read-only — the indexed prefix through the sub-skiplist, the
        // unindexed suffix by scanning `[list tail, table tail)`. The scan
        // replaces reader-driven `sync()`: LIU's sync-on-read semantics
        // (a get observes every completed write) without mutating a shared
        // index or taking the CoreSlot mutex.
        // One stopwatch laps across the phase boundaries: a single clock
        // read per boundary instead of a begin/elapsed pair per phase.
        let mut sw = src.begin();
        let mask = self.active_mask.load(Ordering::SeqCst);
        for (core, slot) in self.publish.iter().enumerate() {
            if core < 64 && mask & (1u64 << core) == 0 {
                continue;
            }
            let guard = slot.read();
            let Some(view) = guard.as_ref() else {
                continue;
            };
            obs.read_probes.inc();
            // Holding the publish read guard pins the view: a seal retracts
            // it under the write lock *before* sending the flush message
            // that lets the slot's memory be reused, so the table cannot be
            // recycled mid-probe and any hit is valid as-is. Writers never
            // wait on this guard on the hot path — only the (rare) seal
            // rollover takes the write side.
            let (hit, lag_tail) = probe_table(s, &view.st, &view.index, key, scratch);
            drop(guard);
            if let Some((meta, value)) = hit {
                consider(meta, value, &mut best);
            }
            // Sync-on-read, asynchronously: a lagging index makes every
            // reader re-decode the suffix, so nudge a housekeeping worker
            // to index it — once per observed tail, not once per get.
            if lag_tail > 0 {
                let req = &s.core_sync[core].req_tail;
                let prev = req.load(Ordering::Relaxed);
                if lag_tail > prev
                    && req
                        .compare_exchange(prev, lag_tail, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    s.nudge_sync(core);
                }
            }
        }
        obs.get_phases.record(ReadPhase::ActiveProbe, sw.lap());

        // 2. Sealed/flushed tables and the global skiplist.
        {
            let m = s.mem.read();
            for (st, index) in &m.sealing {
                // Sealed tables are immutable but possibly not fully
                // indexed yet (the flusher does the final sync); the same
                // read-only suffix scan covers the gap — a miss never pays
                // a sync.
                obs.read_probes.inc();
                if let (Some((meta, value)), _) = probe_table(s, st, index, key, scratch) {
                    consider(meta, value, &mut best);
                }
            }
            for ft in &m.flushed {
                match ft
                    .filter
                    .as_ref()
                    .map_or(FilterVerdict::Probe, |f| f.check(key))
                {
                    FilterVerdict::FenceSkip => {
                        obs.read_fence_skips.inc();
                        continue;
                    }
                    FilterVerdict::BloomSkip => {
                        obs.read_bloom_skips.inc();
                        continue;
                    }
                    FilterVerdict::Probe => {}
                }
                obs.read_probes.inc();
                if let Some((meta, off)) = ft.index.get(key) {
                    let value = match meta_kind(meta) {
                        EntryKind::Delete => None,
                        EntryKind::Put => Some(read_record(&s.hier, ft.base, off as u64).value),
                    };
                    consider(meta, value, &mut best);
                }
            }
            obs.get_phases.record(ReadPhase::ImmProbe, sw.lap());
            match m.global.probe(key) {
                GlobalProbe::Empty => {}
                GlobalProbe::FenceSkip => obs.read_fence_skips.inc(),
                GlobalProbe::BloomSkip => obs.read_bloom_skips.inc(),
                GlobalProbe::Miss => obs.read_probes.inc(),
                GlobalProbe::Hit(meta, gen, off) => {
                    obs.read_probes.inc();
                    let value = match meta_kind(meta) {
                        EntryKind::Delete => None,
                        EntryKind::Put => {
                            let (base, _) = m.gen_regions[&gen];
                            Some(read_record(&s.hier, base, off as u64).value)
                        }
                    };
                    consider(meta, value, &mut best);
                }
            }
            obs.get_phases.record(ReadPhase::GlobalProbe, sw.lap());
        }

        // 3. The LSM levels. Per-core sub-MemTables don't globally order a
        // key's versions, so the storage result competes on version too —
        // but when the in-memory hit's sequence exceeds everything the
        // levels hold, the probe cannot change the outcome: skip it.
        let dominated = best
            .as_ref()
            .is_some_and(|(meta, _)| meta_seq(*meta) > s.storage.max_persisted_seq());
        if dominated {
            obs.read_lsm_short_circuits.inc();
        } else if let Some((meta, value)) = s.storage.get_versioned(key) {
            let value = match meta_kind(meta) {
                EntryKind::Delete => None,
                EntryKind::Put => Some(value),
            };
            consider(meta, value, &mut best);
        }
        obs.get_phases.record(ReadPhase::LsmProbe, sw.lap());
        Ok(best.and_then(|(_, v)| v))
    }

    /// The range-scan path: pin a consistent snapshot of every source,
    /// then heap-merge them through a [`MergedCursor`].
    ///
    /// Capture runs in the read path's probe order — active views first
    /// (under their publish guards), then sealing/flushed/global under one
    /// `mem` read guard, then the LSM version — which is the *opposite* of
    /// the direction data migrates (active → sealing → flushed → global →
    /// LSM). A migration racing the capture can therefore only duplicate
    /// an entry across two captured sources, never hide it, and duplicates
    /// are resolved by the merge's newest-first dedup. Memory-component
    /// values are copied out while their pin guard is held (sub-MemTable
    /// slots and flushed regions can be recycled after it drops); sstables
    /// stay lazy because their `Arc` handles pin table space directly.
    /// Like gets, scans never touch a CoreSlot mutex.
    ///
    /// Migration alone is not the only hazard: the SC fold, the L0 dump,
    /// and LSM compactions *drop* every non-newest version of a key. A
    /// capture pinned to a sequence cut needs the newest version *at or
    /// below the cut*, which such a drop can destroy mid-capture (the
    /// surviving newest version is above the cut, so the cursor filters
    /// it and the key goes silently stale or missing). The capture
    /// therefore pins the LSM version and samples the memory component's
    /// drop epoch *before* reading the cut, re-checks both after capture,
    /// and retries on interference — drops that completed before the pin
    /// are benign (their surviving newest version predates the cut), and
    /// drops after it are detected. Persistent interference (tiny tables,
    /// heavy preemption) falls back to capturing under the housekeeping
    /// lock, which excludes SC and dumps entirely.
    fn scan_inner(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let s = &self.shared;
        if limit == 0 || (!end.is_empty() && start >= end) {
            return Ok(Vec::new());
        }
        let mut attempts = 0u32;
        loop {
            let quell = if attempts >= 4 {
                Some(s.housekeep_lock.lock())
            } else {
                None
            };
            if let Some(out) = self.scan_capture(start, end, limit) {
                return Ok(out);
            }
            drop(quell);
            s.obs.scan_retries.inc();
            attempts += 1;
        }
    }

    /// One snapshot-capture attempt: pin, cut, capture every source, then
    /// validate that no version-dropping compaction intervened. `None`
    /// means the capture cannot be trusted and the caller must retry.
    fn scan_capture(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        let s = &self.shared;
        let obs = &s.obs;
        // Pin the LSM version (the `Arc` keeps its tables readable and
        // makes the post-capture pointer comparison ABA-free) and sample
        // the drop epoch, both *before* the cut.
        let version = s.storage.versions().current();
        let epoch = s.drop_epoch.load(Ordering::SeqCst);
        // The consistent cut: every write that completed before this line
        // holds a sequence at or below it; anything newer is filtered out
        // by the cursor, so concurrent writers cannot tear the result.
        let snapshot_seq = s.storage.versions().last_seq();
        let mut scratch = Vec::new();
        let mut sources: Vec<ScanSource> = Vec::new();

        // 1. Active sub-MemTables.
        let mask = self.active_mask.load(Ordering::SeqCst);
        for (core, slot) in self.publish.iter().enumerate() {
            if core < 64 && mask & (1u64 << core) == 0 {
                continue;
            }
            let guard = slot.read();
            let Some(view) = guard.as_ref() else {
                continue;
            };
            let run = scan_table_range(s, &view.st, &view.index, start, end, &mut scratch);
            drop(guard);
            if !run.is_empty() {
                sources.push(ScanSource::Mem(run.into_iter()));
            }
        }

        // 2. Sealing, flushed, and global index under one `mem` guard.
        {
            let m = s.mem.read();
            for (st, index) in &m.sealing {
                let run = scan_table_range(s, st, index, start, end, &mut scratch);
                if !run.is_empty() {
                    sources.push(ScanSource::Mem(run.into_iter()));
                }
            }
            for ft in &m.flushed {
                if let Some(f) = &ft.filter {
                    let (min, max) = f.fences();
                    if max < start || (!end.is_empty() && min >= end) {
                        obs.scan_fence_skips.inc();
                        continue;
                    }
                }
                let mut run: Vec<VersionedEntry> = Vec::new();
                for (key, meta, off) in ft.index.range_entries(start, end) {
                    let value = match meta_kind(meta) {
                        EntryKind::Delete => None,
                        EntryKind::Put => Some(read_record(&s.hier, ft.base, off as u64).value),
                    };
                    run.push((key, meta, value));
                }
                if !run.is_empty() {
                    sources.push(ScanSource::Mem(run.into_iter()));
                }
            }
            for seg in m.global.segments() {
                if seg.max() < start || (!end.is_empty() && seg.min() >= end) {
                    obs.scan_fence_skips.inc();
                    continue;
                }
                let mut run: Vec<VersionedEntry> = Vec::new();
                for (key, meta, gen, off) in seg.entries_from(start) {
                    if !end.is_empty() && key.as_slice() >= end {
                        break;
                    }
                    let value = match meta_kind(meta) {
                        EntryKind::Delete => None,
                        EntryKind::Put => {
                            let (base, _) = m.gen_regions[&gen];
                            Some(read_record(&s.hier, base, off as u64).value)
                        }
                    };
                    run.push((key, meta, value));
                }
                if !run.is_empty() {
                    sources.push(ScanSource::Mem(run.into_iter()));
                }
            }
        }

        // 3. LSM tables, Arc-pinned by the version captured before the cut.
        for level in &version.levels {
            for table in level {
                if table.meta.largest.as_slice() < start
                    || (!end.is_empty() && table.meta.smallest.as_slice() >= end)
                {
                    obs.scan_fence_skips.inc();
                    continue;
                }
                sources.push(ScanSource::Table(table.iter_from_owned(start)));
            }
        }

        // Validate before merging: if a version-dropping swap landed since
        // the pin, some source may have lost the newest-at-or-below-cut
        // version of a key and the whole capture is suspect. The memory
        // runs are already private copies and the pinned sstables are
        // immutable, so a *clean* capture stays trustworthy for however
        // long the merge below takes.
        if s.drop_epoch.load(Ordering::SeqCst) != epoch
            || !Arc::ptr_eq(&version, &s.storage.versions().current())
        {
            return None;
        }
        Some(
            MergedCursor::new(start, end, snapshot_seq, sources)
                .take(limit)
                .collect(),
        )
    }
}

/// Newest version candidate for a key: `(meta, value)`, where a `None`
/// value records a tombstone. Highest meta (sequence) wins.
type Candidate = Option<(u64, Option<Vec<u8>>)>;

/// Read-only probe of one (active or sealing) sub-MemTable: newest version
/// of `key` from the indexed prefix plus a decode-scan of the unindexed
/// suffix `[list tail, table tail)`. Never mutates the index; callers pin
/// the table against recycling (publish read guard or `mem` lock) for the
/// duration. The second return is the table tail when the index was
/// observed lagging (0 when fully synced) so the caller can request a
/// background sync.
fn probe_table(
    s: &Shared,
    st: &SubTable,
    index: &SubIndex,
    key: &[u8],
    scratch: &mut Vec<u8>,
) -> (Candidate, u64) {
    let mut best: Candidate = None;
    // Read the list tail before the table tail: the index may advance
    // concurrently (background LIU sync), which only widens overlap with
    // the indexed prefix — duplicates are fine, newest meta wins.
    let (_, synced_tail) = index.counters();
    let tail = st.header().tail();
    if let Some((meta, off)) = index.get(key) {
        match meta_kind(meta) {
            EntryKind::Delete => best = Some((meta, None)),
            EntryKind::Put => {
                // `try_read_record`, not `read_record`: under a racing
                // recycle the offset may point at garbage.
                if let Some(e) = try_read_record(&s.hier, st.base + DATA_OFF, off as u64) {
                    best = Some((meta, Some(e.value)));
                }
            }
        }
    }
    let mut lag_tail = 0;
    if synced_tail < tail {
        lag_tail = tail;
        // Reuse the caller's scratch buffer: the suffix scan is the hot
        // read path under LIU lag, and a per-get allocation here shows up
        // directly in get latency.
        st.read_data_into(synced_tail, (tail - synced_tail) as usize, scratch);
        let raw: &[u8] = scratch;
        let mut pos = 0usize;
        while let Some((e, next)) = decode_record_at(raw, pos) {
            if e.key == key && best.as_ref().is_none_or(|(m, _)| e.meta > *m) {
                let value = match meta_kind(e.meta) {
                    EntryKind::Delete => None,
                    EntryKind::Put => Some(e.value),
                };
                best = Some((e.meta, value));
            }
            pos = next;
        }
    }
    (best, lag_tail)
}

/// Read-only range capture of one (active or sealing) sub-MemTable: every
/// in-range version from the indexed prefix plus a decode-scan of the
/// unindexed suffix `[list tail, table tail)`, values copied out, sorted
/// into internal order. The caller pins the table (publish read guard or
/// `mem` lock) for the duration — the same discipline as [`probe_table`].
fn scan_table_range(
    s: &Shared,
    st: &SubTable,
    index: &SubIndex,
    start: &[u8],
    end: &[u8],
    scratch: &mut Vec<u8>,
) -> Vec<VersionedEntry> {
    let (_, synced_tail) = index.counters();
    let tail = st.header().tail();
    let mut run: Vec<VersionedEntry> = Vec::new();
    for (key, meta, off) in index.range_entries(start, end) {
        let value = match meta_kind(meta) {
            EntryKind::Delete => None,
            // `try_read_record`, not `read_record`: under a racing recycle
            // the offset may point at garbage (see `probe_table`).
            EntryKind::Put => match try_read_record(&s.hier, st.base + DATA_OFF, off as u64) {
                Some(e) => Some(e.value),
                None => continue,
            },
        };
        run.push((key, meta, value));
    }
    if synced_tail < tail {
        st.read_data_into(synced_tail, (tail - synced_tail) as usize, scratch);
        let raw: &[u8] = scratch;
        let mut pos = 0usize;
        while let Some((e, next)) = decode_record_at(raw, pos) {
            pos = next;
            if e.key.as_slice() < start || (!end.is_empty() && e.key.as_slice() >= end) {
                continue;
            }
            let value = match meta_kind(e.meta) {
                EntryKind::Delete => None,
                EntryKind::Put => Some(e.value),
            };
            run.push((e.key, e.meta, value));
        }
        // The suffix arrives in append order; the merge heap needs each
        // source in internal order.
        run.sort_by(|a, b| internal_cmp(&a.0, a.1, &b.0, b.1));
    }
    run
}

impl Drop for CacheKv {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake any writer parked at the backpressure gate before joining.
        {
            let _g = self.shared.dump_mutex.lock();
            self.shared.dump_done.notify_all();
        }
        for _ in 0..self.shared.cfg.flush_threads {
            let _ = self.flush_tx.send(FlushMsg::Stop);
        }
        self.shared
            .sched
            .stop(self.shared.cfg.housekeeping_threads.max(1));
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// A type-erased pointer to a core slot for the maintenance thread. Safe
/// because `CacheKv` joins the thread before the slots drop.
struct CoreRef {
    ptr: usize,
}

unsafe impl Send for CoreRef {}
unsafe impl Sync for CoreRef {}

impl CoreRef {
    fn with<T>(&self, f: impl FnOnce(&Mutex<CoreSlot>) -> T) -> T {
        // SAFETY: the owning CacheKv outlives its background threads (Drop
        // joins them) and Mutex<CoreSlot> never moves (boxed in a Vec that
        // is never resized after construction).
        f(unsafe { &*(self.ptr as *const Mutex<CoreSlot>) })
    }
}

fn flush_loop(s: &Arc<Shared>, rx: &Receiver<FlushMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            FlushMsg::Stop => return,
            FlushMsg::Seal(st, index) => {
                let t = s.obs.time_source.begin();
                flush_one(s, st, index);
                s.obs.flushes.inc();
                s.obs.flush_ns.record(t.elapsed_ns());
                s.obs.flush_queue_depth.dec();
                let mut pending = s.pending_flushes.lock();
                *pending -= 1;
                if *pending == 0 {
                    s.flush_idle.notify_all();
                }
                s.sched.submit_round();
            }
        }
    }
}

/// Copy-based flush (Section III-C): final index sync, then a single
/// streaming (non-temporal) copy of the data region out of the cache into
/// PMem — no reliance on cacheline replacement, whole XPLines filled.
fn flush_one(s: &Arc<Shared>, st: SubTable, index: Arc<SubIndex>) {
    let _ctx = cachekv_pmem::fault_context("cachekv::copy_flush");
    index.sync(&st); // strategy 3: sync when the table sealed
    let len = st.header().tail();
    if len > 0 {
        let base = s
            .alloc
            .alloc(len)
            .expect("flushed-table arena exhausted (raise dump threshold headroom)");
        let data = s.hier.load_vec(st.base + DATA_OFF, len as usize);
        s.hier.nt_store(base, &data);
        s.hier.sfence();
        s.obs.flushed_bytes.add(len);
        let gen = s.next_gen.fetch_add(1, Ordering::Relaxed);
        // Log and publish under one lock so a concurrent dump's log reset
        // cannot wipe this record before the table is in the survivor set.
        let mut m = s.mem.write();
        s.flushlog.log_flushed(gen, base, len);
        m.gen_regions.insert(gen, (base, len));
        m.flushed_bytes += len;
        s.flushed_total.fetch_add(len, Ordering::Relaxed);
        m.flushed.push(FlushedTable {
            gen,
            base,
            len,
            // The table is fully synced (immutable from here on), so the
            // fence/bloom filter is exact. DRAM-only: recovery rebuilds it
            // from the data region.
            filter: index.build_filter(),
            index: index.clone(),
        });
        if let Some(pos) = m.sealing.iter().position(|(t, _)| t.base == st.base) {
            m.sealing.remove(pos);
        }
    } else {
        let mut m = s.mem.write();
        if let Some(pos) = m.sealing.iter().position(|(t, _)| t.base == st.base) {
            m.sealing.remove(pos);
        }
    }
    s.pool.release(&st);
}

fn housekeeping_loop(s: &Arc<Shared>, rx: &Receiver<Job>, cores: &Arc<Vec<CoreRef>>) {
    // Exit only on `Job::Stop` (or disconnect), never on the `stop` flag:
    // `Scheduler::stop` blocking-sends one Stop per worker, and a worker
    // bailing early would leave a sibling's Stop undrained.
    while let Ok(job) = rx.recv() {
        match job {
            Job::Stop => return,
            Job::SyncCore { core, epoch } => {
                s.sched.note_dequeue();
                sync_core(s, cores, core, epoch);
            }
            Job::Round => {
                s.sched.note_dequeue();
                // Clear the dedup latch *before* the round runs so a
                // submit landing mid-round enqueues a fresh one (no lost
                // wakeups).
                s.sched.take_round();
                housekeep_round(s);
            }
        }
    }
}

/// Lazy index update (strategy 2): bring one core's sub-skiplist up to
/// date in the background. Stale jobs (the table already sealed — the
/// flusher does a final sync regardless) are dropped, and a busy core lock
/// is never contended: the job is abandoned and the nudge latch reopened.
fn sync_core(s: &Arc<Shared>, cores: &Arc<Vec<CoreRef>>, core: usize, epoch: u64) {
    if core >= cores.len() {
        return;
    }
    let latch = &s.core_sync[core];
    if latch.epoch.load(Ordering::Acquire) != epoch {
        s.obs.hk_sync_stale.inc();
        return;
    }
    cores[core].with(|m| {
        if let Some(cs) = m.try_lock() {
            if let Some(st) = &cs.st {
                cs.index.sync(st);
                s.obs.liu_syncs.inc();
            }
        }
    });
    latch.pending.store(false, Ordering::Release);
}

/// One housekeeping round: sub-skiplist compaction into the partitioned
/// global index, then the L0 dump once enough flushed bytes accumulate
/// (Section III-D). Serialized by `housekeep_lock`; heavy work happens
/// under *read* locks so front-end reads and flushes proceed concurrently.
fn housekeep_round(s: &Arc<Shared>) {
    let _serial = s.housekeep_lock.lock();
    // After a simulated power failure the device blackholes writes, so
    // copy-flushed regions may hold garbage; a real powered-off machine
    // does no housekeeping either.
    if s.hier.fault_tripped() {
        return;
    }
    s.obs.hk_rounds.inc();
    s.obs.hk_phases.op();
    if s.cfg.techniques.compaction {
        sc_round(s);
    }
    dump_if_due(s);
    // Writers parked at the backpressure gate re-check after every round.
    let _g = s.dump_mutex.lock();
    s.dump_done.notify_all();
}

/// One SC round: plan against the partitioned index, run each per-run
/// merge (in parallel when several runs are dirty), swap in the
/// reassembled index. Readers keep probing the old segment `Arc`s they
/// already hold throughout — the swap replaces the vector, not the data.
fn sc_round(s: &Arc<Shared>) {
    let src = s.obs.time_source;
    let round = src.begin();
    let mut sw = src.begin();
    let (merged_gens, plan) = {
        let m = s.mem.read();
        if m.flushed.is_empty() {
            return;
        }
        let merged_gens: Vec<u64> = m.flushed.iter().map(|ft| ft.gen).collect();
        let sources: Vec<TableEntries> = m
            .flushed
            .iter()
            .map(|ft| (ft.gen, ft.index.entries()))
            .collect();
        let plan = m
            .global
            .plan(sources, s.cfg.sc_segment_target_entries, s.cfg.sc_full_fold);
        (merged_gens, plan)
    };
    s.obs.hk_phases.record(HousekeepPhase::Plan, sw.lap());
    let (tasks, kept) = plan.into_parts();
    s.obs.sc_segments_kept.add(kept.len() as u64);
    let outputs = run_merge_tasks(s, tasks);
    s.obs.hk_phases.record(HousekeepPhase::Merge, sw.lap());
    let new_global = PartitionedIndex::assemble(kept, outputs);
    {
        let mut m = s.mem.write();
        // The fold kept only each key's newest version: a concurrent scan
        // pinned to an older sequence cut must detect this swap and retry.
        s.drop_epoch.fetch_add(1, Ordering::SeqCst);
        // Tables flushed after the snapshot stay pending for next round.
        m.flushed.retain(|ft| !merged_gens.contains(&ft.gen));
        s.obs.sc_segments.set(new_global.segments().len() as i64);
        s.obs.sc_index_bytes.set(new_global.approx_bytes() as i64);
        m.global = new_global;
    }
    s.obs.hk_phases.record(HousekeepPhase::Swap, sw.lap());
    s.obs.sc_merges.inc();
    s.obs.sc_merge_ns.record(round.elapsed_ns().max(1));
}

/// Execute a plan's merge tasks — the parallel unit of SC. When several
/// runs are dirty the tasks fan out over `housekeeping_threads` scoped
/// workers (tasks share nothing by construction). Never called from a put:
/// the `IN_PUT` tripwire counts (and debug-asserts against) any inline
/// execution.
fn run_merge_tasks(s: &Arc<Shared>, tasks: Vec<MergeTask>) -> Vec<(usize, Vec<Arc<Segment>>)> {
    if IN_PUT.with(|c| c.get()) {
        s.obs.hk_inline_merges.inc();
        debug_assert!(false, "puts must never run compaction merges inline");
    }
    if tasks.is_empty() {
        return Vec::new();
    }
    let target = s.cfg.sc_segment_target_entries;
    let run_one = |t: MergeTask| {
        let sw = s.obs.time_source.begin();
        s.obs.sc_merge_bytes.add(t.input_bytes());
        s.obs.sc_segments_merged.add(t.segments_in() as u64);
        let slot = t.slot();
        let segs_in = t.segments_in();
        let out = t.run(target);
        if out.len() > segs_in {
            s.obs.sc_splits.add((out.len() - segs_in) as u64);
        }
        s.obs.sc_segment_merge_ns.record(sw.elapsed_ns().max(1));
        (slot, out)
    };
    let workers = s.cfg.housekeeping_threads.max(1).min(tasks.len());
    if workers <= 1 {
        return tasks.into_iter().map(run_one).collect();
    }
    let queue = Mutex::new(tasks);
    let outputs = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(t) = queue.lock().pop() else { return };
                let out = run_one(t);
                outputs.lock().push(out);
            });
        }
    });
    outputs.into_inner()
}

/// The L0 dump, once the flushed set outgrows its threshold. Any tables
/// not yet folded (SC disabled, or flushed since the last round) are
/// folded into a private dump snapshot first; the snapshot then streams
/// into the storage component segment-by-segment, so the dump's resident
/// set is one segment's entries, not the whole index.
fn dump_if_due(s: &Arc<Shared>) {
    if s.mem.read().flushed_bytes < s.cfg.dump_threshold_bytes {
        return;
    }
    let mut sw = s.obs.time_source.begin();
    let _ctx = cachekv_pmem::fault_context("cachekv::l0_dump");
    // Build the dump snapshot under a read lock (cheap: `Arc` clones plus
    // any straggler fold); `housekeep_lock` guarantees nobody else
    // replaces `global` concurrently.
    let (snapshot, dumped_gens, gen_regions) = {
        let m = s.mem.read();
        let sources: Vec<TableEntries> = m
            .flushed
            .iter()
            .map(|ft| (ft.gen, ft.index.entries()))
            .collect();
        let dumped: Vec<u64> = m.gen_regions.keys().copied().collect();
        let snapshot = if sources.iter().any(|(_, es)| !es.is_empty()) {
            let plan = m
                .global
                .plan(sources, s.cfg.sc_segment_target_entries, false);
            let (tasks, kept) = plan.into_parts();
            let outputs = run_merge_tasks(s, tasks);
            PartitionedIndex::assemble(kept, outputs)
        } else {
            m.global.clone()
        };
        (snapshot, dumped, m.gen_regions.clone())
    };
    // One table per `target` bytes; floored at the dump threshold so the
    // default shape stays "one table per dump" (the write-amp contract of
    // copy-based flush tests).
    let target = s
        .cfg
        .storage
        .table_target_bytes
        .max(s.cfg.dump_threshold_bytes);
    let mut stream = s.storage.ingest_stream(target);
    let mut pushed = 0u64;
    for seg in snapshot.segments() {
        for (_, _, gen, off) in seg.entries() {
            let (base, _) = gen_regions[&gen];
            let e = match try_read_record(&s.hier, base, off as u64) {
                Some(e) => e,
                // A trip can land between the entry check and here: the
                // region's blackholed copy never reached media. The dump's
                // own writes would be dropped anyway.
                None if s.hier.fault_tripped() => return,
                None => panic!("indexed record must decode"),
            };
            if let Err(err) = stream.push(e) {
                // A trip mid-dump blackholes the new table's bytes, which
                // then fail their read-back; abandon the dump — nothing
                // below would persist either.
                if s.hier.fault_tripped() {
                    return;
                }
                panic!("L0 ingest: {err:?}");
            }
            pushed += 1;
        }
    }
    if let Err(err) = stream.finish() {
        if s.hier.fault_tripped() {
            return;
        }
        panic!("L0 ingest: {err:?}");
    }
    if pushed > 0 {
        s.obs.l0_dumps.inc();
        s.obs.l0_dump_entries.add(pushed);
    }
    let mut m = s.mem.write();
    // The dump's fold kept only each key's newest version and the retired
    // regions below stop being readable: scans mid-capture must retry.
    s.drop_epoch.fetch_add(1, Ordering::SeqCst);
    // Concurrent flushes may have added new gens; only retire what we
    // dumped, and rebuild the flush log to cover the survivors.
    let mut retired = Vec::with_capacity(dumped_gens.len());
    for gen in &dumped_gens {
        if let Some((base, len)) = m.gen_regions.remove(gen) {
            retired.push((base, len));
            m.flushed_bytes -= len;
            s.flushed_total.fetch_sub(len, Ordering::Relaxed);
        }
    }
    m.flushed.retain(|ft| !dumped_gens.contains(&ft.gen));
    m.global = PartitionedIndex::new();
    s.obs.sc_segments.set(0);
    s.obs.sc_index_bytes.set(0);
    let (pool_base, pool_len) = s.pool.region();
    let survivors: Vec<(u64, u64, u64)> = m
        .flushed
        .iter()
        .map(|ft| (ft.gen, ft.base, ft.len))
        .collect();
    s.flushlog.reset_with(pool_base, pool_len, &survivors);
    drop(m);
    // Only return the dumped regions to the allocator once the new log is
    // published: until then the *old* log still references them, and a
    // crash would have recovery reading regions a concurrent flush had
    // already reused.
    for (base, len) in retired {
        s.alloc.free(base, len);
    }
    s.obs.hk_phases.record(HousekeepPhase::Dump, sw.lap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Techniques;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
        ));
        Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
    }

    fn store(t: Techniques) -> CacheKv {
        CacheKv::create(hier(), CacheKvConfig::test_small().with_techniques(t))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        for t in [
            Techniques::pcsm(),
            Techniques::pcsm_liu(),
            Techniques::all(),
        ] {
            let db = store(t);
            db.put(b"alpha", b"1").unwrap();
            db.put(b"beta", b"2").unwrap();
            assert_eq!(
                db.get(b"alpha").unwrap(),
                Some(b"1".to_vec()),
                "{}",
                db.name()
            );
            db.delete(b"alpha").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), None, "{}", db.name());
            assert_eq!(
                db.get(b"beta").unwrap(),
                Some(b"2".to_vec()),
                "{}",
                db.name()
            );
            assert_eq!(db.get(b"gamma").unwrap(), None, "{}", db.name());
        }
    }

    #[test]
    fn overwrites_return_latest() {
        let db = store(Techniques::all());
        for round in 0..5u32 {
            for i in 0..200u32 {
                db.put(
                    format!("k{i:04}").as_bytes(),
                    format!("r{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        assert_eq!(db.get(b"k0042").unwrap(), Some(b"r4".to_vec()));
    }

    #[test]
    fn fills_subtables_flushes_and_dumps_to_l0() {
        let db = store(Techniques::all());
        // 64 KiB sub-MemTables, 192 KiB dump threshold: ~60 B records need
        // thousands of writes to roll tables over and trigger the dump.
        for i in 0..30_000u32 {
            db.put(format!("key{i:08}").as_bytes(), &[7u8; 40]).unwrap();
        }
        db.quiesce();
        let tables: usize = db.storage().level_tables().iter().sum();
        assert!(
            tables > 0,
            "L0 dump happened: {:?}",
            db.storage().level_tables()
        );
        // Every key still readable from wherever it landed.
        for i in (0..30_000u32).step_by(997) {
            assert_eq!(
                db.get(format!("key{i:08}").as_bytes()).unwrap(),
                Some(vec![7u8; 40]),
                "key{i} lost"
            );
        }
        let (sealing, _, _, _) = db.memory_stats();
        assert_eq!(sealing, 0, "no tables stuck in sealing state");
    }

    #[test]
    fn read_your_writes_across_seal_boundary() {
        // Tiny subtables so a single writer rolls over several times.
        let cfg = CacheKvConfig {
            pool_bytes: 64 << 10,
            subtable_bytes: 8 << 10,
            min_subtable_bytes: 4 << 10,
            ..CacheKvConfig::test_small()
        };
        let db = CacheKv::create(hier(), cfg);
        for i in 0..2_000u32 {
            let key = format!("key{i:08}");
            db.put(key.as_bytes(), key.as_bytes()).unwrap();
            if i % 111 == 0 {
                // Read back a key written a while ago (different subtable
                // generation) and the one just written.
                let probe = format!("key{:08}", i / 2);
                assert_eq!(
                    db.get(probe.as_bytes()).unwrap(),
                    Some(probe.clone().into_bytes())
                );
                assert_eq!(
                    db.get(key.as_bytes()).unwrap(),
                    Some(key.clone().into_bytes())
                );
            }
        }
    }

    #[test]
    fn concurrent_writers_scale_across_cores() {
        let db = Arc::new(store(Techniques::all()));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    let k = format!("t{t}k{i:06}");
                    db.put(k.as_bytes(), k.as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        db.quiesce();
        for t in 0..4u32 {
            for i in (0..2_000u32).step_by(397) {
                let k = format!("t{t}k{i:06}");
                assert_eq!(
                    db.get(k.as_bytes()).unwrap(),
                    Some(k.clone().into_bytes()),
                    "{k}"
                );
            }
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let db = Arc::new(store(Techniques::all()));
        for i in 0..500u32 {
            db.put(format!("warm{i:05}").as_bytes(), b"w").unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    db.put(format!("live{i:06}").as_bytes(), b"v").unwrap();
                    i += 1;
                }
            }));
        }
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let k = format!("warm{:05}", i % 500);
                    assert_eq!(db.get(k.as_bytes()).unwrap(), Some(b"w".to_vec()));
                    i += 1;
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn versions_resolve_across_components() {
        // Force cross-component versions: write v1 everywhere, dump to L0,
        // then write v2 and check v2 wins while v1-only keys still resolve.
        let db = store(Techniques::all());
        for i in 0..12_000u32 {
            db.put(format!("key{i:08}").as_bytes(), b"v1").unwrap();
        }
        db.quiesce();
        for i in 0..100u32 {
            db.put(format!("key{i:08}").as_bytes(), b"v2").unwrap();
        }
        assert_eq!(db.get(b"key00000042").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(db.get(b"key00011000").unwrap(), Some(b"v1".to_vec()));
    }

    #[test]
    fn crash_recovery_preserves_all_committed_writes() {
        let h = hier();
        {
            let db = CacheKv::create(h.clone(), CacheKvConfig::test_small());
            for i in 0..8_000u32 {
                db.put(
                    format!("key{i:08}").as_bytes(),
                    format!("val{i}").as_bytes(),
                )
                .unwrap();
            }
            // No quiesce: crash with data spread over active sub-MemTables,
            // sealing tables, flushed tables, and possibly L0.
        }
        h.power_fail();
        let db = CacheKv::recover(h, CacheKvConfig::test_small()).unwrap();
        for i in (0..8_000u32).step_by(271) {
            assert_eq!(
                db.get(format!("key{i:08}").as_bytes()).unwrap(),
                Some(format!("val{i}").into_bytes()),
                "key{i} lost in crash"
            );
        }
        // And the store keeps working.
        db.put(b"post-crash", b"ok").unwrap();
        assert_eq!(db.get(b"post-crash").unwrap(), Some(b"ok".to_vec()));
    }

    #[test]
    fn crash_recovery_preserves_deletes() {
        let h = hier();
        {
            let db = CacheKv::create(h.clone(), CacheKvConfig::test_small());
            for i in 0..1_000u32 {
                db.put(format!("k{i:05}").as_bytes(), b"v").unwrap();
            }
            db.delete(b"k00007").unwrap();
        }
        h.power_fail();
        let db = CacheKv::recover(h, CacheKvConfig::test_small()).unwrap();
        assert_eq!(db.get(b"k00007").unwrap(), None, "tombstone survived");
        assert_eq!(db.get(b"k00008").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn compaction_builds_global_index() {
        let db = store(Techniques::all());
        for i in 0..8_000u32 {
            db.put(format!("key{i:08}").as_bytes(), &[1u8; 40]).unwrap();
        }
        db.quiesce();
        let (_, pending, global_keys, _) = db.memory_stats();
        assert_eq!(
            pending, 0,
            "all flushed tables folded into the global skiplist"
        );
        // Either everything was dumped to L0 (global reset) or the global
        // index holds keys; both are healthy post-quiesce states.
        let l0: usize = db.storage().level_tables().iter().sum();
        assert!(global_keys > 0 || l0 > 0);
    }

    #[test]
    fn pcsm_without_liu_reads_without_sync() {
        let db = store(Techniques::pcsm());
        for i in 0..500u32 {
            db.put(format!("k{i:05}").as_bytes(), b"v").unwrap();
            // Diligent mode: index always current, reads never trigger sync.
            assert_eq!(
                db.get(format!("k{i:05}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
    }

    #[test]
    fn copy_based_flush_streams_whole_xplines() {
        let h = hier();
        let db = CacheKv::create(h.clone(), CacheKvConfig::test_small());
        h.reset_stats();
        for i in 0..20_000u32 {
            db.put(format!("key{i:08}").as_bytes(), &[7u8; 40]).unwrap();
        }
        db.quiesce();
        let s = h.pmem_stats();
        // The dominant device traffic is streaming copies + table builds:
        // sequential, so the XPBuffer combines 3 of every 4 cachelines.
        assert!(
            s.write_hit_ratio() > 0.6,
            "hit ratio {:.2}",
            s.write_hit_ratio()
        );
        assert!(
            s.write_amplification() < 1.5,
            "write amp {:.2}",
            s.write_amplification()
        );
    }
}
