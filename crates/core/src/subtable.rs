//! The sub-MemTable: a slot of the CAT-locked pool (Section III-A).
//!
//! Each slot starts with one cacheline of metadata whose first word packs
//! the paper's three consistency-critical fields —
//!
//! ```text
//!   63                    26 25 24 23                    0
//!  +------------------------+-----+-----------------------+
//!  |  table counter (38 b)  |state|   tail pointer (24 b) |
//!  +------------------------+-----+-----------------------+
//! ```
//!
//! — updated with a single 64-bit compare-and-swap so a crash can never
//! observe a counter/tail mismatch. The second word holds the remaining-
//! space field. KV records are appended to the data region *before* the CAS
//! publishes them; records beyond the published tail are invisible.

use cachekv_cache::Hierarchy;
use cachekv_lsm::kv::{encode_record_into, record_len, Error, Result};
use std::sync::Arc;

/// Sub-MemTable states (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Unassigned, ready for a core.
    Free = 0,
    /// Owned by a core, accepting appends.
    Allocated = 1,
    /// Sealed, awaiting copy-based flush.
    Immutable = 2,
}

impl SlotState {
    fn from_bits(b: u64) -> SlotState {
        match b {
            0 => SlotState::Free,
            1 => SlotState::Allocated,
            _ => SlotState::Immutable,
        }
    }
}

/// The packed first header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedHeader(pub u64);

const TAIL_BITS: u64 = 24;
const STATE_BITS: u64 = 2;
const TAIL_MASK: u64 = (1 << TAIL_BITS) - 1;
const STATE_MASK: u64 = (1 << STATE_BITS) - 1;

impl PackedHeader {
    /// Pack `(counter, state, tail)`.
    pub fn new(counter: u64, state: SlotState, tail: u64) -> Self {
        debug_assert!(counter < (1 << 38), "table counter overflow");
        debug_assert!(tail <= TAIL_MASK, "tail exceeds 24 bits");
        PackedHeader((counter << (STATE_BITS + TAIL_BITS)) | ((state as u64) << TAIL_BITS) | tail)
    }

    /// Records appended so far (doubles as a version tag).
    pub fn counter(self) -> u64 {
        self.0 >> (STATE_BITS + TAIL_BITS)
    }

    /// Slot state.
    pub fn state(self) -> SlotState {
        SlotState::from_bits((self.0 >> TAIL_BITS) & STATE_MASK)
    }

    /// Byte offset in the data region where the next record goes.
    pub fn tail(self) -> u64 {
        self.0 & TAIL_MASK
    }
}

/// Data region starts one cacheline past the slot base.
pub const DATA_OFF: u64 = 64;

/// Outcome of an append attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Append {
    /// Record published at this data-region offset.
    Ok(u64),
    /// Not enough space; seal and rotate.
    Full,
}

/// A DRAM handle onto one pool slot. Cloneable; all state is persistent.
#[derive(Clone)]
pub struct SubTable {
    hier: Arc<Hierarchy>,
    /// Slot base address (header cacheline).
    pub base: u64,
    /// Total slot size including the header line.
    pub size: u64,
}

impl SubTable {
    /// Wrap the slot at `[base, base+size)`.
    pub fn new(hier: Arc<Hierarchy>, base: u64, size: u64) -> Self {
        debug_assert!(size > DATA_OFF);
        SubTable { hier, base, size }
    }

    /// Capacity of the data region.
    pub fn data_capacity(&self) -> u64 {
        self.size - DATA_OFF
    }

    /// Load the packed header word.
    pub fn header(&self) -> PackedHeader {
        PackedHeader(self.hier.load_u64(self.base))
    }

    /// CAS the packed header word; true on success.
    pub fn cas_header(&self, old: PackedHeader, new: PackedHeader) -> bool {
        self.hier.cas_u64(self.base, old.0, new.0) == old.0
    }

    /// The remaining-space field (second header word).
    pub fn remaining_space(&self) -> u64 {
        self.hier.load_u64(self.base + 8)
    }

    /// Reset the header to an empty `Free` slot (after flush / at pool
    /// creation).
    pub fn reset_free(&self) {
        self.hier
            .store_u64(self.base, PackedHeader::new(0, SlotState::Free, 0).0);
        self.hier.store_u64(self.base + 8, self.data_capacity());
    }

    /// Attempt the `Free → Allocated` transition (pool acquire).
    pub fn try_acquire(&self) -> bool {
        let h = self.header();
        if h.state() != SlotState::Free {
            return false;
        }
        self.cas_header(
            h,
            PackedHeader::new(h.counter(), SlotState::Allocated, h.tail()),
        )
    }

    /// `Allocated → Immutable` (owner seals a full table).
    pub fn seal(&self) {
        loop {
            let h = self.header();
            debug_assert_eq!(h.state(), SlotState::Allocated);
            if self.cas_header(
                h,
                PackedHeader::new(h.counter(), SlotState::Immutable, h.tail()),
            ) {
                return;
            }
        }
    }

    /// Append one record. The record bytes are stored first; the header CAS
    /// publishes them (crash-atomic). Only the owning core calls this, so
    /// the CAS can only race with crash recovery, never another writer.
    pub fn append(
        &self,
        key: &[u8],
        meta: u64,
        value: &[u8],
        scratch: &mut Vec<u8>,
    ) -> Result<Append> {
        let need = record_len(key.len(), value.len()) as u64;
        if need > self.data_capacity() {
            return Err(Error::TooLarge {
                what: "record",
                len: need as usize,
                max: self.data_capacity() as usize,
            });
        }
        let h = self.header();
        debug_assert_eq!(
            h.state(),
            SlotState::Allocated,
            "append to unowned sub-MemTable"
        );
        let off = h.tail();
        if off + need > self.data_capacity() {
            return Ok(Append::Full);
        }
        scratch.clear();
        encode_record_into(scratch, key, meta, value);
        self.hier.store(self.base + DATA_OFF + off, scratch);
        let new = PackedHeader::new(h.counter() + 1, SlotState::Allocated, off + need);
        let swapped = self.cas_header(h, new);
        debug_assert!(swapped, "single-writer header CAS cannot fail");
        // Derived remaining-space field (plain store; not consistency-
        // critical, per the paper it is advisory).
        self.hier
            .store_u64(self.base + 8, self.data_capacity() - (off + need));
        Ok(Append::Ok(off))
    }

    /// Read `len` bytes of the data region at `off`.
    pub fn read_data(&self, off: u64, len: usize) -> Vec<u8> {
        self.hier.load_vec(self.base + DATA_OFF + off, len)
    }

    /// Read `len` bytes of the data region at `off` into `buf`, resizing
    /// it (previous contents are overwritten). Lets hot read paths reuse a
    /// scratch buffer instead of allocating per call.
    pub fn read_data_into(&self, off: u64, len: usize, buf: &mut Vec<u8>) {
        buf.resize(len, 0);
        self.hier.load(self.base + DATA_OFF + off, buf);
    }

    /// The hierarchy this slot lives in.
    pub fn hierarchy(&self) -> &Arc<Hierarchy> {
        &self.hier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_lsm::kv::{decode_record_at, pack_meta, EntryKind};
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn slot(size: u64) -> SubTable {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        hier.cat_lock(0, size);
        let st = SubTable::new(hier, 0, size);
        st.reset_free();
        st
    }

    #[test]
    fn header_packs_38_2_24() {
        let h = PackedHeader::new(
            0x3FF_FFFF_FFFF & ((1 << 38) - 1),
            SlotState::Immutable,
            0xFF_FFFF,
        );
        assert_eq!(h.counter(), (1 << 38) - 1);
        assert_eq!(h.state(), SlotState::Immutable);
        assert_eq!(h.tail(), 0xFF_FFFF);
        let z = PackedHeader::new(0, SlotState::Free, 0);
        assert_eq!(z.0, 0);
    }

    #[test]
    fn acquire_append_publishes_atomically() {
        let st = slot(4096);
        assert!(st.try_acquire());
        assert!(!st.try_acquire(), "second acquire fails");
        let mut scratch = Vec::new();
        let r = st
            .append(
                b"key1",
                pack_meta(1, EntryKind::Put),
                b"value1",
                &mut scratch,
            )
            .unwrap();
        assert_eq!(r, Append::Ok(0));
        let h = st.header();
        assert_eq!(h.counter(), 1);
        assert_eq!(h.tail(), record_len(4, 6) as u64);
        assert_eq!(st.remaining_space(), st.data_capacity() - h.tail());
        let raw = st.read_data(0, h.tail() as usize);
        let (e, _) = decode_record_at(&raw, 0).unwrap();
        assert_eq!(e.key, b"key1");
        assert_eq!(e.value, b"value1");
    }

    #[test]
    fn fills_then_reports_full() {
        let st = slot(1024); // 960 B data region
        st.try_acquire();
        let mut scratch = Vec::new();
        let mut appended = 0;
        while let Append::Ok(_) = st
            .append(
                b"key00001",
                pack_meta(appended, EntryKind::Put),
                &[7u8; 50],
                &mut scratch,
            )
            .unwrap()
        {
            appended += 1;
        }
        assert_eq!(appended, 960 / record_len(8, 50) as u64);
        assert_eq!(st.header().counter(), appended);
    }

    #[test]
    fn oversized_record_is_an_error() {
        let st = slot(1024);
        st.try_acquire();
        let mut scratch = Vec::new();
        let huge = vec![0u8; 2000];
        assert!(matches!(
            st.append(b"k", pack_meta(1, EntryKind::Put), &huge, &mut scratch),
            Err(Error::TooLarge { .. })
        ));
    }

    #[test]
    fn seal_then_reset_cycle() {
        let st = slot(4096);
        st.try_acquire();
        let mut scratch = Vec::new();
        st.append(b"k", pack_meta(1, EntryKind::Put), b"v", &mut scratch)
            .unwrap();
        st.seal();
        assert_eq!(st.header().state(), SlotState::Immutable);
        st.reset_free();
        assert_eq!(st.header().state(), SlotState::Free);
        assert_eq!(st.header().counter(), 0);
        assert!(st.try_acquire());
    }

    #[test]
    fn header_survives_eadr_crash() {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        hier.cat_lock(0, 4096);
        let st = SubTable::new(hier.clone(), 0, 4096);
        st.reset_free();
        st.try_acquire();
        let mut scratch = Vec::new();
        st.append(
            b"persist",
            pack_meta(9, EntryKind::Put),
            b"me",
            &mut scratch,
        )
        .unwrap();
        let before = st.header();
        hier.power_fail();
        hier.cat_lock(0, 4096);
        let st2 = SubTable::new(hier, 0, 4096);
        assert_eq!(st2.header(), before, "packed header survived the crash");
        let raw = st2.read_data(0, before.tail() as usize);
        let (e, _) = decode_record_at(&raw, 0).unwrap();
        assert_eq!(e.key, b"persist");
    }
}
