//! Property tests for `FlushLog`: arbitrary (pool, flush, reset) sequences
//! must round-trip through recovery, and a crash at *any* persistence event
//! inside the sequence must recover either the state before or after the
//! step the crash interrupted — in particular a crash inside `reset_with`
//! (between preparing the inactive half and publishing the selector) must
//! never lose the previous log.

use cachekv::flushlog::FlushLog;
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_pmem::{FaultPlan, LatencyConfig, PersistDomain, PmemConfig, PmemDevice};
use proptest::prelude::*;
use std::sync::Arc;

const LOG_BASE: u64 = 0;
const LOG_CAP: u64 = 64 << 10;

#[derive(Debug, Clone)]
enum LogOp {
    /// Append a flushed-table record (region derived from the generation).
    Flush,
    /// Compact, keeping the subset of current records selected by the mask.
    Reset(u8),
}

type LogModel = (Option<(u64, u64)>, Vec<(u64, u64, u64)>);

fn region(gen: u64) -> (u64, u64, u64) {
    (gen, 0x10_0000 + gen * 0x1000, 128 + (gen % 7) * 64)
}

const POOL: (u64, u64) = (1 << 16, 32 << 10);

fn make_hier(domain: PersistDomain) -> (Arc<PmemDevice>, Arc<Hierarchy>) {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::small()
            .with_domain(domain)
            .with_latency(LatencyConfig::zero()),
    ));
    let hier = Arc::new(Hierarchy::new(dev.clone(), CacheConfig::small()));
    (dev, hier)
}

/// Run create + log_pool + `ops`, calling `after_step` after each step.
/// Returns the model state after every step (index 0 = after create).
fn run_script(hier: &Arc<Hierarchy>, ops: &[LogOp], mut after_step: impl FnMut()) -> Vec<LogModel> {
    let mut states: Vec<LogModel> = Vec::new();
    let mut flushed: Vec<(u64, u64, u64)> = Vec::new();
    let mut gen = 0u64;

    let log = FlushLog::create(hier.clone(), LOG_BASE, LOG_CAP);
    states.push((None, Vec::new()));
    after_step();
    log.log_pool(POOL.0, POOL.1);
    states.push((Some(POOL), Vec::new()));
    after_step();
    for op in ops {
        match op {
            LogOp::Flush => {
                gen += 1;
                let (g, b, l) = region(gen);
                log.log_flushed(g, b, l);
                flushed.push((g, b, l));
            }
            LogOp::Reset(mask) => {
                flushed.retain(|(g, _, _)| (mask >> (g % 8)) & 1 == 1);
                log.reset_with(POOL.0, POOL.1, &flushed);
            }
        }
        states.push((Some(POOL), flushed.clone()));
        after_step();
    }
    states
}

fn ops_strategy() -> impl Strategy<Value = Vec<LogOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(LogOp::Flush),
            1 => any::<u8>().prop_map(LogOp::Reset),
        ],
        1..14,
    )
}

proptest! {
    // Clean-shutdown round-trip: whatever sequence ran, recovery returns
    // exactly the final model state.
    #[test]
    fn recovery_roundtrips_arbitrary_sequences(ops in ops_strategy()) {
        let (_dev, hier) = make_hier(PersistDomain::Adr);
        let states = run_script(&hier, &ops, || ());
        hier.power_fail();
        let (pool, flushed, _log) = FlushLog::recover(hier, LOG_BASE, LOG_CAP);
        let want = states.last().unwrap();
        prop_assert_eq!(&(pool, flushed), want);
    }

    // Crash anywhere: recovery lands on the model state just before or
    // just after the interrupted step — never anything else, and in
    // particular never an empty log once the pool record is down.
    #[test]
    fn crash_at_any_event_recovers_a_neighbouring_state(
        ops in ops_strategy(),
        frac in 0u16..1000,
    ) {
        // Baseline: count events per step boundary (single-threaded, so
        // counts are exact and reproducible).
        let (dev, hier) = make_hier(PersistDomain::Adr);
        dev.install_fault_plan(FaultPlan::count_only());
        let mut boundaries: Vec<u64> = Vec::new();
        let states = {
            let d = dev.clone();
            run_script(&hier, &ops, || boundaries.push(d.fault_events()))
        };
        let total = *boundaries.last().unwrap();
        drop((dev, hier));

        let k = 1 + (frac as u64 * (total - 1)) / 999;
        let (dev, hier) = make_hier(PersistDomain::Adr);
        dev.install_fault_plan(FaultPlan::at(k));
        run_script(&hier, &ops, || ());
        let rep = dev.take_trip_report().expect("plan must fire within the script");
        let dev2 = Arc::new(PmemDevice::from_media(dev.config().clone(), rep.media));
        let hier2 = Arc::new(Hierarchy::new(dev2, CacheConfig::small()));
        let (pool, flushed, _log) = FlushLog::recover(hier2, LOG_BASE, LOG_CAP);
        let got: LogModel = (pool, flushed);

        let done = boundaries.iter().filter(|&&b| b <= k).count();
        let lo = done.saturating_sub(1);
        let hi = done.min(states.len() - 1);
        prop_assert!(
            got == states[lo] || got == states[hi],
            "crash at event {}/{} (ctx {:?}): recovered {:?}, expected {:?} or {:?}",
            k, total, rep.context, got, states[lo], states[hi]
        );
    }
}
