//! Recovery scenarios beyond the basics: elastic (split) pool layouts,
//! crashes around L0 dumps and flush-log resets, and repeated
//! crash/recover cycles with interleaved writes.

use cachekv::{CacheKv, CacheKvConfig, Techniques};
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::KvStore;
use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
use std::sync::Arc;

fn hier() -> Arc<Hierarchy> {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
    ));
    Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
}

fn tiny_cfg() -> CacheKvConfig {
    CacheKvConfig {
        pool_bytes: 64 << 10,
        subtable_bytes: 16 << 10,
        min_subtable_bytes: 4 << 10,
        dump_threshold_bytes: 48 << 10,
        num_cores: 4,
        miss_threshold: 1,
        ..CacheKvConfig::test_small()
    }
}

#[test]
fn recovery_with_elastically_split_pool_directory() {
    let h = hier();
    let layout_before;
    {
        let db = Arc::new(CacheKv::create(h.clone(), tiny_cfg()));
        // Over-subscribe the pool from many threads to force elasticity
        // splits (miss_threshold = 1).
        let mut handles = Vec::new();
        for t in 0..6u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    db.put(format!("t{t}-{i:06}").as_bytes(), &[7u8; 48])
                        .unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        db.quiesce();
        // Capture after quiesce: releases during the drain may still split.
        layout_before = db.pool().slot_layout();
    }
    h.power_fail();
    let db = CacheKv::recover(h, tiny_cfg()).unwrap();
    // The persisted directory round-trips the (possibly irregular) layout.
    assert_eq!(
        db.pool().slot_layout(),
        layout_before,
        "split slot geometry survived"
    );
    for t in 0..6u32 {
        for i in (0..2_000u32).step_by(333) {
            assert_eq!(
                db.get(format!("t{t}-{i:06}").as_bytes()).unwrap(),
                Some(vec![7u8; 48]),
                "t{t}-{i} lost across crash with split pool"
            );
        }
    }
}

#[test]
fn crash_immediately_after_dump_threshold_crossed() {
    // Write just past the dump threshold so the crash lands near the
    // dump/flush-log-reset window, then verify nothing is lost or doubled.
    let h = hier();
    let n = 4_000u32; // ~ 48 B records * 4000 ≈ 260 KiB >> 48 KiB threshold
    {
        let db = CacheKv::create(h.clone(), tiny_cfg());
        for i in 0..n {
            db.put(
                format!("key{i:07}").as_bytes(),
                format!("val{i}").as_bytes(),
            )
            .unwrap();
        }
        db.quiesce(); // forces compaction + dump
    }
    h.power_fail();
    let db = CacheKv::recover(h, tiny_cfg()).unwrap();
    for i in (0..n).step_by(173) {
        assert_eq!(
            db.get(format!("key{i:07}").as_bytes()).unwrap(),
            Some(format!("val{i}").into_bytes())
        );
    }
    // Data really reached the LSM (the dump happened before the crash).
    assert!(db.storage().level_tables().iter().sum::<usize>() > 0);
}

#[test]
fn five_crash_cycles_with_overwrites() {
    let h = hier();
    for generation in 0..5u32 {
        let db = if generation == 0 {
            CacheKv::create(h.clone(), tiny_cfg())
        } else {
            CacheKv::recover(h.clone(), tiny_cfg()).unwrap()
        };
        for i in 0..600u32 {
            db.put(
                format!("k{i:05}").as_bytes(),
                format!("gen{generation}").as_bytes(),
            )
            .unwrap();
        }
        // Check a previous generation's overwrites are visible pre-crash.
        assert_eq!(
            db.get(b"k00300").unwrap(),
            Some(format!("gen{generation}").into_bytes())
        );
        drop(db);
        h.power_fail();
    }
    let db = CacheKv::recover(h, tiny_cfg()).unwrap();
    for i in (0..600u32).step_by(97) {
        assert_eq!(
            db.get(format!("k{i:05}").as_bytes()).unwrap(),
            Some(b"gen4".to_vec()),
            "k{i}: newest generation must win after 5 crash cycles"
        );
    }
}

#[test]
fn pcsm_variant_recovers_too() {
    // The ablation configurations must share the recovery path.
    let cfg = CacheKvConfig {
        techniques: Techniques::pcsm(),
        ..tiny_cfg()
    };
    let h = hier();
    {
        let db = CacheKv::create(h.clone(), cfg.clone());
        for i in 0..1_500u32 {
            db.put(format!("k{i:05}").as_bytes(), b"pcsm").unwrap();
        }
    }
    h.power_fail();
    let db = CacheKv::recover(h, cfg).unwrap();
    assert_eq!(db.get(b"k01499").unwrap(), Some(b"pcsm".to_vec()));
    assert_eq!(db.get(b"k00000").unwrap(), Some(b"pcsm".to_vec()));
}

#[test]
fn snapshot_reports_recovery_metrics() {
    // After a crash + recovery, the observability layer must tell the
    // story: the device counted the power failure, the store recorded a
    // (nonzero) recovery duration, and no lazy-index debt or queued
    // flushes survive into the recovered instance.
    let h = hier();
    {
        let db = CacheKv::create(h.clone(), tiny_cfg());
        for i in 0..2_000u32 {
            db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
    }
    h.power_fail();
    let db = CacheKv::recover(h, tiny_cfg()).unwrap();
    let snap = db.snapshot();

    assert!(snap.device.power_failures >= 1, "crash not counted");
    assert_eq!(snap.memory.counters["core.recoveries"], 1);
    let rec = &snap.memory.histograms["core.recovery_ns"];
    assert_eq!(rec.count, 1, "exactly one recovery duration sample");
    assert!(rec.sum > 0, "recovery duration must be nonzero");
    // Recovery re-syncs every sub-skiplist and drains every flush: no
    // lazy-index lag and an empty flush queue in the recovered snapshot.
    assert_eq!(snap.memory.gauges["core.liu.lag_total"], 0);
    assert_eq!(snap.memory.gauges["core.liu.lag_max"], 0);
    assert_eq!(snap.memory.gauges["core.flush.queue_depth"], 0);
    // And the recovered store still serves the data.
    assert_eq!(db.get(b"k00099").unwrap(), Some(b"v99".to_vec()));
}

#[test]
fn recovery_is_idempotent_without_new_writes() {
    // Crash, recover, crash again *without writing*: second recovery must
    // see the identical state (the re-flush of live sub-MemTables during
    // recovery must not duplicate or drop versions).
    let h = hier();
    {
        let db = CacheKv::create(h.clone(), tiny_cfg());
        for i in 0..2_500u32 {
            db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..50u32 {
            db.delete(format!("k{i:05}").as_bytes()).unwrap();
        }
    }
    for _ in 0..2 {
        h.power_fail();
        let db = CacheKv::recover(h.clone(), tiny_cfg()).unwrap();
        for i in (0..50u32).step_by(7) {
            assert_eq!(db.get(format!("k{i:05}").as_bytes()).unwrap(), None);
        }
        for i in (50..2_500u32).step_by(211) {
            assert_eq!(
                db.get(format!("k{i:05}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }
}
