//! LevelDB-style bloom filter (double hashing over a 64-bit base hash).

/// A serializable bloom filter built over a fixed key set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    k: u32,
}

/// FNV-1a 64-bit, the base hash both probes derive from.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

impl Bloom {
    /// Build a filter for `keys` at `bits_per_key` (10 in LevelDB ≈ 1% FPR).
    pub fn build<'a>(keys: impl ExactSizeIterator<Item = &'a [u8]>, bits_per_key: usize) -> Self {
        let n = keys.len().max(1);
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        // k = bits_per_key * ln2, clamped like LevelDB.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let mut h = fnv1a(key);
            let delta = h.rotate_right(17) | 1;
            for _ in 0..k {
                let bit = (h % nbits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        Bloom { bits, k }
    }

    /// Whether `key` may be present (no false negatives).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let nbits = self.bits.len() * 8;
        if nbits == 0 {
            return true;
        }
        let mut h = fnv1a(key);
        let delta = h.rotate_right(17) | 1;
        for _ in 0..self.k {
            let bit = (h % nbits as u64) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Serialize: `[k: u32][bits...]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserialize a filter produced by [`Self::encode`].
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        let k = u32::from_le_bytes(data[0..4].try_into().ok()?);
        if !(1..=30).contains(&k) {
            return None;
        }
        Some(Bloom {
            bits: data[4..].to_vec(),
            k,
        })
    }

    /// Size of the encoded filter.
    pub fn encoded_len(&self) -> usize {
        4 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(1000);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), 10);
        for k in &ks {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ks = keys(1000);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), 10);
        let fp = (0..10_000)
            .filter(|i| bloom.may_contain(format!("absent{i:08}").as_bytes()))
            .count();
        assert!(fp < 500, "FPR {} > 5%", fp as f64 / 10_000.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(100);
        let bloom = Bloom::build(ks.iter().map(|k| k.as_slice()), 10);
        let decoded = Bloom::decode(&bloom.encode()).unwrap();
        assert_eq!(decoded, bloom);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Bloom::decode(&[]).is_none());
        assert!(Bloom::decode(&[0, 0, 0, 0, 1]).is_none(), "k = 0 invalid");
    }

    #[test]
    fn empty_key_set_is_safe() {
        let bloom = Bloom::build(std::iter::empty::<&[u8]>(), 10);
        // May return anything, but must not panic.
        let _ = bloom.may_contain(b"whatever");
    }
}
