//! Compaction: picking inputs and executing k-way merges.

use crate::kv::{internal_cmp, Entry, EntryKind};
use crate::sstable::TableHandle;
use crate::version::Version;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Level-size policy.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Number of L0 tables that triggers an L0→L1 compaction.
    pub l0_trigger: usize,
    /// Byte budget of L1.
    pub level_base_bytes: u64,
    /// Each deeper level is this many times larger.
    pub level_multiplier: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            l0_trigger: 4,
            level_base_bytes: 8 << 20,
            level_multiplier: 10,
        }
    }
}

impl CompactionPolicy {
    /// Byte budget of `level` (>= 1).
    pub fn level_limit(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        self.level_base_bytes * self.level_multiplier.pow(level as u32 - 1)
    }
}

/// A chosen compaction: merge `inputs_lo` (from `level`) with `inputs_hi`
/// (from `level + 1`) into new tables at `level + 1`.
pub struct CompactionJob {
    pub level: usize,
    pub inputs_lo: Vec<Arc<TableHandle>>,
    pub inputs_hi: Vec<Arc<TableHandle>>,
}

impl CompactionJob {
    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs_lo
            .iter()
            .chain(&self.inputs_hi)
            .map(|t| t.meta.len)
            .sum()
    }
}

/// Decide whether `version` needs compacting, and what to compact.
pub fn pick_compaction(version: &Version, policy: &CompactionPolicy) -> Option<CompactionJob> {
    let num_levels = version.levels.len();
    // L0 pressure first (it blocks flushes in real systems).
    if version.levels[0].len() >= policy.l0_trigger && num_levels > 1 {
        let inputs_lo = version.levels[0].clone();
        let lo = inputs_lo.iter().map(|t| t.meta.smallest.clone()).min()?;
        let hi = inputs_lo.iter().map(|t| t.meta.largest.clone()).max()?;
        let inputs_hi = version.overlapping(1, &lo, &hi);
        return Some(CompactionJob {
            level: 0,
            inputs_lo,
            inputs_hi,
        });
    }
    for level in 1..num_levels - 1 {
        if version.level_bytes(level) > policy.level_limit(level) {
            // Rotate out the table with the smallest key (simple, fair).
            let t = version.levels[level].first()?.clone();
            let inputs_hi = version.overlapping(level + 1, &t.meta.smallest, &t.meta.largest);
            return Some(CompactionJob {
                level,
                inputs_lo: vec![t],
                inputs_hi,
            });
        }
    }
    None
}

struct HeapItem {
    entry: Entry,
    src: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert to pop smallest internal key.
        internal_cmp(
            &other.entry.key,
            other.entry.meta,
            &self.entry.key,
            self.entry.meta,
        )
    }
}

/// Merge sorted entry streams into one internally-ordered stream.
pub struct MergeIter<I: Iterator<Item = Entry>> {
    sources: Vec<I>,
    heap: BinaryHeap<HeapItem>,
}

impl<I: Iterator<Item = Entry>> MergeIter<I> {
    /// Build from per-source iterators (each already internally ordered).
    pub fn new(mut sources: Vec<I>) -> Self {
        let mut heap = BinaryHeap::new();
        for (src, it) in sources.iter_mut().enumerate() {
            if let Some(entry) = it.next() {
                heap.push(HeapItem { entry, src });
            }
        }
        MergeIter { sources, heap }
    }
}

impl<I: Iterator<Item = Entry>> Iterator for MergeIter<I> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        let top = self.heap.pop()?;
        if let Some(next) = self.sources[top.src].next() {
            self.heap.push(HeapItem {
                entry: next,
                src: top.src,
            });
        }
        Some(top.entry)
    }
}

/// Collapse a merged stream: keep only the newest version of each user key;
/// optionally drop tombstones (legal only when writing the bottom level).
pub fn dedup_newest(merged: impl Iterator<Item = Entry>, drop_tombstones: bool) -> Vec<Entry> {
    let mut out: Vec<Entry> = Vec::new();
    let mut last_key: Option<Vec<u8>> = None;
    for e in merged {
        if last_key.as_deref() == Some(e.key.as_slice()) {
            continue; // older version of the key we just emitted/skipped
        }
        last_key = Some(e.key.clone());
        if drop_tombstones && e.kind() == EntryKind::Delete {
            continue;
        }
        out.push(e);
    }
    out
}

/// Split deduped entries into output tables of roughly `target_bytes` each.
pub fn split_outputs(entries: Vec<Entry>, target_bytes: u64) -> Vec<Vec<Entry>> {
    let mut outputs = Vec::new();
    let mut cur = Vec::new();
    let mut cur_bytes = 0u64;
    for e in entries {
        cur_bytes += (e.key.len() + e.value.len() + 14) as u64;
        cur.push(e);
        if cur_bytes >= target_bytes {
            outputs.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
    }
    if !cur.is_empty() {
        outputs.push(cur);
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::pack_meta;

    fn e(key: &str, seq: u64, val: &str) -> Entry {
        Entry::put(key, seq, val)
    }

    #[test]
    fn merge_two_sorted_streams() {
        let a = vec![e("a", 1, "1"), e("c", 2, "3")];
        let b = vec![e("b", 3, "2"), e("d", 4, "4")];
        let merged: Vec<Entry> = MergeIter::new(vec![a.into_iter(), b.into_iter()]).collect();
        let keys: Vec<&[u8]> = merged.iter().map(|x| x.key.as_slice()).collect();
        assert_eq!(keys, [b"a", b"b", b"c", b"d"]);
    }

    #[test]
    fn merge_orders_same_key_newest_first() {
        let a = vec![e("k", 1, "old")];
        let b = vec![e("k", 9, "new")];
        let merged: Vec<Entry> = MergeIter::new(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(merged[0].value, b"new");
        assert_eq!(merged[1].value, b"old");
    }

    #[test]
    fn dedup_keeps_newest_only() {
        let merged = vec![e("k", 9, "new"), e("k", 1, "old"), e("z", 2, "zz")];
        let out = dedup_newest(merged.into_iter(), false);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, b"new");
        assert_eq!(out[1].key, b"z");
    }

    #[test]
    fn tombstones_kept_mid_tree_dropped_at_bottom() {
        let del = Entry {
            key: b"k".to_vec(),
            meta: pack_meta(9, EntryKind::Delete),
            value: vec![],
        };
        let merged = vec![del.clone(), e("k", 1, "old")];
        let kept = dedup_newest(merged.clone().into_iter(), false);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].kind(), EntryKind::Delete);
        let dropped = dedup_newest(merged.into_iter(), true);
        assert!(dropped.is_empty(), "tombstone and shadowed value both gone");
    }

    #[test]
    fn split_respects_target() {
        let entries: Vec<Entry> = (0..100)
            .map(|i| e(&format!("k{i:03}"), i, "0123456789"))
            .collect();
        let outs = split_outputs(entries, 200);
        assert!(outs.len() > 5);
        let total: usize = outs.iter().map(|o| o.len()).sum();
        assert_eq!(total, 100);
        // Outputs preserve global order.
        let flat: Vec<&Entry> = outs.iter().flatten().collect();
        assert!(flat.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn policy_limits_scale_by_multiplier() {
        let p = CompactionPolicy {
            l0_trigger: 4,
            level_base_bytes: 10,
            level_multiplier: 10,
        };
        assert_eq!(p.level_limit(1), 10);
        assert_eq!(p.level_limit(2), 100);
        assert_eq!(p.level_limit(3), 1000);
    }
}
