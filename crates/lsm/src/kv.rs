//! Public store trait, errors, and internal entry encoding.

use std::fmt;

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Persistent space exhausted.
    OutOfSpace(String),
    /// A key or value exceeded a structural limit.
    TooLarge {
        what: &'static str,
        len: usize,
        max: usize,
    },
    /// Corrupt on-media structure detected (bad CRC, bad magic, ...).
    Corruption(String),
    /// The store has been shut down.
    Closed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfSpace(w) => write!(f, "out of persistent space: {w}"),
            Error::TooLarge { what, len, max } => write!(f, "{what} too large: {len} > {max}"),
            Error::Corruption(w) => write!(f, "corruption: {w}"),
            Error::Closed => write!(f, "store is closed"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Maximum key length (u16-encoded on media).
pub const MAX_KEY_LEN: usize = u16::MAX as usize;
/// Maximum value length (bounded well below the u32 media encoding so a
/// single entry always fits in a MemTable).
pub const MAX_VALUE_LEN: usize = 1 << 20;

/// What an internal entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A live value.
    Put,
    /// A tombstone shadowing older versions.
    Delete,
}

/// Pack a sequence number and kind into the 64-bit meta word stored with
/// every entry. Higher `meta` = newer (seq dominates; `Put` sorts above
/// `Delete` at equal seq, which never happens in practice).
#[inline]
pub fn pack_meta(seq: u64, kind: EntryKind) -> u64 {
    debug_assert!(seq < (1 << 63), "sequence overflow");
    (seq << 1) | matches!(kind, EntryKind::Put) as u64
}

/// Extract the sequence number from a meta word.
#[inline]
pub fn meta_seq(meta: u64) -> u64 {
    meta >> 1
}

/// Extract the kind from a meta word.
#[inline]
pub fn meta_kind(meta: u64) -> EntryKind {
    if meta & 1 != 0 {
        EntryKind::Put
    } else {
        EntryKind::Delete
    }
}

/// An owned internal entry (key, version metadata, value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Vec<u8>,
    pub meta: u64,
    pub value: Vec<u8>,
}

impl Entry {
    /// Build a live entry.
    pub fn put(key: impl Into<Vec<u8>>, seq: u64, value: impl Into<Vec<u8>>) -> Self {
        Entry {
            key: key.into(),
            meta: pack_meta(seq, EntryKind::Put),
            value: value.into(),
        }
    }

    /// Build a tombstone.
    pub fn delete(key: impl Into<Vec<u8>>, seq: u64) -> Self {
        Entry {
            key: key.into(),
            meta: pack_meta(seq, EntryKind::Delete),
            value: Vec::new(),
        }
    }

    /// The entry's kind.
    pub fn kind(&self) -> EntryKind {
        meta_kind(self.meta)
    }

    /// The entry's sequence number.
    pub fn seq(&self) -> u64 {
        meta_seq(self.meta)
    }
}

/// Internal ordering: key ascending, then meta (newness) *descending*, so a
/// forward scan yields the newest version of each key first — the LevelDB
/// internal-key convention.
#[inline]
pub fn internal_cmp(a_key: &[u8], a_meta: u64, b_key: &[u8], b_meta: u64) -> std::cmp::Ordering {
    a_key.cmp(b_key).then(b_meta.cmp(&a_meta))
}

/// Size of the fixed record header used in data regions and table blocks:
/// `[klen u16][vlen u32][meta u64]`.
pub const RECORD_HDR: usize = 14;

/// Append one record (`[klen][vlen][meta][key][value]`) to `buf`.
pub fn encode_record_into(buf: &mut Vec<u8>, key: &[u8], meta: u64, value: &[u8]) {
    buf.extend_from_slice(&(key.len() as u16).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(&meta.to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
}

/// Total encoded size of a record.
pub fn record_len(key_len: usize, value_len: usize) -> usize {
    RECORD_HDR + key_len + value_len
}

/// Decode the record starting at `data[pos..]`. Returns the entry and the
/// position just past it, or `None` if truncated or empty (zeroed space).
pub fn decode_record_at(data: &[u8], pos: usize) -> Option<(Entry, usize)> {
    if pos + RECORD_HDR > data.len() {
        return None;
    }
    let klen = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(data[pos + 2..pos + 6].try_into().unwrap()) as usize;
    let meta = u64::from_le_bytes(data[pos + 6..pos + 14].try_into().unwrap());
    if klen == 0 || pos + RECORD_HDR + klen + vlen > data.len() {
        return None;
    }
    let key = data[pos + RECORD_HDR..pos + RECORD_HDR + klen].to_vec();
    let value = data[pos + RECORD_HDR + klen..pos + RECORD_HDR + klen + vlen].to_vec();
    Some((Entry { key, meta, value }, pos + RECORD_HDR + klen + vlen))
}

/// The user-facing store interface every system in this repository
/// implements: LevelDB-like [`crate::LsmTree`], the NoveLSM/SLM-DB baselines,
/// and CacheKV.
pub trait KvStore: Send + Sync {
    /// Insert or overwrite `key`.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Fetch the newest value for `key`, or `None` if absent/deleted.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Remove `key` (writes a tombstone).
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Range scan: up to `limit` live `(key, value)` pairs with
    /// `start <= key < end`, sorted ascending, tombstones resolved away.
    /// An empty `end` means unbounded; pass `usize::MAX` for no limit.
    /// Stores without an ordered scan path keep the erroring default.
    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let _ = (start, end, limit);
        Err(Error::Corruption(format!(
            "{}: scan is not supported by this store",
            self.name()
        )))
    }

    /// Human-readable system name (used by benchmark reports).
    fn name(&self) -> &'static str;

    /// Block until background work (flushes, index sync, compactions)
    /// started so far is complete. Benchmarks call this before measuring
    /// read phases; the default is a no-op for purely synchronous stores.
    fn quiesce(&self) {}

    /// JSON-serialized metrics snapshot (an `obs::StatsSnapshot` document)
    /// covering the store's device, cache, memory-component, and LSM layers.
    /// `None` for stores that are not instrumented; benchmark harnesses fall
    /// back to device/cache counters in that case.
    fn snapshot_json(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn meta_roundtrip() {
        let m = pack_meta(42, EntryKind::Put);
        assert_eq!(meta_seq(m), 42);
        assert_eq!(meta_kind(m), EntryKind::Put);
        let d = pack_meta(7, EntryKind::Delete);
        assert_eq!(meta_seq(d), 7);
        assert_eq!(meta_kind(d), EntryKind::Delete);
    }

    #[test]
    fn newer_sorts_first_for_same_key() {
        let old = pack_meta(1, EntryKind::Put);
        let new = pack_meta(2, EntryKind::Put);
        assert_eq!(internal_cmp(b"k", new, b"k", old), Ordering::Less);
        assert_eq!(internal_cmp(b"k", old, b"k", new), Ordering::Greater);
    }

    #[test]
    fn key_order_dominates() {
        let m = pack_meta(1, EntryKind::Put);
        assert_eq!(internal_cmp(b"a", m, b"b", m), Ordering::Less);
    }

    #[test]
    fn record_roundtrip() {
        let mut buf = Vec::new();
        encode_record_into(&mut buf, b"key", 42, b"value");
        encode_record_into(&mut buf, b"key2", 43, b"");
        let (e1, p1) = decode_record_at(&buf, 0).unwrap();
        assert_eq!(e1.key, b"key");
        assert_eq!(e1.meta, 42);
        assert_eq!(e1.value, b"value");
        let (e2, p2) = decode_record_at(&buf, p1).unwrap();
        assert_eq!(e2.key, b"key2");
        assert!(e2.value.is_empty());
        assert_eq!(p2, buf.len());
        assert!(decode_record_at(&buf, p2).is_none(), "end of data");
    }

    #[test]
    fn decode_zeroed_space_is_none() {
        let buf = vec![0u8; 64];
        assert!(decode_record_at(&buf, 0).is_none());
    }

    #[test]
    fn entry_constructors() {
        let e = Entry::put("k", 3, "v");
        assert_eq!(e.kind(), EntryKind::Put);
        assert_eq!(e.seq(), 3);
        let t = Entry::delete("k", 4);
        assert_eq!(t.kind(), EntryKind::Delete);
        assert!(t.value.is_empty());
    }
}
