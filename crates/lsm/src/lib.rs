//! LSM-tree substrate: everything below the memory component.
//!
//! Provides the building blocks that LevelDB-style stores (and the paper's
//! baselines, and CacheKV itself) are assembled from:
//!
//! * [`kv`] — the public [`kv::KvStore`] trait, errors, and internal entry
//!   encoding (sequence numbers, tombstones);
//! * [`memspace`] — an abstraction over *where* index/table bytes live:
//!   native DRAM or the simulated persistent hierarchy (with a configurable
//!   flush discipline), so the same skiplist runs in both worlds;
//! * [`skiplist`] — an arena-backed, offset-addressed skiplist;
//! * [`memtable`] — MemTable/ImmMemTable over the skiplist;
//! * [`bloom`] — a LevelDB-style bloom filter;
//! * [`sstable`] — sorted string tables with data blocks, a bloom filter and
//!   a block index, written to persistent objects with streaming stores;
//! * [`version`] — the leveled table organization (`L0` overlapping, `L1+`
//!   sorted) with version edits and a persistent manifest;
//! * [`compaction`] — k-way merge and compaction picking/execution;
//! * [`storage_component`] — the full "storage component" of Figure 2:
//!   ingest sorted runs, serve reads, compact in the background;
//! * [`tree`] — a classic LevelDB-like engine (WAL + shared MemTable +
//!   storage component), the reference point all paper variants diverge
//!   from.

pub mod bloom;
pub mod compaction;
pub mod kv;
pub mod memspace;
pub mod memtable;
pub mod skiplist;
pub mod sstable;
pub mod storage_component;
pub mod tree;
pub mod version;

pub use kv::{Entry, EntryKind, Error, KvStore, Result};
pub use memspace::{DramSpace, FlushMode, MemSpace, PmemSpace};
pub use memtable::MemTable;
pub use skiplist::SkipList;
pub use storage_component::{IngestStream, StorageComponent, StorageConfig};
pub use tree::{LsmConfig, LsmTree};
