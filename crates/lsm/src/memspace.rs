//! Where index and table bytes live.
//!
//! The same skiplist code runs over native DRAM (CacheKV's sub-skiplists and
//! global skiplist, Section III-B) or over the simulated persistent
//! hierarchy (the baselines' PMem-resident MemTables and indexes), selected
//! by the [`MemSpace`] implementation. The PMem flavour also carries the
//! *flush discipline*: per-store `clflush`/`clwb` for ADR-style durability,
//! or none for the `-w/o-flush` variants that lean on eADR.

use cachekv_cache::Hierarchy;
use parking_lot::RwLock;
use std::sync::Arc;

/// A flat byte space the skiplist arena lives in.
pub trait MemSpace: Send + Sync {
    /// Write `data` at `off`.
    fn write(&self, off: u64, data: &[u8]);
    /// Read `buf.len()` bytes at `off`.
    fn read(&self, off: u64, buf: &mut [u8]);
    /// Make `[off, off+len)` durable, per the space's flush discipline.
    fn persist(&self, _off: u64, _len: usize) {}
    /// Capacity in bytes.
    fn capacity(&self) -> u64;

    /// Read a little-endian u32 at `off`.
    #[inline]
    fn read_u32(&self, off: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(off, &mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64 at `off`.
    #[inline]
    fn read_u64(&self, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(off, &mut b);
        u64::from_le_bytes(b)
    }
}

/// Native (volatile) DRAM space. Writes are plain memory writes; `persist`
/// is a no-op. Interior mutability via an `RwLock`, which is uncontended in
/// the single-writer settings the skiplist is used in.
pub struct DramSpace {
    bytes: RwLock<Vec<u8>>,
}

impl DramSpace {
    /// Allocate `capacity` zeroed bytes.
    pub fn new(capacity: usize) -> Self {
        DramSpace {
            bytes: RwLock::new(vec![0u8; capacity]),
        }
    }
}

impl MemSpace for DramSpace {
    fn write(&self, off: u64, data: &[u8]) {
        let mut b = self.bytes.write();
        let off = off as usize;
        b[off..off + data.len()].copy_from_slice(data);
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        let b = self.bytes.read();
        let off = off as usize;
        buf.copy_from_slice(&b[off..off + buf.len()]);
    }

    fn capacity(&self) -> u64 {
        self.bytes.read().len() as u64
    }
}

/// Durability discipline for a persistent space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// `clflush` + fence after every persist (raw NoveLSM / SLM-DB style).
    Clflush,
    /// `clwb` + fence after every persist.
    Clwb,
    /// No flush instructions: rely on eADR (`-w/o-flush` variants).
    None,
}

/// A window of the simulated persistent address space.
pub struct PmemSpace {
    hier: Arc<Hierarchy>,
    base: u64,
    len: u64,
    mode: FlushMode,
}

impl PmemSpace {
    /// Wrap `[base, base+len)` of the hierarchy with a flush discipline.
    pub fn new(hier: Arc<Hierarchy>, base: u64, len: u64, mode: FlushMode) -> Self {
        PmemSpace {
            hier,
            base,
            len,
            mode,
        }
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Arc<Hierarchy> {
        &self.hier
    }

    /// Base address within the global persistent address space.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The flush discipline in force.
    pub fn mode(&self) -> FlushMode {
        self.mode
    }
}

impl MemSpace for PmemSpace {
    fn write(&self, off: u64, data: &[u8]) {
        debug_assert!(
            off + data.len() as u64 <= self.len,
            "PmemSpace write out of range"
        );
        self.hier.store(self.base + off, data);
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        debug_assert!(
            off + buf.len() as u64 <= self.len,
            "PmemSpace read out of range"
        );
        self.hier.load(self.base + off, buf);
    }

    fn persist(&self, off: u64, len: usize) {
        match self.mode {
            FlushMode::Clflush => {
                self.hier.clflush(self.base + off, len);
                self.hier.sfence();
            }
            FlushMode::Clwb => {
                self.hier.clwb(self.base + off, len);
                self.hier.sfence();
            }
            FlushMode::None => {}
        }
    }

    fn capacity(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(PmemConfig::small()));
        Arc::new(Hierarchy::new(dev, CacheConfig::small()))
    }

    #[test]
    fn dram_roundtrip() {
        let s = DramSpace::new(1024);
        s.write(100, b"abc");
        let mut b = [0u8; 3];
        s.read(100, &mut b);
        assert_eq!(&b, b"abc");
        assert_eq!(s.capacity(), 1024);
    }

    #[test]
    fn pmem_roundtrip_with_offsets() {
        let s = PmemSpace::new(hier(), 4096, 8192, FlushMode::Clwb);
        s.write(0, b"xyz");
        s.persist(0, 3);
        let mut b = [0u8; 3];
        s.read(0, &mut b);
        assert_eq!(&b, b"xyz");
        // Data landed at base+off in the global space.
        let mut g = [0u8; 3];
        s.hierarchy().load(4096, &mut g);
        assert_eq!(&g, b"xyz");
    }

    #[test]
    fn clflush_mode_pushes_lines_to_device() {
        let h = hier();
        let s = PmemSpace::new(h.clone(), 0, 4096, FlushMode::Clflush);
        s.write(0, &[1u8; 64]);
        s.persist(0, 64);
        assert_eq!(h.pmem_stats().cpu_writes, 1);
    }

    #[test]
    fn none_mode_keeps_lines_in_cache() {
        let h = hier();
        let s = PmemSpace::new(h.clone(), 0, 4096, FlushMode::None);
        s.write(0, &[1u8; 64]);
        s.persist(0, 64);
        assert_eq!(h.pmem_stats().cpu_writes, 0, "no flush issued");
        assert_eq!(h.dirty_lines(), 1);
    }

    #[test]
    fn u32_u64_helpers() {
        let s = DramSpace::new(64);
        s.write(0, &0xAABB_CCDDu32.to_le_bytes());
        s.write(8, &0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(s.read_u32(0), 0xAABB_CCDD);
        assert_eq!(s.read_u64(8), 0x1122_3344_5566_7788);
    }
}
