//! MemTable: the in-memory (or in-PMem, or in-cache) write buffer.

use crate::kv::{
    meta_kind, pack_meta, Entry, EntryKind, Error, Result, MAX_KEY_LEN, MAX_VALUE_LEN,
};
use crate::memspace::MemSpace;
use crate::skiplist::{SkipIter, SkipList};

/// Outcome of probing one component for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Key present with this value.
    Found(Vec<u8>),
    /// Key deleted at this component; stop probing older components.
    Tombstone,
    /// Not in this component; keep probing.
    NotFound,
}

/// A skiplist-backed write buffer with a byte budget.
pub struct MemTable<S: MemSpace> {
    list: SkipList<S>,
    budget: u64,
}

impl<S: MemSpace> MemTable<S> {
    /// Create a MemTable whose skiplist arena lives in `space`; it reports
    /// full once the arena has less than one max-sized entry of headroom or
    /// `budget` bytes have been consumed.
    pub fn new(space: S, budget: u64) -> Self {
        MemTable {
            list: SkipList::new(space),
            budget,
        }
    }

    /// Insert a live entry.
    pub fn put(&mut self, key: &[u8], seq: u64, value: &[u8]) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(Error::TooLarge {
                what: "key",
                len: key.len(),
                max: MAX_KEY_LEN,
            });
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(Error::TooLarge {
                what: "value",
                len: value.len(),
                max: MAX_VALUE_LEN,
            });
        }
        self.list.insert(key, pack_meta(seq, EntryKind::Put), value)
    }

    /// Insert a tombstone.
    pub fn delete(&mut self, key: &[u8], seq: u64) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(Error::TooLarge {
                what: "key",
                len: key.len(),
                max: MAX_KEY_LEN,
            });
        }
        self.list
            .insert(key, pack_meta(seq, EntryKind::Delete), b"")
    }

    /// Probe for the newest version of `key`.
    pub fn get(&self, key: &[u8]) -> Lookup {
        match self.list.get_latest(key) {
            None => Lookup::NotFound,
            Some((meta, value)) => match meta_kind(meta) {
                EntryKind::Put => Lookup::Found(value),
                EntryKind::Delete => Lookup::Tombstone,
            },
        }
    }

    /// Whether the table should be rotated out.
    pub fn is_full(&self) -> bool {
        self.list.arena_used() >= self.budget
    }

    /// Entries currently held (including shadowed versions).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no entries were inserted.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate bytes used.
    pub fn bytes_used(&self) -> u64 {
        self.list.arena_used()
    }

    /// Sorted iteration (key asc, newest first) for flushing to an SSTable.
    pub fn iter(&self) -> SkipIter<'_, S> {
        self.list.iter()
    }

    /// Drain into owned entries (for table building).
    pub fn entries(&self) -> Vec<Entry> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memspace::DramSpace;

    fn mt(cap: usize) -> MemTable<DramSpace> {
        MemTable::new(DramSpace::new(cap), cap as u64 * 8 / 10)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut m = mt(1 << 14);
        m.put(b"a", 1, b"va").unwrap();
        assert_eq!(m.get(b"a"), Lookup::Found(b"va".to_vec()));
        assert_eq!(m.get(b"b"), Lookup::NotFound);
    }

    #[test]
    fn delete_shadows_put() {
        let mut m = mt(1 << 14);
        m.put(b"a", 1, b"va").unwrap();
        m.delete(b"a", 2).unwrap();
        assert_eq!(m.get(b"a"), Lookup::Tombstone);
    }

    #[test]
    fn later_put_shadows_delete() {
        let mut m = mt(1 << 14);
        m.delete(b"a", 1).unwrap();
        m.put(b"a", 2, b"back").unwrap();
        assert_eq!(m.get(b"a"), Lookup::Found(b"back".to_vec()));
    }

    #[test]
    fn fullness_tracks_budget() {
        let mut m = MemTable::new(DramSpace::new(1 << 14), 1024);
        assert!(!m.is_full());
        for seq in 0..40 {
            m.put(format!("key{seq:03}").as_bytes(), seq, &[7u8; 32])
                .unwrap();
        }
        assert!(m.is_full());
    }

    #[test]
    fn oversized_key_rejected() {
        let mut m = mt(1 << 14);
        let big = vec![0u8; MAX_KEY_LEN + 1];
        assert!(matches!(
            m.put(&big, 1, b"v"),
            Err(Error::TooLarge { what: "key", .. })
        ));
    }

    #[test]
    fn oversized_value_rejected() {
        let mut m = MemTable::new(DramSpace::new(4 << 20), 4 << 20);
        let big = vec![0u8; MAX_VALUE_LEN + 1];
        assert!(matches!(
            m.put(b"k", 1, &big),
            Err(Error::TooLarge { what: "value", .. })
        ));
    }

    #[test]
    fn entries_sorted_for_flush() {
        let mut m = mt(1 << 14);
        m.put(b"c", 1, b"3").unwrap();
        m.put(b"a", 2, b"1").unwrap();
        m.put(b"b", 3, b"2").unwrap();
        let keys: Vec<Vec<u8>> = m.entries().into_iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }
}
