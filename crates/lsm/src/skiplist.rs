//! Arena-backed, offset-addressed skiplist.
//!
//! Nodes live inside a [`MemSpace`] arena and reference each other by u32
//! offsets, so the *same* implementation runs in native DRAM (CacheKV's
//! sub-skiplists) and in simulated PMem (the baselines' MemTable indexes —
//! where every pointer chase pays simulated PMem latency and every pointer
//! update dirties a scattered cacheline, the write-amplification source of
//! the paper's Observation 1).
//!
//! Concurrency: single writer, externally synchronized (the paper's
//! baselines guard the shared MemTable with a mutex — that contention *is*
//! Observation 2; CacheKV's sub-skiplists are single-writer by design).
//! Duplicate user keys are allowed and ordered newest-first, LevelDB style.

use crate::kv::{internal_cmp, Entry, Error, Result};
use crate::memspace::MemSpace;

/// Maximum tower height.
pub const MAX_HEIGHT: usize = 12;
/// Branching factor: each level keeps ~1/4 of the one below.
const BRANCHING: u64 = 4;

/// Fixed node header: height(1) pad(1) klen(2) vlen(4) meta(8).
const HDR: u64 = 16;
/// Offset of the head node in the arena (0 is the null offset).
const HEAD_OFF: u64 = 8;

/// The skiplist. `S` decides where the bytes live.
pub struct SkipList<S: MemSpace> {
    space: S,
    /// Arena bump pointer.
    tail: u64,
    len: usize,
    /// xorshift64 state for tower heights (deterministic per seed).
    rng: u64,
}

struct NodeRef {
    off: u64,
    height: usize,
    key_len: usize,
    val_len: usize,
    meta: u64,
}

impl<S: MemSpace> SkipList<S> {
    /// Build an empty list in `space` (which must be zeroed, as fresh
    /// allocations are).
    pub fn new(space: S) -> Self {
        Self::with_seed(space, 0x9E37_79B9_7F4A_7C15)
    }

    /// Build with an explicit height-RNG seed (deterministic tests).
    pub fn with_seed(space: S, seed: u64) -> Self {
        let mut list = SkipList {
            space,
            tail: HEAD_OFF,
            len: 0,
            rng: seed | 1,
        };
        // Head node: max height, empty key, null next pointers.
        let head_size = HDR + (MAX_HEIGHT as u64) * 4;
        let mut hdr = [0u8; HDR as usize];
        hdr[0] = MAX_HEIGHT as u8;
        list.space.write(HEAD_OFF, &hdr);
        list.space.write(HEAD_OFF + HDR, &[0u8; MAX_HEIGHT * 4]);
        list.space.persist(HEAD_OFF, head_size as usize);
        list.tail = HEAD_OFF + head_size;
        list
    }

    /// Rebuild the handle over a space that already contains a list written
    /// by a previous incarnation (crash recovery). `tail` and `len` must
    /// come from a trusted source (e.g. CacheKV's persistent counters).
    pub fn reopen(space: S, tail: u64, len: usize) -> Self {
        SkipList {
            space,
            tail,
            len,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Number of entries (including shadowed versions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arena bytes consumed.
    pub fn arena_used(&self) -> u64 {
        self.tail
    }

    /// The underlying space.
    pub fn space(&self) -> &S {
        &self.space
    }

    fn read_node(&self, off: u64) -> NodeRef {
        let mut hdr = [0u8; HDR as usize];
        self.space.read(off, &mut hdr);
        NodeRef {
            off,
            height: hdr[0] as usize,
            key_len: u16::from_le_bytes([hdr[2], hdr[3]]) as usize,
            val_len: u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize,
            meta: u64::from_le_bytes(hdr[8..16].try_into().unwrap()),
        }
    }

    fn node_key(&self, n: &NodeRef) -> Vec<u8> {
        let mut k = vec![0u8; n.key_len];
        self.space.read(n.off + HDR + (n.height as u64) * 4, &mut k);
        k
    }

    fn node_value(&self, n: &NodeRef) -> Vec<u8> {
        let mut v = vec![0u8; n.val_len];
        self.space.read(
            n.off + HDR + (n.height as u64) * 4 + n.key_len as u64,
            &mut v,
        );
        v
    }

    fn next(&self, node_off: u64, height_of_node: usize, level: usize) -> u64 {
        debug_assert!(level < height_of_node);
        let _ = height_of_node;
        self.space.read_u32(node_off + HDR + (level as u64) * 4) as u64
    }

    fn set_next(&self, node_off: u64, level: usize, target: u64) {
        debug_assert!(target <= u32::MAX as u64);
        self.space.write(
            node_off + HDR + (level as u64) * 4,
            &(target as u32).to_le_bytes(),
        );
        self.space.persist(node_off + HDR + (level as u64) * 4, 4);
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*
        let mut h = 1;
        loop {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            if h >= MAX_HEIGHT || !self.rng.is_multiple_of(BRANCHING) {
                break;
            }
            h += 1;
        }
        h
    }

    /// Find, per level, the last node strictly before `(key, meta)`.
    fn find_preds(&self, key: &[u8], meta: u64) -> [u64; MAX_HEIGHT] {
        let mut preds = [HEAD_OFF; MAX_HEIGHT];
        let mut cur = HEAD_OFF;
        let mut cur_height = MAX_HEIGHT;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let nxt = self.next(cur, cur_height, level);
                if nxt == 0 {
                    break;
                }
                let node = self.read_node(nxt);
                let nkey = self.node_key(&node);
                if internal_cmp(&nkey, node.meta, key, meta) == std::cmp::Ordering::Less {
                    cur = nxt;
                    cur_height = node.height;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        preds
    }

    /// Insert `(key, meta, value)`. Duplicate `(key, meta)` pairs are
    /// rejected as corruption (sequence numbers are unique by construction).
    pub fn insert(&mut self, key: &[u8], meta: u64, value: &[u8]) -> Result<()> {
        let height = self.random_height();
        let node_size = HDR + (height as u64) * 4 + key.len() as u64 + value.len() as u64;
        if self.tail + node_size > self.space.capacity() {
            return Err(Error::OutOfSpace(format!(
                "skiplist arena: need {node_size} bytes, {} free",
                self.space.capacity() - self.tail
            )));
        }
        let preds = self.find_preds(key, meta);
        let off = self.tail;
        self.tail += node_size;

        // Write the node body first...
        let mut hdr = [0u8; HDR as usize];
        hdr[0] = height as u8;
        hdr[2..4].copy_from_slice(&(key.len() as u16).to_le_bytes());
        hdr[4..8].copy_from_slice(&(value.len() as u32).to_le_bytes());
        hdr[8..16].copy_from_slice(&meta.to_le_bytes());
        self.space.write(off, &hdr);
        let mut nexts = vec![0u8; height * 4];
        for level in 0..height {
            let succ = self.next(preds[level], MAX_HEIGHT, level) as u32;
            nexts[level * 4..level * 4 + 4].copy_from_slice(&succ.to_le_bytes());
        }
        self.space.write(off + HDR, &nexts);
        self.space.write(off + HDR + (height as u64) * 4, key);
        self.space
            .write(off + HDR + (height as u64) * 4 + key.len() as u64, value);
        self.space.persist(off, node_size as usize);

        // ...then publish it bottom-up (crash-safe link order).
        for (level, &pred) in preds.iter().enumerate().take(height) {
            self.set_next(pred, level, off);
        }
        self.len += 1;
        Ok(())
    }

    /// Newest version at or below `max_meta` for `key`:
    /// `(meta, value bytes)`.
    pub fn get_latest(&self, key: &[u8]) -> Option<(u64, Vec<u8>)> {
        let preds = self.find_preds(key, u64::MAX);
        let nxt = self.next(preds[0], MAX_HEIGHT, 0);
        if nxt == 0 {
            return None;
        }
        let node = self.read_node(nxt);
        if self.node_key(&node) == key {
            Some((node.meta, self.node_value(&node)))
        } else {
            None
        }
    }

    /// Iterate all entries in internal order (key asc, newest first).
    pub fn iter(&self) -> SkipIter<'_, S> {
        SkipIter {
            list: self,
            cur: self.next(HEAD_OFF, MAX_HEIGHT, 0),
        }
    }

    /// Iterate in internal order starting at the first entry whose key is
    /// `>= key`. Seeking with `meta = u64::MAX` works because internal
    /// order is key asc, meta desc: `(key, u64::MAX)` sorts before every
    /// real version of `key`, so the successor of its predecessors is the
    /// first node with `node_key >= key`.
    pub fn iter_from(&self, key: &[u8]) -> SkipIter<'_, S> {
        let preds = self.find_preds(key, u64::MAX);
        SkipIter {
            list: self,
            cur: self.next(preds[0], MAX_HEIGHT, 0),
        }
    }

    /// Iterate `(key, meta)` pairs in internal order without materializing
    /// values — for bloom/fence construction over large lists.
    pub fn iter_keys(&self) -> SkipKeyIter<'_, S> {
        SkipKeyIter {
            list: self,
            cur: self.next(HEAD_OFF, MAX_HEIGHT, 0),
        }
    }

    /// Sanity check: entries are in strict internal order (tests/fuzzing).
    pub fn check_ordered(&self) -> bool {
        let mut prev: Option<(Vec<u8>, u64)> = None;
        for e in self.iter() {
            if let Some((pk, pm)) = &prev {
                if internal_cmp(pk, *pm, &e.key, e.meta) != std::cmp::Ordering::Less {
                    return false;
                }
            }
            prev = Some((e.key, e.meta));
        }
        true
    }
}

/// Forward iterator over a skiplist.
pub struct SkipIter<'a, S: MemSpace> {
    list: &'a SkipList<S>,
    cur: u64,
}

impl<S: MemSpace> Iterator for SkipIter<'_, S> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        if self.cur == 0 {
            return None;
        }
        let node = self.list.read_node(self.cur);
        let key = self.list.node_key(&node);
        let value = self.list.node_value(&node);
        self.cur = self.list.next(node.off, node.height, 0);
        Some(Entry {
            key,
            meta: node.meta,
            value,
        })
    }
}

/// Forward iterator over `(key, meta)` pairs only.
pub struct SkipKeyIter<'a, S: MemSpace> {
    list: &'a SkipList<S>,
    cur: u64,
}

impl<S: MemSpace> Iterator for SkipKeyIter<'_, S> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.cur == 0 {
            return None;
        }
        let node = self.list.read_node(self.cur);
        let key = self.list.node_key(&node);
        self.cur = self.list.next(node.off, node.height, 0);
        Some((key, node.meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{pack_meta, EntryKind};
    use crate::memspace::DramSpace;

    fn list(cap: usize) -> SkipList<DramSpace> {
        SkipList::new(DramSpace::new(cap))
    }

    #[test]
    fn insert_and_get() {
        let mut l = list(1 << 16);
        l.insert(b"bob", pack_meta(1, EntryKind::Put), b"1")
            .unwrap();
        l.insert(b"alice", pack_meta(2, EntryKind::Put), b"2")
            .unwrap();
        let (_, v) = l.get_latest(b"alice").unwrap();
        assert_eq!(v, b"2");
        assert!(l.get_latest(b"carol").is_none());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn newest_version_wins() {
        let mut l = list(1 << 16);
        l.insert(b"k", pack_meta(1, EntryKind::Put), b"old")
            .unwrap();
        l.insert(b"k", pack_meta(5, EntryKind::Put), b"new")
            .unwrap();
        l.insert(b"k", pack_meta(3, EntryKind::Put), b"mid")
            .unwrap();
        let (meta, v) = l.get_latest(b"k").unwrap();
        assert_eq!(v, b"new");
        assert_eq!(crate::kv::meta_seq(meta), 5);
    }

    #[test]
    fn tombstone_is_visible_as_latest() {
        let mut l = list(1 << 16);
        l.insert(b"k", pack_meta(1, EntryKind::Put), b"v").unwrap();
        l.insert(b"k", pack_meta(2, EntryKind::Delete), b"")
            .unwrap();
        let (meta, _) = l.get_latest(b"k").unwrap();
        assert_eq!(crate::kv::meta_kind(meta), EntryKind::Delete);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut l = list(1 << 18);
        let keys = [b"d", b"a", b"c", b"b", b"e"];
        for (i, k) in keys.iter().enumerate() {
            l.insert(*k, pack_meta(i as u64, EntryKind::Put), b"v")
                .unwrap();
        }
        let got: Vec<Vec<u8>> = l.iter().map(|e| e.key).collect();
        assert_eq!(
            got,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"d".to_vec(),
                b"e".to_vec()
            ]
        );
        assert!(l.check_ordered());
    }

    #[test]
    fn many_random_inserts_stay_ordered() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = list(1 << 20);
        for seq in 0..2000u64 {
            let key = format!("key{:05}", rng.gen_range(0..500));
            l.insert(key.as_bytes(), pack_meta(seq, EntryKind::Put), b"payload")
                .unwrap();
        }
        assert_eq!(l.len(), 2000);
        assert!(l.check_ordered());
    }

    #[test]
    fn arena_exhaustion_is_an_error() {
        let mut l = list(256);
        let mut filled = false;
        for seq in 0..100 {
            if l.insert(b"key", pack_meta(seq, EntryKind::Put), &[0u8; 32])
                .is_err()
            {
                filled = true;
                break;
            }
        }
        assert!(filled, "small arena must eventually refuse inserts");
    }

    #[test]
    fn empty_value_roundtrip() {
        let mut l = list(1 << 12);
        l.insert(b"k", pack_meta(1, EntryKind::Put), b"").unwrap();
        let (_, v) = l.get_latest(b"k").unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn get_between_existing_keys_misses() {
        let mut l = list(1 << 12);
        l.insert(b"a", pack_meta(1, EntryKind::Put), b"1").unwrap();
        l.insert(b"c", pack_meta(2, EntryKind::Put), b"3").unwrap();
        assert!(l.get_latest(b"b").is_none());
    }

    #[test]
    fn iter_from_seeks_to_first_key_at_or_after() {
        let mut l = list(1 << 18);
        for (seq, k) in [b"b", b"d", b"f"].iter().enumerate() {
            l.insert(*k, pack_meta(seq as u64 + 1, EntryKind::Put), b"v")
                .unwrap();
        }
        // Multiple versions of "d": iter_from must start at the newest.
        l.insert(b"d", pack_meta(9, EntryKind::Put), b"v9").unwrap();

        let keys = |start: &[u8]| -> Vec<Vec<u8>> { l.iter_from(start).map(|e| e.key).collect() };
        assert_eq!(
            keys(b"a"),
            vec![b"b".to_vec(), b"d".to_vec(), b"d".to_vec(), b"f".to_vec()]
        );
        assert_eq!(
            keys(b"c"),
            vec![b"d".to_vec(), b"d".to_vec(), b"f".to_vec()]
        );
        assert_eq!(keys(b"f"), vec![b"f".to_vec()]);
        assert!(keys(b"g").is_empty());
        // Exact-key seek lands on the newest version first.
        let first = l.iter_from(b"d").next().unwrap();
        assert_eq!(crate::kv::meta_seq(first.meta), 9);
        // Empty start key walks the whole list.
        assert_eq!(keys(b""), keys(b"a"));
    }

    #[test]
    fn deterministic_heights_with_seed() {
        let mut a = SkipList::with_seed(DramSpace::new(1 << 14), 42);
        let mut b = SkipList::with_seed(DramSpace::new(1 << 14), 42);
        for seq in 0..50 {
            a.insert(
                format!("k{seq}").as_bytes(),
                pack_meta(seq, EntryKind::Put),
                b"v",
            )
            .unwrap();
            b.insert(
                format!("k{seq}").as_bytes(),
                pack_meta(seq, EntryKind::Put),
                b"v",
            )
            .unwrap();
        }
        assert_eq!(a.arena_used(), b.arena_used());
    }
}
