//! Sorted String Tables.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [data block 0][data block 1]...[bloom][index][footer]
//! data block : repeated [klen u16][vlen u32][meta u64][key][value]
//! index      : [count u32] then per block
//!              [off u64][len u32][last_klen u16][last_user_key]
//! footer(48B): [index_off u64][index_len u32][bloom_off u64][bloom_len u32]
//!              [entries u64][crc u32][magic u32]
//! ```
//!
//! Tables are built in a DRAM buffer and streamed to persistent memory with
//! non-temporal stores — exactly how every store in this repo writes bulk
//! sorted runs, and the write pattern that fills whole XPLines.

use crate::bloom::Bloom;
use crate::kv::{meta_kind, Entry, EntryKind, Error, Result};
use crate::memtable::Lookup;
use cachekv_cache::Hierarchy;
use cachekv_storage::crc::crc32c;
use cachekv_storage::PmemAllocator;
use std::sync::Arc;

const MAGIC: u32 = 0x5354_424C; // "STBL"
const FOOTER: usize = 48;

/// Build-time knobs.
#[derive(Debug, Clone, Copy)]
pub struct TableOptions {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Bloom filter bits per key.
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_size: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

/// Descriptor of a table resident in persistent memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Unique table id.
    pub id: u64,
    /// Base address in the persistent space.
    pub base: u64,
    /// Total encoded length.
    pub len: u64,
    /// Smallest user key.
    pub smallest: Vec<u8>,
    /// Largest user key.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub entries: u64,
    /// Highest sequence number contained.
    pub max_seq: u64,
}

/// One block-index entry: `(block offset, block length, last user key)`.
pub type BlockIndexEntry = (u64, u32, Vec<u8>);

/// Serialize sorted `entries` (internal order) into table bytes.
pub fn encode_table(entries: &[Entry], opts: &TableOptions) -> (Vec<u8>, Vec<BlockIndexEntry>) {
    let mut data = Vec::new();
    let mut index: Vec<BlockIndexEntry> = Vec::new();
    let mut block_start = 0usize;
    let mut last_key_in_block: Vec<u8> = Vec::new();
    for e in entries {
        data.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
        data.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
        data.extend_from_slice(&e.meta.to_le_bytes());
        data.extend_from_slice(&e.key);
        data.extend_from_slice(&e.value);
        last_key_in_block = e.key.clone();
        if data.len() - block_start >= opts.block_size {
            index.push((
                block_start as u64,
                (data.len() - block_start) as u32,
                last_key_in_block.clone(),
            ));
            block_start = data.len();
        }
    }
    if data.len() > block_start {
        index.push((
            block_start as u64,
            (data.len() - block_start) as u32,
            last_key_in_block,
        ));
    }
    (data, index)
}

/// Build a table from sorted entries, allocate persistent space for it, and
/// stream it out. Returns its descriptor.
pub fn build_table(
    hier: &Arc<Hierarchy>,
    alloc: &PmemAllocator,
    id: u64,
    entries: &[Entry],
    opts: &TableOptions,
) -> Result<TableMeta> {
    assert!(!entries.is_empty(), "refusing to build an empty table");
    let (mut buf, index) = encode_table(entries, opts);

    let bloom = Bloom::build(
        entries.iter().map(|e| e.key.as_slice()),
        opts.bloom_bits_per_key,
    );
    let bloom_off = buf.len() as u64;
    let bloom_bytes = bloom.encode();
    buf.extend_from_slice(&bloom_bytes);

    let index_off = buf.len() as u64;
    buf.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for (off, len, last_key) in &index {
        buf.extend_from_slice(&off.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&(last_key.len() as u16).to_le_bytes());
        buf.extend_from_slice(last_key);
    }
    let index_len = buf.len() as u64 - index_off;

    let mut footer = [0u8; FOOTER];
    footer[0..8].copy_from_slice(&index_off.to_le_bytes());
    footer[8..12].copy_from_slice(&(index_len as u32).to_le_bytes());
    footer[12..20].copy_from_slice(&bloom_off.to_le_bytes());
    footer[20..24].copy_from_slice(&(bloom_bytes.len() as u32).to_le_bytes());
    footer[24..32].copy_from_slice(&(entries.len() as u64).to_le_bytes());
    // crc and magic sit at the fixed tail where the reader expects them.
    footer[FOOTER - 8..FOOTER - 4].copy_from_slice(&crc32c(&buf).to_le_bytes());
    footer[FOOTER - 4..].copy_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&footer);

    let base = alloc
        .alloc(buf.len() as u64)
        .map_err(|e| Error::OutOfSpace(format!("sstable {id}: {e}")))?;
    hier.nt_store(base, &buf);
    hier.sfence();

    let max_seq = entries.iter().map(|e| e.seq()).max().unwrap_or(0);
    Ok(TableMeta {
        id,
        base,
        len: buf.len() as u64,
        smallest: entries.first().unwrap().key.clone(),
        largest: entries.last().unwrap().key.clone(),
        entries: entries.len() as u64,
        max_seq,
    })
}

/// An opened table: bloom filter and block index cached in DRAM (as
/// LevelDB's block cache does), data blocks read through the hierarchy.
pub struct TableHandle {
    pub meta: TableMeta,
    hier: Arc<Hierarchy>,
    bloom: Bloom,
    /// Per-block index entries.
    index: Vec<BlockIndexEntry>,
    /// Deferred space reclamation (set once the table leaves the version).
    reclaim: parking_lot::Mutex<Option<Arc<PmemAllocator>>>,
}

impl TableHandle {
    /// Open a table from its descriptor, verifying the footer.
    pub fn open(hier: Arc<Hierarchy>, meta: TableMeta) -> Result<Self> {
        if meta.len < FOOTER as u64 {
            return Err(Error::Corruption(format!("table {} truncated", meta.id)));
        }
        let footer = hier.load_vec(meta.base + meta.len - FOOTER as u64, FOOTER);
        let magic = u32::from_le_bytes(footer[FOOTER - 4..].try_into().unwrap());
        if magic != MAGIC {
            return Err(Error::Corruption(format!(
                "table {}: bad magic {magic:#x}",
                meta.id
            )));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let index_len = u32::from_le_bytes(footer[8..12].try_into().unwrap()) as usize;
        let bloom_off = u64::from_le_bytes(footer[12..20].try_into().unwrap());
        let bloom_len = u32::from_le_bytes(footer[20..24].try_into().unwrap()) as usize;

        let bloom_bytes = hier.load_vec(meta.base + bloom_off, bloom_len);
        let bloom = Bloom::decode(&bloom_bytes)
            .ok_or_else(|| Error::Corruption(format!("table {}: bad bloom", meta.id)))?;

        let idx = hier.load_vec(meta.base + index_off, index_len);
        let count = u32::from_le_bytes(idx[0..4].try_into().unwrap()) as usize;
        let mut index = Vec::with_capacity(count);
        let mut p = 4usize;
        for _ in 0..count {
            let off = u64::from_le_bytes(idx[p..p + 8].try_into().unwrap());
            let len = u32::from_le_bytes(idx[p + 8..p + 12].try_into().unwrap());
            let klen = u16::from_le_bytes(idx[p + 12..p + 14].try_into().unwrap()) as usize;
            let key = idx[p + 14..p + 14 + klen].to_vec();
            index.push((off, len, key));
            p += 14 + klen;
        }
        Ok(TableHandle {
            meta,
            hier,
            bloom,
            index,
            reclaim: parking_lot::Mutex::new(None),
        })
    }

    /// Whether `key` is within this table's key range.
    pub fn overlaps_key(&self, key: &[u8]) -> bool {
        key >= self.meta.smallest.as_slice() && key <= self.meta.largest.as_slice()
    }

    /// Probe for the newest version of `key` in this table.
    pub fn get(&self, key: &[u8]) -> Lookup {
        if !self.overlaps_key(key) || !self.bloom.may_contain(key) {
            return Lookup::NotFound;
        }
        // First block whose last key >= target: if key exists, its newest
        // version lives there (internal order: newest first).
        let bi = self
            .index
            .partition_point(|(_, _, last)| last.as_slice() < key);
        if bi >= self.index.len() {
            return Lookup::NotFound;
        }
        let (off, len, _) = &self.index[bi];
        let block = self.hier.load_vec(self.meta.base + off, *len as usize);
        for e in BlockIter::new(&block) {
            match e.key.as_slice().cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Greater => return Lookup::NotFound,
                std::cmp::Ordering::Equal => {
                    return match meta_kind(e.meta) {
                        EntryKind::Put => Lookup::Found(e.value),
                        EntryKind::Delete => Lookup::Tombstone,
                    };
                }
            }
        }
        Lookup::NotFound
    }

    /// Probe with version information: `(meta, value)` of the newest entry
    /// for `key` (tombstones have `EntryKind::Delete` metas). Used by
    /// CacheKV, which must compare versions *across* components because its
    /// per-core sub-MemTables do not globally order a key's versions.
    pub fn get_versioned(&self, key: &[u8]) -> Option<(u64, Vec<u8>)> {
        if !self.overlaps_key(key) || !self.bloom.may_contain(key) {
            return None;
        }
        let bi = self
            .index
            .partition_point(|(_, _, last)| last.as_slice() < key);
        if bi >= self.index.len() {
            return None;
        }
        let (off, len, _) = &self.index[bi];
        let block = self.hier.load_vec(self.meta.base + off, *len as usize);
        for e in BlockIter::new(&block) {
            match e.key.as_slice().cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Equal => return Some((e.meta, e.value)),
            }
        }
        None
    }

    /// Iterate every entry in internal order (for compaction merges).
    pub fn iter(&self) -> TableIter<'_> {
        TableIter {
            table: self,
            block_idx: 0,
            block: Vec::new(),
            pos: 0,
        }
    }

    /// Iterate in internal order starting at the first block whose last
    /// key is `>= key`. Entries earlier in that block still precede `key`;
    /// the caller filters them against its start bound.
    pub fn iter_from(&self, key: &[u8]) -> TableIter<'_> {
        TableIter {
            table: self,
            block_idx: self
                .index
                .partition_point(|(_, _, last)| last.as_slice() < key),
            block: Vec::new(),
            pos: 0,
        }
    }

    /// Like [`iter_from`](Self::iter_from) but owns its table handle, so a
    /// long-lived scan cursor can hold the stream while the Arc pins the
    /// table (and its reclaimable space) against compaction retirement.
    pub fn iter_from_owned(self: &Arc<Self>, key: &[u8]) -> OwnedTableIter {
        OwnedTableIter {
            block_idx: self
                .index
                .partition_point(|(_, _, last)| last.as_slice() < key),
            table: Arc::clone(self),
            block: Vec::new(),
            pos: 0,
        }
    }

    /// Arrange for the table's space to return to `alloc` when the last
    /// reference drops (called after a compaction retires the table).
    pub fn reclaim_with(&self, alloc: Arc<PmemAllocator>) {
        *self.reclaim.lock() = Some(alloc);
    }
}

impl Drop for TableHandle {
    fn drop(&mut self) {
        if let Some(alloc) = self.reclaim.lock().take() {
            alloc.free(self.meta.base, self.meta.len);
        }
    }
}

/// Decode entries from one in-DRAM block.
struct BlockIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BlockIter<'a> {
    fn new(data: &'a [u8]) -> Self {
        BlockIter { data, pos: 0 }
    }
}

impl Iterator for BlockIter<'_> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        if self.pos + 14 > self.data.len() {
            return None;
        }
        let p = self.pos;
        let klen = u16::from_le_bytes(self.data[p..p + 2].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(self.data[p + 2..p + 6].try_into().unwrap()) as usize;
        let meta = u64::from_le_bytes(self.data[p + 6..p + 14].try_into().unwrap());
        let kstart = p + 14;
        if kstart + klen + vlen > self.data.len() {
            return None;
        }
        let key = self.data[kstart..kstart + klen].to_vec();
        let value = self.data[kstart + klen..kstart + klen + vlen].to_vec();
        self.pos = kstart + klen + vlen;
        Some(Entry { key, meta, value })
    }
}

/// Streaming iterator over all blocks of a table.
pub struct TableIter<'a> {
    table: &'a TableHandle,
    block_idx: usize,
    block: Vec<u8>,
    pos: usize,
}

impl Iterator for TableIter<'_> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            if self.pos < self.block.len() {
                let mut it = BlockIter {
                    data: &self.block,
                    pos: self.pos,
                };
                if let Some(e) = it.next() {
                    self.pos = it.pos;
                    return Some(e);
                }
            }
            if self.block_idx >= self.table.index.len() {
                return None;
            }
            let (off, len, _) = &self.table.index[self.block_idx];
            self.block = self
                .table
                .hier
                .load_vec(self.table.meta.base + off, *len as usize);
            self.pos = 0;
            self.block_idx += 1;
        }
    }
}

/// Owning variant of [`TableIter`]: same block walk, but the handle rides
/// along as an `Arc` (see [`TableHandle::iter_from_owned`]).
pub struct OwnedTableIter {
    table: Arc<TableHandle>,
    block_idx: usize,
    block: Vec<u8>,
    pos: usize,
}

impl Iterator for OwnedTableIter {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            if self.pos < self.block.len() {
                let mut it = BlockIter {
                    data: &self.block,
                    pos: self.pos,
                };
                if let Some(e) = it.next() {
                    self.pos = it.pos;
                    return Some(e);
                }
            }
            if self.block_idx >= self.table.index.len() {
                return None;
            }
            let (off, len, _) = &self.table.index[self.block_idx];
            self.block = self
                .table
                .hier
                .load_vec(self.table.meta.base + off, *len as usize);
            self.pos = 0;
            self.block_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::pack_meta;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn setup() -> (Arc<Hierarchy>, Arc<PmemAllocator>) {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        let cap = dev.capacity();
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        (hier, Arc::new(PmemAllocator::new(0, cap)))
    }

    fn sorted_entries(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| Entry::put(format!("key{i:06}"), (n - i) as u64, format!("value-{i}")))
            .collect()
    }

    #[test]
    fn build_open_get_roundtrip() {
        let (hier, alloc) = setup();
        let entries = sorted_entries(500);
        let meta = build_table(&hier, &alloc, 1, &entries, &TableOptions::default()).unwrap();
        let t = TableHandle::open(hier, meta).unwrap();
        assert_eq!(t.get(b"key000123"), Lookup::Found(b"value-123".to_vec()));
        assert_eq!(t.get(b"key000499"), Lookup::Found(b"value-499".to_vec()));
        assert_eq!(t.get(b"nope"), Lookup::NotFound);
    }

    #[test]
    fn tombstones_surface() {
        let (hier, alloc) = setup();
        let entries = vec![Entry::delete("aaa", 9), Entry::put("bbb", 8, "live")];
        let meta = build_table(&hier, &alloc, 1, &entries, &TableOptions::default()).unwrap();
        let t = TableHandle::open(hier, meta).unwrap();
        assert_eq!(t.get(b"aaa"), Lookup::Tombstone);
        assert_eq!(t.get(b"bbb"), Lookup::Found(b"live".to_vec()));
    }

    #[test]
    fn newest_version_returned_when_versions_span_blocks() {
        let (hier, alloc) = setup();
        // Many versions of one key so they straddle several small blocks.
        let mut entries = Vec::new();
        for seq in (1..=200u64).rev() {
            entries.push(Entry {
                key: b"hot".to_vec(),
                meta: pack_meta(seq, EntryKind::Put),
                value: format!("v{seq}").into_bytes().repeat(8),
            });
        }
        let opts = TableOptions {
            block_size: 256,
            bloom_bits_per_key: 10,
        };
        let meta = build_table(&hier, &alloc, 1, &entries, &opts).unwrap();
        let t = TableHandle::open(hier, meta).unwrap();
        assert_eq!(t.get(b"hot"), Lookup::Found(b"v200".to_vec().repeat(8)));
    }

    #[test]
    fn iter_yields_all_in_order() {
        let (hier, alloc) = setup();
        let entries = sorted_entries(300);
        let opts = TableOptions {
            block_size: 512,
            bloom_bits_per_key: 10,
        };
        let meta = build_table(&hier, &alloc, 1, &entries, &opts).unwrap();
        let t = TableHandle::open(hier, meta).unwrap();
        let got: Vec<Entry> = t.iter().collect();
        assert_eq!(got, entries);
    }

    #[test]
    fn iter_from_starts_in_the_right_block() {
        let (hier, alloc) = setup();
        let entries = sorted_entries(300);
        let opts = TableOptions {
            block_size: 512,
            bloom_bits_per_key: 10,
        };
        let meta = build_table(&hier, &alloc, 1, &entries, &opts).unwrap();
        let t = TableHandle::open(hier, meta).unwrap();
        for start in [
            b"key000000".to_vec(),
            b"key000123".to_vec(),
            b"key000299".to_vec(),
        ] {
            let got: Vec<Entry> = t.iter_from(&start).filter(|e| e.key >= start).collect();
            let want: Vec<Entry> = entries.iter().filter(|e| e.key >= start).cloned().collect();
            assert_eq!(got, want, "start {:?}", String::from_utf8_lossy(&start));
        }
        assert!(t.iter_from(b"key999999").next().is_none());
    }

    #[test]
    fn meta_records_key_range_and_counts() {
        let (hier, alloc) = setup();
        let entries = sorted_entries(50);
        let meta = build_table(&hier, &alloc, 7, &entries, &TableOptions::default()).unwrap();
        assert_eq!(meta.id, 7);
        assert_eq!(meta.smallest, b"key000000");
        assert_eq!(meta.largest, b"key000049");
        assert_eq!(meta.entries, 50);
        assert_eq!(meta.max_seq, 50);
    }

    #[test]
    fn open_rejects_bad_magic() {
        let (hier, alloc) = setup();
        let entries = sorted_entries(10);
        let mut meta = build_table(&hier, &alloc, 1, &entries, &TableOptions::default()).unwrap();
        // Truncate so the footer read lands on data bytes.
        meta.len -= 8;
        assert!(matches!(
            TableHandle::open(hier, meta),
            Err(Error::Corruption(_))
        ));
    }

    #[test]
    fn reclaim_frees_space_on_drop() {
        let (hier, alloc) = setup();
        let before = alloc.free_bytes();
        let entries = sorted_entries(100);
        let meta = build_table(&hier, &alloc, 1, &entries, &TableOptions::default()).unwrap();
        assert!(alloc.free_bytes() < before);
        let t = TableHandle::open(hier, meta).unwrap();
        t.reclaim_with(alloc.clone());
        drop(t);
        assert_eq!(alloc.free_bytes(), before);
    }
}
