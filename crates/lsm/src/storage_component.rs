//! The storage component of Figure 2: leveled tables + compaction.
//!
//! Every store in this repository (LevelDB-like reference, NoveLSM/SLM-DB
//! baselines, CacheKV) sits its memory component on top of one of these.
//! Sorted runs are ingested into `L0`; background (or inline) compaction
//! keeps level sizes within policy.

use crate::compaction::{
    dedup_newest, pick_compaction, split_outputs, CompactionJob, CompactionPolicy, MergeIter,
};
use crate::kv::{Entry, Result};
use crate::memtable::Lookup;
use crate::sstable::{build_table, TableOptions};
use crate::version::{VersionEdit, VersionSet};
use cachekv_cache::Hierarchy;
use cachekv_obs::{Counter, Histogram, MetricsExport, Registry};
use cachekv_storage::PmemAllocator;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Storage component configuration.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Level sizing / trigger policy.
    pub policy: CompactionPolicy,
    /// Total number of levels (`n + 1` in the paper's Figure 2).
    pub num_levels: usize,
    /// Target size of compaction output tables.
    pub table_target_bytes: u64,
    /// SSTable encoding knobs.
    pub table_opts: TableOptions,
    /// Run compactions on a background thread (`true`, production) or
    /// inline inside `ingest` (`false`, deterministic tests).
    pub background: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            policy: CompactionPolicy::default(),
            num_levels: 4,
            table_target_bytes: 2 << 20,
            table_opts: TableOptions::default(),
            background: true,
        }
    }
}

impl StorageConfig {
    /// A small config for tests: tiny levels, inline compaction.
    pub fn test_small() -> Self {
        StorageConfig {
            policy: CompactionPolicy {
                l0_trigger: 2,
                level_base_bytes: 16 << 10,
                level_multiplier: 4,
            },
            num_levels: 4,
            table_target_bytes: 8 << 10,
            table_opts: TableOptions {
                block_size: 1024,
                bloom_bits_per_key: 10,
            },
            background: false,
        }
    }
}

/// Registered instruments for the storage component (paper's compaction /
/// write-amplification accounting).
struct LsmObs {
    registry: Registry,
    ingests: Arc<Counter>,
    ingest_entries: Arc<Counter>,
    ingest_bytes: Arc<Counter>,
    compactions: Arc<Counter>,
    compact_bytes_in: Arc<Counter>,
    compact_bytes_out: Arc<Counter>,
    compact_tables_out: Arc<Counter>,
    compaction_ns: Arc<Histogram>,
}

impl LsmObs {
    fn new() -> Self {
        let registry = Registry::new();
        LsmObs {
            ingests: registry.counter("lsm.ingests"),
            ingest_entries: registry.counter("lsm.ingest_entries"),
            ingest_bytes: registry.counter("lsm.ingest_bytes"),
            compactions: registry.counter("lsm.compactions"),
            compact_bytes_in: registry.counter("lsm.compact_bytes_in"),
            compact_bytes_out: registry.counter("lsm.compact_bytes_out"),
            compact_tables_out: registry.counter("lsm.compact_tables_out"),
            compaction_ns: registry.histogram("lsm.compaction_ns"),
            registry,
        }
    }
}

struct Shared {
    vset: VersionSet,
    cfg: StorageConfig,
    obs: LsmObs,
    /// Compactions queued or running.
    pending: Mutex<usize>,
    idle: Condvar,
    stop: AtomicBool,
    /// Largest sequence number stored in any table of the current version.
    /// Monotone: compactions only rewrite existing entries, so only
    /// [`StorageComponent::ingest`] can raise it. Readers use it to skip the
    /// level probe entirely when an in-memory hit already dominates
    /// everything persisted here.
    max_table_seq: AtomicU64,
}

/// Leveled persistent tables with compaction.
pub struct StorageComponent {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl StorageComponent {
    /// Create a fresh component; the manifest occupies
    /// `[manifest_base, manifest_base+manifest_cap)`.
    pub fn create(
        hier: Arc<Hierarchy>,
        alloc: Arc<PmemAllocator>,
        manifest_base: u64,
        manifest_cap: u64,
        cfg: StorageConfig,
    ) -> Self {
        let vset = VersionSet::create(hier, alloc, manifest_base, manifest_cap, cfg.num_levels);
        Self::from_vset(vset, cfg)
    }

    /// Recover a component from its manifest after a crash.
    pub fn recover(
        hier: Arc<Hierarchy>,
        alloc: Arc<PmemAllocator>,
        manifest_base: u64,
        manifest_cap: u64,
        cfg: StorageConfig,
    ) -> Result<Self> {
        let vset = VersionSet::recover(hier, alloc, manifest_base, manifest_cap, cfg.num_levels)?;
        Ok(Self::from_vset(vset, cfg))
    }

    fn from_vset(vset: VersionSet, cfg: StorageConfig) -> Self {
        let max_table_seq = vset
            .current()
            .levels
            .iter()
            .flatten()
            .map(|t| t.meta.max_seq)
            .max()
            .unwrap_or(0);
        let shared = Arc::new(Shared {
            vset,
            cfg,
            obs: LsmObs::new(),
            pending: Mutex::new(0),
            idle: Condvar::new(),
            stop: AtomicBool::new(false),
            max_table_seq: AtomicU64::new(max_table_seq),
        });
        let worker = if shared.cfg.background {
            let s = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("lsm-compaction".into())
                    .spawn(move || compaction_loop(&s))
                    .expect("spawn compaction thread"),
            )
        } else {
            None
        };
        StorageComponent {
            shared,
            worker: Mutex::new(worker),
        }
    }

    /// The version set (sequence numbers, snapshots).
    pub fn versions(&self) -> &VersionSet {
        &self.shared.vset
    }

    /// Ingest one sorted run (a flushed memory component) as an L0 table.
    pub fn ingest(&self, entries: &[Entry]) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let s = &self.shared;
        let id = s.vset.new_table_id();
        let meta = build_table(
            s.vset.hierarchy(),
            s.vset.allocator(),
            id,
            entries,
            &s.cfg.table_opts,
        )?;
        s.obs.ingests.inc();
        s.obs.ingest_entries.add(entries.len() as u64);
        s.obs.ingest_bytes.add(meta.len);
        s.max_table_seq.fetch_max(meta.max_seq, Ordering::SeqCst);
        s.vset
            .apply(vec![VersionEdit::AddTable { level: 0, meta }])?;
        self.maybe_compact();
        Ok(())
    }

    /// Begin a streaming L0 ingest: push entries (globally sorted across
    /// pushes) in arbitrary-sized batches, cut tables at `target_bytes`,
    /// and publish every table in a single version edit at
    /// [`IngestStream::finish`]. Lets a caller iterating a large source
    /// (e.g. an index dump walking segment-by-segment) avoid materializing
    /// the whole run in one `Vec`.
    pub fn ingest_stream(&self, target_bytes: u64) -> IngestStream<'_> {
        IngestStream {
            sc: self,
            target_bytes: target_bytes.max(1),
            buf: Vec::new(),
            buf_bytes: 0,
            edits: Vec::new(),
            max_seq: 0,
            entries: 0,
            bytes: 0,
        }
    }

    /// Largest sequence number persisted in any table. An in-memory hit
    /// whose sequence exceeds this dominates every entry the levels could
    /// return, so callers may skip [`StorageComponent::get_versioned`]. The
    /// counter is raised *before* the ingested table becomes visible, so a
    /// stale read here is always conservative (it only forces a probe).
    pub fn max_persisted_seq(&self) -> u64 {
        self.shared.max_table_seq.load(Ordering::SeqCst)
    }

    /// Probe the levels for `key`, newest first.
    pub fn get(&self, key: &[u8]) -> Lookup {
        let v = self.shared.vset.current();
        // L0: overlapping tables, newest (latest-flushed) first.
        for t in v.levels[0].iter().rev() {
            match t.get(key) {
                Lookup::NotFound => continue,
                hit => return hit,
            }
        }
        for level in v.levels[1..].iter() {
            // Non-overlapping: binary search by key range.
            let i = level.partition_point(|t| t.meta.largest.as_slice() < key);
            if i < level.len() && level[i].meta.smallest.as_slice() <= key {
                match level[i].get(key) {
                    Lookup::NotFound => {}
                    hit => return hit,
                }
            }
        }
        Lookup::NotFound
    }

    /// Probe the levels and return the newest `(meta, value)` for `key`.
    /// Within L0 versions may be spread over overlapping tables, so the
    /// maximum meta wins; deeper levels are strictly older.
    pub fn get_versioned(&self, key: &[u8]) -> Option<(u64, Vec<u8>)> {
        let v = self.shared.vset.current();
        let mut best: Option<(u64, Vec<u8>)> = None;
        for t in v.levels[0].iter() {
            if let Some((meta, value)) = t.get_versioned(key) {
                if best.as_ref().is_none_or(|(m, _)| meta > *m) {
                    best = Some((meta, value));
                }
            }
        }
        if best.is_some() {
            return best;
        }
        for level in v.levels[1..].iter() {
            let i = level.partition_point(|t| t.meta.largest.as_slice() < key);
            if i < level.len() && level[i].meta.smallest.as_slice() <= key {
                if let Some(hit) = level[i].get_versioned(key) {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// Kick (or run) compaction if policy demands it.
    pub fn maybe_compact(&self) {
        let s = &self.shared;
        if s.cfg.background {
            let mut pending = s.pending.lock();
            *pending += 1;
            drop(pending);
            s.idle.notify_all();
        } else {
            while let Some(job) = pick_compaction(&s.vset.current(), &s.cfg.policy) {
                // After a simulated power failure writes are blackholed, so
                // freshly "written" tables read back as garbage; a powered
                // off machine compacts nothing.
                if s.vset.hierarchy().fault_tripped() {
                    break;
                }
                if let Err(e) = run_compaction(s, job) {
                    if s.vset.hierarchy().fault_tripped() {
                        break;
                    }
                    panic!("inline compaction failed: {e:?}");
                }
            }
        }
    }

    /// Block until no compaction work remains.
    pub fn wait_idle(&self) {
        let s = &self.shared;
        if !s.cfg.background {
            return;
        }
        let mut pending = s.pending.lock();
        while *pending > 0 {
            s.idle.wait(&mut pending);
        }
    }

    /// Bytes held at each level (reporting / tests).
    pub fn level_bytes(&self) -> Vec<u64> {
        let v = self.shared.vset.current();
        (0..v.levels.len()).map(|i| v.level_bytes(i)).collect()
    }

    /// Table count at each level.
    pub fn level_tables(&self) -> Vec<usize> {
        let v = self.shared.vset.current();
        v.levels.iter().map(|l| l.len()).collect()
    }

    /// Export the component's metrics: ingest/compaction counters and
    /// histograms from the registry, plus per-level table/byte gauges
    /// sampled from the current version.
    pub fn export_metrics(&self) -> MetricsExport {
        let mut out = self.shared.obs.registry.export();
        let v = self.shared.vset.current();
        for (i, level) in v.levels.iter().enumerate() {
            out.insert_gauge(&format!("lsm.l{i}.tables"), level.len() as i64);
            out.insert_gauge(&format!("lsm.l{i}.bytes"), v.level_bytes(i) as i64);
        }
        out
    }
}

/// An in-progress streaming ingest (see [`StorageComponent::ingest_stream`]).
/// Entries must arrive in internal key order across all pushes. Dropping
/// the stream without `finish` abandons any uncut buffer *and* any already
/// built tables (their edits are never applied, so they stay invisible).
pub struct IngestStream<'a> {
    sc: &'a StorageComponent,
    target_bytes: u64,
    buf: Vec<Entry>,
    buf_bytes: u64,
    edits: Vec<VersionEdit>,
    max_seq: u64,
    entries: u64,
    bytes: u64,
}

impl IngestStream<'_> {
    /// Add one entry; cuts a table when the buffered bytes reach target.
    pub fn push(&mut self, e: Entry) -> Result<()> {
        self.buf_bytes += (e.key.len() + e.value.len() + 16) as u64;
        self.buf.push(e);
        if self.buf_bytes >= self.target_bytes {
            self.cut()?;
        }
        Ok(())
    }

    fn cut(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let s = &self.sc.shared;
        let id = s.vset.new_table_id();
        let meta = build_table(
            s.vset.hierarchy(),
            s.vset.allocator(),
            id,
            &self.buf,
            &s.cfg.table_opts,
        )?;
        self.entries += self.buf.len() as u64;
        self.bytes += meta.len;
        self.max_seq = self.max_seq.max(meta.max_seq);
        self.edits.push(VersionEdit::AddTable { level: 0, meta });
        self.buf.clear();
        self.buf_bytes = 0;
        Ok(())
    }

    /// Cut the remainder, publish every table in one version edit, and
    /// kick compaction. Returns how many tables were added. The sequence
    /// counter is raised *before* the tables become visible (same ordering
    /// contract as [`StorageComponent::ingest`]).
    pub fn finish(mut self) -> Result<usize> {
        self.cut()?;
        if self.edits.is_empty() {
            return Ok(0);
        }
        let s = &self.sc.shared;
        s.obs.ingests.inc();
        s.obs.ingest_entries.add(self.entries);
        s.obs.ingest_bytes.add(self.bytes);
        s.max_table_seq.fetch_max(self.max_seq, Ordering::SeqCst);
        let n = self.edits.len();
        s.vset.apply(std::mem::take(&mut self.edits))?;
        self.sc.maybe_compact();
        Ok(n)
    }
}

impl Drop for StorageComponent {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.idle.notify_all();
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

fn compaction_loop(s: &Shared) {
    loop {
        {
            let mut pending = s.pending.lock();
            while *pending == 0 && !s.stop.load(Ordering::SeqCst) {
                s.idle.wait(&mut pending);
            }
            if s.stop.load(Ordering::SeqCst) {
                return;
            }
        }
        // Drain: run until the tree satisfies policy, then clear pending.
        while let Some(job) = pick_compaction(&s.vset.current(), &s.cfg.policy) {
            if run_compaction(s, job).is_err() {
                break;
            }
            if s.stop.load(Ordering::SeqCst) {
                return;
            }
        }
        let mut pending = s.pending.lock();
        *pending = 0;
        s.idle.notify_all();
    }
}

fn run_compaction(s: &Shared, job: CompactionJob) -> Result<()> {
    let t0 = Instant::now();
    s.obs.compact_bytes_in.add(job.input_bytes());
    let out_level = job.level + 1;
    let bottom = out_level == s.cfg.num_levels - 1;
    let iters: Vec<_> = job
        .inputs_lo
        .iter()
        .chain(&job.inputs_hi)
        .map(|t| t.iter().collect::<Vec<Entry>>().into_iter())
        .collect();
    let deduped = dedup_newest(MergeIter::new(iters), bottom);
    let mut edits = Vec::new();
    for chunk in split_outputs(deduped, s.cfg.table_target_bytes) {
        let id = s.vset.new_table_id();
        let meta = build_table(
            s.vset.hierarchy(),
            s.vset.allocator(),
            id,
            &chunk,
            &s.cfg.table_opts,
        )?;
        s.obs.compact_bytes_out.add(meta.len);
        s.obs.compact_tables_out.inc();
        edits.push(VersionEdit::AddTable {
            level: out_level as u32,
            meta,
        });
    }
    for t in &job.inputs_lo {
        edits.push(VersionEdit::RemoveTable {
            level: job.level as u32,
            id: t.meta.id,
        });
    }
    for t in &job.inputs_hi {
        edits.push(VersionEdit::RemoveTable {
            level: out_level as u32,
            id: t.meta.id,
        });
    }
    let out = s.vset.apply(edits);
    if out.is_ok() {
        s.obs.compactions.inc();
        s.obs
            .compaction_ns
            .record((t0.elapsed().as_nanos() as u64).max(1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn setup(background: bool) -> StorageComponent {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        let cap = dev.capacity();
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        let alloc = Arc::new(PmemAllocator::new(1 << 20, cap - (1 << 20)));
        let mut cfg = StorageConfig::test_small();
        cfg.background = background;
        StorageComponent::create(hier, alloc, 0, 1 << 20, cfg)
    }

    fn run(lo: usize, hi: usize, seq_base: u64) -> Vec<Entry> {
        (lo..hi)
            .map(|i| {
                Entry::put(
                    format!("k{i:06}"),
                    seq_base + i as u64,
                    format!("v{seq_base}-{i}"),
                )
            })
            .collect()
    }

    #[test]
    fn ingest_then_get() {
        let sc = setup(false);
        sc.ingest(&run(0, 100, 1)).unwrap();
        assert_eq!(sc.get(b"k000042"), Lookup::Found(b"v1-42".to_vec()));
        assert_eq!(sc.get(b"missing"), Lookup::NotFound);
    }

    #[test]
    fn newer_run_shadows_older() {
        let sc = setup(false);
        sc.ingest(&run(0, 50, 1_000)).unwrap();
        sc.ingest(&run(0, 50, 2_000)).unwrap();
        assert_eq!(sc.get(b"k000010"), Lookup::Found(b"v2000-10".to_vec()));
    }

    #[test]
    fn compaction_moves_data_down_and_preserves_reads() {
        let sc = setup(false);
        for round in 0..8u64 {
            sc.ingest(&run(0, 400, round * 1_000)).unwrap();
        }
        let tables = sc.level_tables();
        assert!(tables[0] < 2, "L0 drained by compaction: {tables:?}");
        assert!(
            tables.iter().skip(1).any(|&n| n > 0),
            "data moved deeper: {tables:?}"
        );
        // Latest round wins for every key.
        for i in (0..400).step_by(37) {
            let key = format!("k{i:06}");
            assert_eq!(
                sc.get(key.as_bytes()),
                Lookup::Found(format!("v7000-{i}").into_bytes())
            );
        }
    }

    #[test]
    fn tombstones_disappear_at_bottom_level() {
        let sc = setup(false);
        sc.ingest(&run(0, 100, 1)).unwrap();
        let dels: Vec<Entry> = (0..100)
            .map(|i| Entry::delete(format!("k{i:06}"), 1_000 + i as u64))
            .collect();
        sc.ingest(&dels).unwrap();
        // Force everything down with more churn.
        for round in 2..10u64 {
            sc.ingest(&run(500, 600, round * 1_000)).unwrap();
        }
        // The delete must win over the old value: either the tombstone is
        // still visible, or bottom-level compaction dropped both.
        let got = sc.get(b"k000050");
        assert!(
            matches!(got, Lookup::Tombstone | Lookup::NotFound),
            "deleted key resurfaced: {got:?}"
        );
    }

    #[test]
    fn background_compaction_quiesces() {
        let sc = setup(true);
        for round in 0..6u64 {
            sc.ingest(&run(0, 300, round * 1_000)).unwrap();
        }
        sc.wait_idle();
        assert!(sc.level_tables()[0] < 2);
        assert_eq!(sc.get(b"k000000"), Lookup::Found(b"v5000-0".to_vec()));
    }

    #[test]
    fn empty_ingest_is_noop() {
        let sc = setup(false);
        sc.ingest(&[]).unwrap();
        assert_eq!(sc.level_tables().iter().sum::<usize>(), 0);
    }

    #[test]
    fn metrics_account_for_ingest_and_compaction() {
        let sc = setup(false);
        for round in 0..8u64 {
            sc.ingest(&run(0, 400, round * 1_000)).unwrap();
        }
        let m = sc.export_metrics();
        assert_eq!(m.counters["lsm.ingests"], 8);
        assert_eq!(m.counters["lsm.ingest_entries"], 8 * 400);
        assert!(m.counters["lsm.ingest_bytes"] > 0);
        assert!(m.counters["lsm.compactions"] > 0);
        assert!(m.counters["lsm.compact_bytes_in"] > 0);
        assert!(m.counters["lsm.compact_bytes_out"] > 0);
        assert_eq!(
            m.histograms["lsm.compaction_ns"].count,
            m.counters["lsm.compactions"]
        );
        // Per-level gauges match the live view.
        for (i, &n) in sc.level_tables().iter().enumerate() {
            assert_eq!(m.gauges[&format!("lsm.l{i}.tables")], n as i64);
        }
    }
}
