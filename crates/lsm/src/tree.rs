//! A classic LevelDB-like LSM engine: the reference point every variant in
//! the paper diverges from.
//!
//! Write path (Figure 2): ① request → ② WAL append (durable) → ③ insert
//! into the shared, mutex-guarded MemTable + its skiplist → ④ rotate to an
//! Immutable MemTable when full → ⑤ flush to `L0` of the storage component.
//! The MemTable lives in DRAM; durability before flush comes from the WAL in
//! persistent memory.

use crate::kv::{Entry, EntryKind, Error, KvStore, Result};
use crate::memspace::DramSpace;
use crate::memtable::{Lookup, MemTable};
use crate::storage_component::{StorageComponent, StorageConfig};
use cachekv_cache::Hierarchy;
use cachekv_storage::{PmemAllocator, PmemObject, WalReader, WalWriter};
use parking_lot::Mutex;
use std::sync::Arc;

/// Fixed layout of the persistent address space used by the engines in this
/// repository.
#[derive(Debug, Clone, Copy)]
pub struct PmemLayout {
    /// Manifest region.
    pub manifest_base: u64,
    pub manifest_cap: u64,
    /// WAL region.
    pub wal_base: u64,
    pub wal_cap: u64,
    /// General allocation arena (tables, persistent MemTables, pools).
    pub arena_base: u64,
    pub arena_cap: u64,
}

impl PmemLayout {
    /// Carve a device of `capacity` bytes into manifest / WAL / arena.
    pub fn standard(capacity: u64) -> Self {
        let manifest_cap = 1 << 20;
        let wal_cap = 16 << 20;
        assert!(
            capacity > manifest_cap + wal_cap + (1 << 20),
            "device too small"
        );
        PmemLayout {
            manifest_base: 0,
            manifest_cap,
            wal_base: manifest_cap,
            wal_cap,
            arena_base: manifest_cap + wal_cap,
            arena_cap: capacity - manifest_cap - wal_cap,
        }
    }
}

/// Configuration of the reference engine.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// MemTable rotation threshold (8 MiB, as in LevelDB-era systems).
    pub memtable_bytes: u64,
    /// Storage component configuration.
    pub storage: StorageConfig,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 8 << 20,
            storage: StorageConfig::default(),
        }
    }
}

impl LsmConfig {
    /// Small config for tests.
    pub fn test_small() -> Self {
        LsmConfig {
            memtable_bytes: 32 << 10,
            storage: StorageConfig::test_small(),
        }
    }
}

/// WAL record: `[kind u8][seq u64][klen u16][key][value]`.
fn encode_wal(kind: EntryKind, seq: u64, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(11 + key.len() + value.len());
    b.push(matches!(kind, EntryKind::Put) as u8);
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(&(key.len() as u16).to_le_bytes());
    b.extend_from_slice(key);
    b.extend_from_slice(value);
    b
}

fn decode_wal(b: &[u8]) -> Result<(EntryKind, u64, Vec<u8>, Vec<u8>)> {
    if b.len() < 11 {
        return Err(Error::Corruption("WAL record truncated".into()));
    }
    let kind = if b[0] == 1 {
        EntryKind::Put
    } else {
        EntryKind::Delete
    };
    let seq = u64::from_le_bytes(b[1..9].try_into().unwrap());
    let klen = u16::from_le_bytes(b[9..11].try_into().unwrap()) as usize;
    if b.len() < 11 + klen {
        return Err(Error::Corruption("WAL record truncated".into()));
    }
    Ok((
        kind,
        seq,
        b[11..11 + klen].to_vec(),
        b[11 + klen..].to_vec(),
    ))
}

struct MemState {
    mem: MemTable<DramSpace>,
    wal: WalWriter,
}

/// The reference LevelDB-like engine.
pub struct LsmTree {
    hier: Arc<Hierarchy>,
    layout: PmemLayout,
    cfg: LsmConfig,
    mem: Mutex<MemState>,
    storage: StorageComponent,
}

impl LsmTree {
    /// Create a fresh store over `hier` using the standard layout.
    pub fn create(hier: Arc<Hierarchy>, cfg: LsmConfig) -> Self {
        let layout = PmemLayout::standard(hier.device().capacity());
        let alloc = Arc::new(PmemAllocator::new(layout.arena_base, layout.arena_cap));
        let storage = StorageComponent::create(
            hier.clone(),
            alloc,
            layout.manifest_base,
            layout.manifest_cap,
            cfg.storage.clone(),
        );
        let mem = MemState {
            mem: Self::fresh_memtable(&cfg),
            wal: Self::fresh_wal(&hier, &layout),
        };
        LsmTree {
            hier,
            layout,
            cfg,
            mem: Mutex::new(mem),
            storage,
        }
    }

    /// Recover after a crash: manifest replay rebuilds the levels, WAL
    /// replay rebuilds the MemTable.
    pub fn recover(hier: Arc<Hierarchy>, cfg: LsmConfig) -> Result<Self> {
        let layout = PmemLayout::standard(hier.device().capacity());
        let alloc = Arc::new(PmemAllocator::new(layout.arena_base, layout.arena_cap));
        let storage = StorageComponent::recover(
            hier.clone(),
            alloc,
            layout.manifest_base,
            layout.manifest_cap,
            cfg.storage.clone(),
        )?;
        // Replay the WAL region into a fresh MemTable.
        let scan = Arc::new(PmemObject::open(
            hier.clone(),
            layout.wal_base,
            layout.wal_cap,
            layout.wal_cap,
        ));
        let mut reader = WalReader::new(scan);
        let mut mem = Self::fresh_memtable(&cfg);
        let mut max_seq = 0u64;
        for rec in reader.by_ref() {
            let (kind, seq, key, value) = decode_wal(&rec)?;
            max_seq = max_seq.max(seq);
            match kind {
                EntryKind::Put => mem.put(&key, seq, &value)?,
                EntryKind::Delete => mem.delete(&key, seq)?,
            }
        }
        storage.versions().bump_seq_to(max_seq);
        let valid = reader.pos();
        let wal_obj = Arc::new(PmemObject::open(
            hier.clone(),
            layout.wal_base,
            layout.wal_cap,
            valid,
        ));
        let mem_state = MemState {
            mem,
            wal: WalWriter::new(wal_obj),
        };
        Ok(LsmTree {
            hier,
            layout,
            cfg,
            mem: Mutex::new(mem_state),
            storage,
        })
    }

    fn fresh_memtable(cfg: &LsmConfig) -> MemTable<DramSpace> {
        // Arena sized above the rotation budget so inserts never hit the
        // arena wall before `is_full` fires.
        MemTable::new(
            DramSpace::new((cfg.memtable_bytes * 2) as usize),
            cfg.memtable_bytes,
        )
    }

    fn fresh_wal(hier: &Arc<Hierarchy>, layout: &PmemLayout) -> WalWriter {
        // Invalidate the first record header so stale records do not replay.
        hier.store(layout.wal_base, &[0u8; 8]);
        hier.clwb(layout.wal_base, 8);
        hier.sfence();
        WalWriter::new(Arc::new(PmemObject::create(
            hier.clone(),
            layout.wal_base,
            layout.wal_cap,
        )))
    }

    fn write(&self, key: &[u8], value: &[u8], kind: EntryKind) -> Result<()> {
        let mut st = self.mem.lock();
        let seq = self.storage.versions().next_seq();
        st.wal.append(&encode_wal(kind, seq, key, value));
        match kind {
            EntryKind::Put => st.mem.put(key, seq, value)?,
            EntryKind::Delete => st.mem.delete(key, seq)?,
        }
        if st.mem.is_full() {
            // ④ rotate + ⑤ flush (synchronously; the paper's variants move
            // this off the critical path in their own ways).
            let imm = std::mem::replace(&mut st.mem, Self::fresh_memtable(&self.cfg));
            let entries: Vec<Entry> = imm.entries();
            self.storage.ingest(&entries)?;
            st.wal = Self::fresh_wal(&self.hier, &self.layout);
        }
        Ok(())
    }

    /// The storage component (for tests and reporting).
    pub fn storage(&self) -> &StorageComponent {
        &self.storage
    }

    /// The memory hierarchy.
    pub fn hierarchy(&self) -> &Arc<Hierarchy> {
        &self.hier
    }
}

impl KvStore for LsmTree {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, EntryKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", EntryKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        {
            let st = self.mem.lock();
            match st.mem.get(key) {
                Lookup::Found(v) => return Ok(Some(v)),
                Lookup::Tombstone => return Ok(None),
                Lookup::NotFound => {}
            }
        }
        match self.storage.get(key) {
            Lookup::Found(v) => Ok(Some(v)),
            Lookup::Tombstone | Lookup::NotFound => Ok(None),
        }
    }

    fn name(&self) -> &'static str {
        "LevelDB-like"
    }

    fn quiesce(&self) {
        self.storage.wait_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn hier() -> Arc<Hierarchy> {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let db = LsmTree::create(hier(), LsmConfig::test_small());
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()));
        db.delete(b"alpha").unwrap();
        assert_eq!(db.get(b"alpha").unwrap(), None);
        assert_eq!(db.get(b"beta").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn rotation_pushes_data_to_storage_and_reads_still_work() {
        let db = LsmTree::create(hier(), LsmConfig::test_small());
        for i in 0..3000u32 {
            db.put(format!("key{i:06}").as_bytes(), &[7u8; 32]).unwrap();
        }
        db.quiesce();
        assert!(
            db.storage().level_tables().iter().sum::<usize>() > 0,
            "flushes happened"
        );
        for i in (0..3000u32).step_by(191) {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(vec![7u8; 32])
            );
        }
    }

    #[test]
    fn overwrites_return_latest() {
        let db = LsmTree::create(hier(), LsmConfig::test_small());
        for round in 0..5u32 {
            for i in 0..500u32 {
                db.put(
                    format!("k{i:04}").as_bytes(),
                    format!("r{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        assert_eq!(db.get(b"k0123").unwrap(), Some(b"r4".to_vec()));
    }

    #[test]
    fn crash_recovery_replays_wal_and_manifest() {
        let h = hier();
        {
            let db = LsmTree::create(h.clone(), LsmConfig::test_small());
            for i in 0..2000u32 {
                db.put(
                    format!("key{i:06}").as_bytes(),
                    format!("val{i}").as_bytes(),
                )
                .unwrap();
            }
            db.quiesce();
        }
        h.power_fail();
        let db = LsmTree::recover(h, LsmConfig::test_small()).unwrap();
        for i in (0..2000u32).step_by(97) {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(format!("val{i}").into_bytes()),
                "key{i} lost in crash"
            );
        }
        // New writes keep working with monotone sequence numbers.
        db.put(b"post-crash", b"ok").unwrap();
        assert_eq!(db.get(b"post-crash").unwrap(), Some(b"ok".to_vec()));
    }

    #[test]
    fn adr_crash_loses_nothing_thanks_to_wal() {
        // Even under ADR (volatile caches), the WAL's clwb+fence discipline
        // makes committed writes durable.
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled()
                .with_domain(cachekv_pmem::PersistDomain::Adr)
                .with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        let h = Arc::new(Hierarchy::new(dev, CacheConfig::paper()));
        {
            let db = LsmTree::create(h.clone(), LsmConfig::test_small());
            for i in 0..200u32 {
                db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
            }
        }
        h.power_fail();
        let db = LsmTree::recover(h, LsmConfig::test_small()).unwrap();
        for i in 0..200u32 {
            assert_eq!(
                db.get(format!("k{i:03}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = Arc::new(LsmTree::create(hier(), LsmConfig::test_small()));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let k = format!("t{t}-k{i:04}");
                    db.put(k.as_bytes(), k.as_bytes()).unwrap();
                    if i % 7 == 0 {
                        let _ = db.get(k.as_bytes()).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        db.quiesce();
        for t in 0..4u32 {
            let k = format!("t{t}-k0499");
            assert_eq!(db.get(k.as_bytes()).unwrap(), Some(k.clone().into_bytes()));
        }
    }
}
