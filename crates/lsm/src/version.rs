//! Leveled table organization, version edits, and the persistent manifest.
//!
//! `L0` holds partially-sorted (mutually overlapping) tables in flush order;
//! `L1+` hold fully-sorted, non-overlapping runs — the classic structure of
//! the paper's Figure 2. Every structural change is a [`VersionEdit`]
//! appended to a manifest log before it takes effect, so the level structure
//! is rebuildable after a crash.

use crate::kv::{Error, Result};
use crate::sstable::{TableHandle, TableMeta};
use cachekv_cache::Hierarchy;
use cachekv_storage::{PmemAllocator, PmemObject, WalReader, WalWriter};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One immutable snapshot of the level structure.
#[derive(Default)]
pub struct Version {
    /// `levels[0]` ordered oldest-first (search newest-first by reversing);
    /// `levels[1..]` sorted by smallest key, non-overlapping.
    pub levels: Vec<Vec<Arc<TableHandle>>>,
}

impl Version {
    /// Create an empty version with `n` levels.
    pub fn empty(n: usize) -> Self {
        Version {
            levels: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Total bytes of tables in `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|t| t.meta.len).sum()
    }

    /// Total number of tables.
    pub fn table_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Tables in `level` overlapping the user-key range `[lo, hi]`.
    pub fn overlapping(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<TableHandle>> {
        self.levels[level]
            .iter()
            .filter(|t| t.meta.smallest.as_slice() <= hi && t.meta.largest.as_slice() >= lo)
            .cloned()
            .collect()
    }
}

/// A structural change, durably logged before application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionEdit {
    /// A new table enters `level`.
    AddTable { level: u32, meta: TableMeta },
    /// Table `id` leaves `level` (space reclaimed when last reader drops).
    RemoveTable { level: u32, id: u64 },
}

impl VersionEdit {
    /// Encode for the manifest log.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            VersionEdit::AddTable { level, meta } => {
                b.push(1);
                b.extend_from_slice(&level.to_le_bytes());
                b.extend_from_slice(&meta.id.to_le_bytes());
                b.extend_from_slice(&meta.base.to_le_bytes());
                b.extend_from_slice(&meta.len.to_le_bytes());
                b.extend_from_slice(&meta.entries.to_le_bytes());
                b.extend_from_slice(&meta.max_seq.to_le_bytes());
                b.extend_from_slice(&(meta.smallest.len() as u16).to_le_bytes());
                b.extend_from_slice(&meta.smallest);
                b.extend_from_slice(&(meta.largest.len() as u16).to_le_bytes());
                b.extend_from_slice(&meta.largest);
            }
            VersionEdit::RemoveTable { level, id } => {
                b.push(2);
                b.extend_from_slice(&level.to_le_bytes());
                b.extend_from_slice(&id.to_le_bytes());
            }
        }
        b
    }

    /// Decode a manifest record.
    pub fn decode(b: &[u8]) -> Result<Self> {
        let bad = || Error::Corruption("manifest record truncated".into());
        if b.is_empty() {
            return Err(bad());
        }
        match b[0] {
            1 => {
                if b.len() < 47 {
                    return Err(bad());
                }
                let level = u32::from_le_bytes(b[1..5].try_into().unwrap());
                let id = u64::from_le_bytes(b[5..13].try_into().unwrap());
                let base = u64::from_le_bytes(b[13..21].try_into().unwrap());
                let len = u64::from_le_bytes(b[21..29].try_into().unwrap());
                let entries = u64::from_le_bytes(b[29..37].try_into().unwrap());
                let max_seq = u64::from_le_bytes(b[37..45].try_into().unwrap());
                let klen = u16::from_le_bytes(b[45..47].try_into().unwrap()) as usize;
                if b.len() < 47 + klen + 2 {
                    return Err(bad());
                }
                let smallest = b[47..47 + klen].to_vec();
                let p = 47 + klen;
                let llen = u16::from_le_bytes(b[p..p + 2].try_into().unwrap()) as usize;
                if b.len() < p + 2 + llen {
                    return Err(bad());
                }
                let largest = b[p + 2..p + 2 + llen].to_vec();
                Ok(VersionEdit::AddTable {
                    level,
                    meta: TableMeta {
                        id,
                        base,
                        len,
                        smallest,
                        largest,
                        entries,
                        max_seq,
                    },
                })
            }
            2 => {
                if b.len() < 13 {
                    return Err(bad());
                }
                let level = u32::from_le_bytes(b[1..5].try_into().unwrap());
                let id = u64::from_le_bytes(b[5..13].try_into().unwrap());
                Ok(VersionEdit::RemoveTable { level, id })
            }
            t => Err(Error::Corruption(format!(
                "unknown manifest record type {t}"
            ))),
        }
    }
}

/// Owns the current [`Version`], the manifest, and table-id/seq allocation.
pub struct VersionSet {
    hier: Arc<Hierarchy>,
    alloc: Arc<PmemAllocator>,
    current: RwLock<Arc<Version>>,
    manifest: WalWriter,
    next_table_id: AtomicU64,
    last_seq: AtomicU64,
    num_levels: usize,
}

impl VersionSet {
    /// Create a fresh set whose manifest lives in `[manifest_base,
    /// manifest_base+manifest_cap)`.
    pub fn create(
        hier: Arc<Hierarchy>,
        alloc: Arc<PmemAllocator>,
        manifest_base: u64,
        manifest_cap: u64,
        num_levels: usize,
    ) -> Self {
        let obj = Arc::new(PmemObject::create(
            hier.clone(),
            manifest_base,
            manifest_cap,
        ));
        VersionSet {
            hier,
            alloc,
            current: RwLock::new(Arc::new(Version::empty(num_levels))),
            manifest: WalWriter::new(obj),
            next_table_id: AtomicU64::new(1),
            last_seq: AtomicU64::new(0),
            num_levels,
        }
    }

    /// Rebuild the set after a crash by replaying the manifest region. Live
    /// table regions are re-reserved from `alloc`.
    pub fn recover(
        hier: Arc<Hierarchy>,
        alloc: Arc<PmemAllocator>,
        manifest_base: u64,
        manifest_cap: u64,
        num_levels: usize,
    ) -> Result<Self> {
        // Scan the whole manifest region; CRCs delimit the valid prefix.
        let scan = Arc::new(PmemObject::open(
            hier.clone(),
            manifest_base,
            manifest_cap,
            manifest_cap,
        ));
        let mut reader = WalReader::new(scan);
        let mut live: BTreeMap<u64, (u32, TableMeta)> = BTreeMap::new();
        let mut max_id = 0u64;
        let mut valid_len = 0u64;
        while let Some(rec) = reader.next() {
            let edit = VersionEdit::decode(&rec)?;
            match edit {
                VersionEdit::AddTable { level, meta } => {
                    max_id = max_id.max(meta.id);
                    live.insert(meta.id, (level, meta));
                }
                VersionEdit::RemoveTable { id, .. } => {
                    live.remove(&id);
                }
            }
            valid_len = reader.pos();
        }
        let mut version = Version::empty(num_levels);
        let mut last_seq = 0u64;
        for (_, (level, meta)) in live {
            alloc.reserve(meta.base, meta.len);
            last_seq = last_seq.max(meta.max_seq);
            let handle = Arc::new(TableHandle::open(hier.clone(), meta)?);
            version.levels[level as usize].push(handle);
        }
        for level in version.levels[1..].iter_mut() {
            level.sort_by(|a, b| a.meta.smallest.cmp(&b.meta.smallest));
        }
        // L0 recency order: older tables have smaller ids.
        version.levels[0].sort_by_key(|t| t.meta.id);
        let writer_obj = Arc::new(PmemObject::open(
            hier.clone(),
            manifest_base,
            manifest_cap,
            valid_len,
        ));
        Ok(VersionSet {
            hier,
            alloc,
            current: RwLock::new(Arc::new(version)),
            manifest: WalWriter::new(writer_obj),
            next_table_id: AtomicU64::new(max_id + 1),
            last_seq: AtomicU64::new(last_seq),
            num_levels,
        })
    }

    /// The current version snapshot.
    pub fn current(&self) -> Arc<Version> {
        self.current.read().clone()
    }

    /// Number of configured levels.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Allocate a fresh table id.
    pub fn new_table_id(&self) -> u64 {
        self.next_table_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate the next sequence number.
    pub fn next_seq(&self) -> u64 {
        self.last_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Highest sequence number issued (or observed during recovery).
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Record that sequence numbers up to `seq` are in use (WAL replay).
    pub fn bump_seq_to(&self, seq: u64) {
        self.last_seq.fetch_max(seq, Ordering::Relaxed);
    }

    /// Durably log `edits`, then apply them to produce a new current
    /// version. Removed tables are handed back to the allocator once their
    /// last reader drops.
    pub fn apply(&self, edits: Vec<VersionEdit>) -> Result<()> {
        for e in &edits {
            self.manifest.append(&e.encode());
        }
        let mut cur = self.current.write();
        let mut next = Version::empty(self.num_levels);
        for (i, lvl) in cur.levels.iter().enumerate() {
            next.levels[i] = lvl.clone();
        }
        for e in edits {
            match e {
                VersionEdit::AddTable { level, meta } => {
                    let handle = Arc::new(TableHandle::open(self.hier.clone(), meta)?);
                    next.levels[level as usize].push(handle);
                }
                VersionEdit::RemoveTable { level, id } => {
                    let lvl = &mut next.levels[level as usize];
                    if let Some(pos) = lvl.iter().position(|t| t.meta.id == id) {
                        let t = lvl.remove(pos);
                        t.reclaim_with(self.alloc.clone());
                    }
                }
            }
        }
        for level in next.levels[1..].iter_mut() {
            level.sort_by(|a, b| a.meta.smallest.cmp(&b.meta.smallest));
        }
        *cur = Arc::new(next);
        Ok(())
    }

    /// The hierarchy tables are opened against.
    pub fn hierarchy(&self) -> &Arc<Hierarchy> {
        &self.hier
    }

    /// The allocator table space comes from.
    pub fn allocator(&self) -> &Arc<PmemAllocator> {
        &self.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Entry;
    use crate::sstable::{build_table, TableOptions};
    use cachekv_cache::CacheConfig;
    use cachekv_pmem::{PmemConfig, PmemDevice};

    fn setup() -> (Arc<Hierarchy>, Arc<PmemAllocator>) {
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(cachekv_pmem::LatencyConfig::zero()),
        ));
        let cap = dev.capacity();
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        // Reserve the manifest region [0, 1 MiB) outside the allocator.
        (hier, Arc::new(PmemAllocator::new(1 << 20, cap - (1 << 20))))
    }

    fn table(
        hier: &Arc<Hierarchy>,
        alloc: &Arc<PmemAllocator>,
        id: u64,
        lo: usize,
        hi: usize,
    ) -> TableMeta {
        let entries: Vec<Entry> = (lo..hi)
            .map(|i| Entry::put(format!("k{i:05}"), i as u64 + 1, "v"))
            .collect();
        build_table(hier, alloc, id, &entries, &TableOptions::default()).unwrap()
    }

    #[test]
    fn edit_encode_decode_roundtrip() {
        let meta = TableMeta {
            id: 3,
            base: 4096,
            len: 1234,
            smallest: b"aaa".to_vec(),
            largest: b"zzz".to_vec(),
            entries: 10,
            max_seq: 99,
        };
        let add = VersionEdit::AddTable { level: 2, meta };
        assert_eq!(VersionEdit::decode(&add.encode()).unwrap(), add);
        let rm = VersionEdit::RemoveTable { level: 1, id: 7 };
        assert_eq!(VersionEdit::decode(&rm.encode()).unwrap(), rm);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(VersionEdit::decode(&[]).is_err());
        assert!(VersionEdit::decode(&[9, 0, 0]).is_err());
        assert!(VersionEdit::decode(&[1, 0]).is_err());
    }

    #[test]
    fn apply_add_and_remove() {
        let (hier, alloc) = setup();
        let vs = VersionSet::create(hier.clone(), alloc.clone(), 0, 1 << 20, 4);
        let m1 = table(&hier, &alloc, vs.new_table_id(), 0, 100);
        let id1 = m1.id;
        vs.apply(vec![VersionEdit::AddTable { level: 0, meta: m1 }])
            .unwrap();
        assert_eq!(vs.current().levels[0].len(), 1);
        vs.apply(vec![VersionEdit::RemoveTable { level: 0, id: id1 }])
            .unwrap();
        assert_eq!(vs.current().table_count(), 0);
    }

    #[test]
    fn recovery_rebuilds_levels_and_counters() {
        let (hier, alloc) = setup();
        let (m1, m2, m3);
        {
            let vs = VersionSet::create(hier.clone(), alloc.clone(), 0, 1 << 20, 4);
            m1 = table(&hier, &alloc, vs.new_table_id(), 0, 100);
            m2 = table(&hier, &alloc, vs.new_table_id(), 100, 200);
            m3 = table(&hier, &alloc, vs.new_table_id(), 200, 300);
            vs.apply(vec![
                VersionEdit::AddTable {
                    level: 0,
                    meta: m1.clone(),
                },
                VersionEdit::AddTable {
                    level: 1,
                    meta: m2.clone(),
                },
                VersionEdit::AddTable {
                    level: 1,
                    meta: m3.clone(),
                },
            ])
            .unwrap();
            // Drop one again so recovery sees add+remove.
            vs.apply(vec![VersionEdit::RemoveTable {
                level: 0,
                id: m1.id,
            }])
            .unwrap();
        }
        hier.power_fail();
        let alloc2 = Arc::new(PmemAllocator::new(
            1 << 20,
            hier.device().capacity() - (1 << 20),
        ));
        let vs = VersionSet::recover(hier.clone(), alloc2.clone(), 0, 1 << 20, 4).unwrap();
        let v = vs.current();
        assert_eq!(v.levels[0].len(), 0);
        assert_eq!(v.levels[1].len(), 2);
        assert!(vs.new_table_id() > m3.id);
        assert_eq!(vs.last_seq(), 300);
        // Reads still work post-recovery.
        let t = &v.levels[1][0];
        assert!(matches!(
            t.get(b"k00150"),
            crate::memtable::Lookup::Found(_)
        ));
    }

    #[test]
    fn overlapping_selection() {
        let (hier, alloc) = setup();
        let vs = VersionSet::create(hier.clone(), alloc.clone(), 0, 1 << 20, 4);
        let m1 = table(&hier, &alloc, 1, 0, 100); // k00000..k00099
        let m2 = table(&hier, &alloc, 2, 200, 300); // k00200..k00299
        vs.apply(vec![
            VersionEdit::AddTable { level: 1, meta: m1 },
            VersionEdit::AddTable { level: 1, meta: m2 },
        ])
        .unwrap();
        let v = vs.current();
        assert_eq!(v.overlapping(1, b"k00050", b"k00060").len(), 1);
        assert_eq!(v.overlapping(1, b"k00050", b"k00250").len(), 2);
        assert_eq!(v.overlapping(1, b"k00150", b"k00160").len(), 0);
    }
}
