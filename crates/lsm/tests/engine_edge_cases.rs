//! Edge cases of the reference engine: crashes around WAL rotation,
//! recovery of empty/heavily-compacted stores, and stale-log hygiene.

use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::{KvStore, LsmConfig, LsmTree, StorageConfig};
use cachekv_pmem::{LatencyConfig, PersistDomain, PmemConfig, PmemDevice};
use std::sync::Arc;

fn hier(domain: PersistDomain) -> Arc<Hierarchy> {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled()
            .with_domain(domain)
            .with_latency(LatencyConfig::zero()),
    ));
    Arc::new(Hierarchy::new(dev, CacheConfig::paper()))
}

fn cfg() -> LsmConfig {
    LsmConfig {
        memtable_bytes: 8 << 10,
        storage: StorageConfig::test_small(),
    }
}

#[test]
fn recovery_of_empty_store() {
    let h = hier(PersistDomain::Adr);
    {
        let _db = LsmTree::create(h.clone(), cfg());
    }
    h.power_fail();
    let db = LsmTree::recover(h, cfg()).unwrap();
    assert_eq!(db.get(b"anything").unwrap(), None);
    db.put(b"now", b"works").unwrap();
    assert_eq!(db.get(b"now").unwrap(), Some(b"works".to_vec()));
}

#[test]
fn crash_straddling_wal_rotation_boundaries() {
    // The 8 KiB MemTable rotates every ~100 records; crash at counts that
    // land just before, on, and just after rotation boundaries.
    for n in [95usize, 100, 105, 205, 399] {
        let h = hier(PersistDomain::Adr);
        {
            let db = LsmTree::create(h.clone(), cfg());
            for i in 0..n {
                db.put(format!("k{i:06}").as_bytes(), &[9u8; 48]).unwrap();
            }
            db.quiesce();
        }
        h.power_fail();
        let db = LsmTree::recover(h, cfg()).unwrap();
        for i in 0..n {
            assert_eq!(
                db.get(format!("k{i:06}").as_bytes()).unwrap(),
                Some(vec![9u8; 48]),
                "n={n}: key {i} lost around rotation"
            );
        }
        assert_eq!(
            db.get(format!("k{n:06}").as_bytes()).unwrap(),
            None,
            "n={n}: phantom key"
        );
    }
}

#[test]
fn stale_wal_from_longer_previous_generation_does_not_replay() {
    // Generation 1 writes many records (long WAL); after rotation the WAL
    // restarts. A crash then must replay only the current WAL, never the
    // longer previous generation's remnant bytes.
    let h = hier(PersistDomain::Adr);
    {
        let db = LsmTree::create(h.clone(), cfg());
        // ~3 rotations worth of unique keys.
        for i in 0..300usize {
            db.put(format!("gen1-{i:06}").as_bytes(), &[1u8; 48])
                .unwrap();
        }
        // A couple of fresh writes into the newest (short) WAL.
        db.put(b"fresh-a", b"1").unwrap();
        db.put(b"fresh-b", b"2").unwrap();
        db.quiesce();
    }
    h.power_fail();
    let db = LsmTree::recover(h.clone(), cfg()).unwrap();
    assert_eq!(db.get(b"fresh-a").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"gen1-000299").unwrap(), Some(vec![1u8; 48]));
    // Every key readable exactly once with its value; no duplicates is
    // implied by sequence-number monotonicity — just assert a fresh write
    // still lands with a newer sequence.
    db.put(b"gen1-000000", b"overwritten").unwrap();
    assert_eq!(
        db.get(b"gen1-000000").unwrap(),
        Some(b"overwritten".to_vec())
    );
}

#[test]
fn deep_compaction_keeps_all_live_data() {
    // Push enough churn through tiny levels that multiple level-N
    // compactions run, then verify the full key population.
    let h = hier(PersistDomain::Eadr);
    let db = LsmTree::create(h.clone(), cfg());
    for round in 0..6u32 {
        for i in 0..1_200u32 {
            db.put(
                format!("k{i:06}").as_bytes(),
                format!("r{round}-{i}").as_bytes(),
            )
            .unwrap();
        }
    }
    db.quiesce();
    let tables = db.storage().level_tables();
    assert!(
        tables.iter().skip(2).any(|&n| n > 0),
        "compaction reached deep levels: {tables:?}"
    );
    for i in (0..1_200u32).step_by(59) {
        assert_eq!(
            db.get(format!("k{i:06}").as_bytes()).unwrap(),
            Some(format!("r5-{i}").into_bytes()),
            "k{i} must read its round-5 value"
        );
    }
}

#[test]
fn recovery_after_deep_compaction() {
    let h = hier(PersistDomain::Eadr);
    {
        let db = LsmTree::create(h.clone(), cfg());
        for round in 0..5u32 {
            for i in 0..1_000u32 {
                db.put(
                    format!("k{i:06}").as_bytes(),
                    format!("r{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        db.quiesce();
    }
    h.power_fail();
    let db = LsmTree::recover(h, cfg()).unwrap();
    for i in (0..1_000u32).step_by(41) {
        assert_eq!(
            db.get(format!("k{i:06}").as_bytes()).unwrap(),
            Some(b"r4".to_vec())
        );
    }
}
