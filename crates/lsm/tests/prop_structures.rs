//! Property tests for the LSM building blocks: skiplist ordering/lookup
//! against a model, SSTable roundtrip, merge/dedup laws, and bloom
//! soundness.

use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::bloom::Bloom;
use cachekv_lsm::compaction::{dedup_newest, MergeIter};
use cachekv_lsm::kv::{internal_cmp, pack_meta, Entry, EntryKind};
use cachekv_lsm::memtable::Lookup;
use cachekv_lsm::sstable::{build_table, TableHandle, TableOptions};
use cachekv_lsm::{DramSpace, SkipList};
use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
use cachekv_storage::PmemAllocator;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    (0u16..200).prop_map(|k| format!("key{k:04}").into_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn skiplist_matches_versioned_model(
        ops in prop::collection::vec((key_strategy(), prop::collection::vec(any::<u8>(), 0..40)), 1..300)
    ) {
        let mut list = SkipList::new(DramSpace::new(1 << 20));
        // Model: key -> (seq, value) of the newest version.
        let mut model: BTreeMap<Vec<u8>, (u64, Vec<u8>)> = BTreeMap::new();
        for (seq, (key, value)) in ops.iter().enumerate() {
            let seq = seq as u64 + 1;
            list.insert(key, pack_meta(seq, EntryKind::Put), value).unwrap();
            model.insert(key.clone(), (seq, value.clone()));
        }
        prop_assert!(list.check_ordered());
        for (key, (seq, value)) in &model {
            let (meta, got) = list.get_latest(key).expect("inserted key findable");
            prop_assert_eq!(cachekv_lsm::kv::meta_seq(meta), *seq);
            prop_assert_eq!(&got, value);
        }
        // Iteration covers exactly the inserted multiset, in internal order.
        let entries: Vec<Entry> = list.iter().collect();
        prop_assert_eq!(entries.len(), ops.len());
        for w in entries.windows(2) {
            prop_assert_eq!(
                internal_cmp(&w[0].key, w[0].meta, &w[1].key, w[1].meta),
                std::cmp::Ordering::Less
            );
        }
    }

    #[test]
    fn sstable_roundtrips_arbitrary_sorted_entries(
        kvs in prop::collection::btree_map(key_strategy(), (any::<bool>(), prop::collection::vec(any::<u8>(), 0..60)), 1..150),
        block_size in 64usize..2048,
    ) {
        let entries: Vec<Entry> = kvs
            .iter()
            .enumerate()
            .map(|(i, (k, (is_del, v)))| {
                let kind = if *is_del { EntryKind::Delete } else { EntryKind::Put };
                Entry {
                    key: k.clone(),
                    meta: pack_meta(i as u64 + 1, kind),
                    value: if *is_del { vec![] } else { v.clone() },
                }
            })
            .collect();
        let dev = Arc::new(PmemDevice::new(
            PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
        ));
        let cap = dev.capacity();
        let hier = Arc::new(Hierarchy::new(dev, CacheConfig::small()));
        let alloc = PmemAllocator::new(0, cap);
        let opts = TableOptions { block_size, bloom_bits_per_key: 10 };
        let meta = build_table(&hier, &alloc, 1, &entries, &opts).unwrap();
        let table = TableHandle::open(hier, meta).unwrap();
        // Every entry resolves correctly by point lookup.
        for e in &entries {
            match (e.kind(), table.get(&e.key)) {
                (EntryKind::Put, Lookup::Found(v)) => prop_assert_eq!(v, e.value.clone()),
                (EntryKind::Delete, Lookup::Tombstone) => {}
                (k, got) => prop_assert!(false, "key {:?}: kind {:?} got {:?}", e.key, k, got),
            }
        }
        // And iteration reproduces the input exactly.
        let out: Vec<Entry> = table.iter().collect();
        prop_assert_eq!(out, entries);
    }

    #[test]
    fn merge_dedup_equals_model(
        runs in prop::collection::vec(
            prop::collection::vec((key_strategy(), prop::collection::vec(any::<u8>(), 0..16)), 0..60),
            1..5
        )
    ) {
        // Assign globally unique seqs across runs, then build per-run sorted
        // entry lists.
        let mut seq = 0u64;
        let mut model: BTreeMap<Vec<u8>, (u64, Vec<u8>)> = BTreeMap::new();
        let mut sources: Vec<Vec<Entry>> = Vec::new();
        for run in &runs {
            let mut entries: Vec<Entry> = run
                .iter()
                .map(|(k, v)| {
                    seq += 1;
                    let newest = model.get(k).map(|(s, _)| *s < seq).unwrap_or(true);
                    if newest {
                        model.insert(k.clone(), (seq, v.clone()));
                    }
                    Entry { key: k.clone(), meta: pack_meta(seq, EntryKind::Put), value: v.clone() }
                })
                .collect();
            entries.sort_by(|a, b| internal_cmp(&a.key, a.meta, &b.key, b.meta));
            sources.push(entries);
        }
        let merged = MergeIter::new(sources.into_iter().map(|s| s.into_iter()).collect());
        let deduped = dedup_newest(merged, false);
        prop_assert_eq!(deduped.len(), model.len());
        for e in &deduped {
            let (seq, value) = &model[&e.key];
            prop_assert_eq!(e.seq(), *seq, "kept the newest version");
            prop_assert_eq!(&e.value, value);
        }
    }

    #[test]
    fn bloom_never_false_negative(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 1..32), 1..300),
        bits in 4usize..16,
    ) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), bits);
        for k in &keys {
            prop_assert!(bloom.may_contain(k));
        }
        let decoded = Bloom::decode(&bloom.encode()).unwrap();
        for k in &keys {
            prop_assert!(decoded.may_contain(k), "decode preserved membership");
        }
    }
}
