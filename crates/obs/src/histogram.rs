//! Log-bucketed latency histogram.
//!
//! Fixed power-of-two buckets: bucket 0 holds the value 0 and bucket `i`
//! (1..=64) holds values in `[2^(i-1), 2^i)`. Recording is a couple of
//! relaxed atomic adds — safe on hot paths. Quantiles are resolved from a
//! snapshot to the *upper bound* of the bucket containing the requested rank,
//! so a reported quantile is always within one bucket boundary of the true
//! order statistic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// Index of the bucket that holds `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Largest value that lands in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Concurrent log-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Hot path: three relaxed adds and a fetch_max.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's contents into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zero every bucket and aggregate.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable view of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
    /// the rank-`ceil(q * count)` sample (the true max for q = 1). 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                // The max sample bounds the top bucket more tightly.
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // True p50 is 50; bucket [32,64) upper bound is 63.
        assert_eq!(s.p50(), 63);
        // p99 rank 99 → bucket [64,127] capped at observed max 100.
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn empty_histogram() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [0u64, 1, 5, 1000, u64::MAX] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 2, 7, 1 << 40] {
            b.record(v);
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }
}
