//! Minimal JSON value type with an emitter and a recursive-descent parser.
//!
//! The build environment has no registry access, so `serde`/`serde_json` are
//! unavailable; snapshots are small and schema-stable, so a hand-rolled value
//! type is enough. Objects use `BTreeMap` so emitted documents have a
//! deterministic key order (byte-identical output for identical snapshots).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers are kept exact (u64 doesn't round-trip through f64).
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an i64, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Json::Num(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an f64 (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document. Returns an error message with byte offset on
    /// malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Keep integral floats readable and parseable.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{:.1}", n)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad utf8".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the whole UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8".to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_nested() {
        let v = Json::obj(vec![
            ("a", Json::UInt(1)),
            ("b", Json::Arr(vec![Json::Str("x\"y".into()), Json::Null])),
            ("c", Json::obj(vec![("d", Json::Num(0.25))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_exactness() {
        let big = u64::MAX - 3;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn deterministic_key_order() {
        let mut a = BTreeMap::new();
        a.insert("z".to_string(), Json::UInt(1));
        a.insert("a".to_string(), Json::UInt(2));
        assert_eq!(Json::Obj(a).to_string(), "{\"a\":2,\"z\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"abc").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![("k", Json::UInt(9))]);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-3).as_i64(), Some(-3));
        assert_eq!(Json::Num(2.0).as_u64(), Some(2));
        assert_eq!(Json::Str("s".into()).as_str(), Some("s"));
    }
}
