//! `cachekv-obs` — unified observability for the CacheKV stack.
//!
//! The paper's evaluation hinges on instrumentation: Figure 4's write hit
//! ratio comes from device counters, Figure 5 decomposes write latency into
//! software phases, and Figures 10–16 sweep throughput/latency. This crate
//! provides the shared machinery every layer wires into:
//!
//! * [`Registry`] — named counters, gauges, and log-bucketed latency
//!   [`Histogram`]s. Registration is locked (cold); recording through the
//!   returned `Arc` handles is purely atomic (hot).
//! * [`PhaseSet`]/[`Phase`] — per-phase put/get decomposition driven by the
//!   simulated clock, deterministic under `ClockMode::Virtual`.
//! * [`StatsSnapshot`] — a four-layer (device, cache, memory component, LSM)
//!   point-in-time view, JSON-serializable without external dependencies via
//!   the bundled [`Json`] value type.

pub mod histogram;
pub mod json;
pub mod phase;
pub mod registry;
pub mod snapshot;

pub use histogram::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot};
pub use json::Json;
pub use phase::{
    timed, HousekeepPhase, HousekeepPhaseSet, Phase, PhaseKind, PhaseSet, PhaseSetOf, ReadPhase,
    ReadPhaseSet, Stopwatch, TimeSource,
};
pub use registry::{Counter, Gauge, MetricsExport, Registry};
pub use snapshot::StatsSnapshot;
