//! Per-phase latency decomposition (paper Figure 5).
//!
//! The paper splits a put's latency into software phases — lock wait, sub-
//! MemTable allocation, index update, data copy, and persistence wait — to
//! show that software overheads dominate once the medium is an eADR-backed
//! CPU cache. [`PhaseSet`] reproduces that decomposition: each phase gets a
//! total-nanoseconds counter and a latency histogram in a [`Registry`].
//!
//! Time comes from a [`TimeSource`]:
//!
//! * [`TimeSource::Virtual`] diffs [`Clock::thread_ns`] around the phase, so
//!   with [`ClockMode::Virtual`] two identical single-threaded runs produce
//!   *identical* phase totals — the determinism the metrics-invariant tests
//!   pin.
//! * [`TimeSource::Wall`] uses `Instant`, for benchmarks running with
//!   [`ClockMode::Spin`] where real contention is part of the measurement.

use std::sync::Arc;
use std::time::Instant;

use cachekv_pmem::{Clock, ClockMode};

use crate::histogram::Histogram;
use crate::registry::{Counter, Registry};

/// Where phase timers read time from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSource {
    /// Simulated nanoseconds charged by this thread ([`Clock::thread_ns`]).
    Virtual,
    /// Real elapsed time (`Instant`).
    Wall,
}

impl TimeSource {
    /// The source matching a clock's mode: virtual clocks yield deterministic
    /// thread-charged time, spin clocks yield wall time.
    pub fn for_mode(mode: ClockMode) -> TimeSource {
        match mode {
            ClockMode::Virtual => TimeSource::Virtual,
            ClockMode::Spin => TimeSource::Wall,
        }
    }

    #[inline]
    fn now(self) -> TimePoint {
        match self {
            TimeSource::Virtual => TimePoint::Virtual(Clock::thread_ns()),
            TimeSource::Wall => TimePoint::Wall(Instant::now()),
        }
    }

    /// Start a stopwatch on this source. For call sites where a closure is
    /// awkward (borrow-heavy code, multi-statement regions).
    #[inline]
    pub fn begin(self) -> Stopwatch {
        Stopwatch(self.now())
    }
}

/// A started measurement; read it with [`Stopwatch::elapsed_ns`].
#[derive(Clone, Copy)]
pub struct Stopwatch(TimePoint);

impl Stopwatch {
    /// Nanoseconds since [`TimeSource::begin`] on the calling thread.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed_ns()
    }

    /// Nanoseconds since the start, restarting the stopwatch at now: one
    /// clock read per boundary when successive laps decompose a timeline.
    #[inline]
    pub fn lap(&mut self) -> u64 {
        let now = match self.0 {
            TimePoint::Virtual(_) => TimePoint::Virtual(Clock::thread_ns()),
            TimePoint::Wall(_) => TimePoint::Wall(Instant::now()),
        };
        let ns = match (self.0, now) {
            (TimePoint::Virtual(a), TimePoint::Virtual(b)) => b.saturating_sub(a),
            (TimePoint::Wall(a), TimePoint::Wall(b)) => b.duration_since(a).as_nanos() as u64,
            _ => unreachable!("lap never switches time source"),
        };
        self.0 = now;
        ns
    }
}

#[derive(Clone, Copy)]
enum TimePoint {
    Virtual(u64),
    Wall(Instant),
}

impl TimePoint {
    #[inline]
    fn elapsed_ns(self) -> u64 {
        match self {
            TimePoint::Virtual(start) => Clock::thread_ns().saturating_sub(start),
            TimePoint::Wall(start) => start.elapsed().as_nanos() as u64,
        }
    }
}

/// A finite enumeration of phases an operation decomposes into. Implemented
/// by [`Phase`] (writes) and [`ReadPhase`] (reads); [`PhaseSetOf`] registers
/// one counter + histogram pair per variant.
pub trait PhaseKind: Copy + 'static {
    /// Every phase, in presentation order.
    fn all() -> &'static [Self];
    /// Stable metric-name component.
    fn key(self) -> &'static str;
    /// Position in [`PhaseKind::all`]; indexes the instrument table.
    fn index(self) -> usize;
}

/// The software phases of a write, after the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting on the per-core slot lock.
    LockWait,
    /// Acquiring/stealing a sub-MemTable from the pool.
    Alloc,
    /// Skiplist/index insertion (or LIU bookkeeping).
    IndexUpdate,
    /// Copying key/value bytes into the sub-MemTable.
    DataCopy,
    /// Persistence waiting: seals, flush-queue handoff, sync barriers.
    Persist,
}

impl Phase {
    /// Every phase, in presentation order.
    pub const ALL: [Phase; 5] = [
        Phase::LockWait,
        Phase::Alloc,
        Phase::IndexUpdate,
        Phase::DataCopy,
        Phase::Persist,
    ];

    /// Stable metric-name component.
    pub fn key(self) -> &'static str {
        match self {
            Phase::LockWait => "lock_wait",
            Phase::Alloc => "alloc",
            Phase::IndexUpdate => "index_update",
            Phase::DataCopy => "data_copy",
            Phase::Persist => "persist",
        }
    }
}

impl PhaseKind for Phase {
    fn all() -> &'static [Phase] {
        &Phase::ALL
    }
    fn key(self) -> &'static str {
        Phase::key(self)
    }
    fn index(self) -> usize {
        self as usize
    }
}

/// The probe stages of a point read, in probe order: active sub-MemTables,
/// immutable (sealing + flushed) sub-indexes, the compacted global skiplist,
/// and the LSM storage component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPhase {
    /// Lock-free snapshot probes of the per-core active sub-MemTables.
    ActiveProbe,
    /// Sealing + flushed immutable sub-index probes (fence/bloom gated).
    ImmProbe,
    /// Global skiplist probe (fence/bloom gated).
    GlobalProbe,
    /// LSM storage-component probe (skipped when an in-memory hit dominates).
    LsmProbe,
}

impl ReadPhase {
    /// Every read phase, in probe order.
    pub const ALL: [ReadPhase; 4] = [
        ReadPhase::ActiveProbe,
        ReadPhase::ImmProbe,
        ReadPhase::GlobalProbe,
        ReadPhase::LsmProbe,
    ];

    /// Stable metric-name component.
    pub fn key(self) -> &'static str {
        match self {
            ReadPhase::ActiveProbe => "active_probe",
            ReadPhase::ImmProbe => "imm_probe",
            ReadPhase::GlobalProbe => "global_probe",
            ReadPhase::LsmProbe => "lsm_probe",
        }
    }
}

impl PhaseKind for ReadPhase {
    fn all() -> &'static [ReadPhase] {
        &ReadPhase::ALL
    }
    fn key(self) -> &'static str {
        ReadPhase::key(self)
    }
    fn index(self) -> usize {
        self as usize
    }
}

/// The stages of one housekeeping round: planning which global-index
/// segments a flushed table overlaps, the (parallel) per-segment merges,
/// the atomic swap of the new segment set, and the streaming L0 dump.
/// Runs on scheduler workers — never on a put path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HousekeepPhase {
    /// Route flushed entries to overlapped segments, mark dirty runs.
    Plan,
    /// Per-segment k-way merges (parallel across worker threads).
    Merge,
    /// Publish the new segment set under the write lock.
    Swap,
    /// Stream the merged segments into L0 tables.
    Dump,
}

impl HousekeepPhase {
    /// Every housekeeping phase, in execution order.
    pub const ALL: [HousekeepPhase; 4] = [
        HousekeepPhase::Plan,
        HousekeepPhase::Merge,
        HousekeepPhase::Swap,
        HousekeepPhase::Dump,
    ];

    /// Stable metric-name component.
    pub fn key(self) -> &'static str {
        match self {
            HousekeepPhase::Plan => "plan",
            HousekeepPhase::Merge => "merge",
            HousekeepPhase::Swap => "swap",
            HousekeepPhase::Dump => "dump",
        }
    }
}

impl PhaseKind for HousekeepPhase {
    fn all() -> &'static [HousekeepPhase] {
        &HousekeepPhase::ALL
    }
    fn key(self) -> &'static str {
        HousekeepPhase::key(self)
    }
    fn index(self) -> usize {
        self as usize
    }
}

struct PhaseInstruments {
    total_ns: Arc<Counter>,
    hist: Arc<Histogram>,
}

/// Registered instruments for one operation kind (e.g. `put`): per-phase
/// totals + histograms, plus an op counter.
pub struct PhaseSetOf<P: PhaseKind> {
    source: TimeSource,
    phases: Vec<PhaseInstruments>,
    ops: Arc<Counter>,
    _kind: std::marker::PhantomData<P>,
}

/// The write-phase set (paper Figure 5 decomposition).
pub type PhaseSet = PhaseSetOf<Phase>;
/// The read-phase set (probe-order decomposition).
pub type ReadPhaseSet = PhaseSetOf<ReadPhase>;
/// The housekeeping-round phase set (plan / merge / swap / dump).
pub type HousekeepPhaseSet = PhaseSetOf<HousekeepPhase>;

impl<P: PhaseKind> PhaseSetOf<P> {
    /// Register `{prefix}.phase.{phase}.total_ns` counters,
    /// `{prefix}.phase.{phase}.ns` histograms, and a `{prefix}.ops` counter.
    pub fn register(reg: &Registry, prefix: &str, source: TimeSource) -> PhaseSetOf<P> {
        let phases = P::all()
            .iter()
            .map(|p| PhaseInstruments {
                total_ns: reg.counter(&format!("{prefix}.phase.{}.total_ns", p.key())),
                hist: reg.histogram(&format!("{prefix}.phase.{}.ns", p.key())),
            })
            .collect();
        PhaseSetOf {
            source,
            phases,
            ops: reg.counter(&format!("{prefix}.ops")),
            _kind: std::marker::PhantomData,
        }
    }

    /// Count one completed operation.
    #[inline]
    pub fn op(&self) {
        self.ops.inc();
    }

    /// Time `f` and attribute the elapsed nanoseconds to `phase`.
    #[inline]
    pub fn timed<T>(&self, phase: P, f: impl FnOnce() -> T) -> T {
        let start = self.source.now();
        let out = f();
        self.record(phase, start.elapsed_ns());
        out
    }

    /// Attribute pre-measured nanoseconds to `phase`.
    #[inline]
    pub fn record(&self, phase: P, ns: u64) {
        let inst = &self.phases[phase.index()];
        inst.total_ns.add(ns);
        inst.hist.record(ns);
    }

    /// The time source phases are measured with.
    pub fn source(&self) -> TimeSource {
        self.source
    }
}

/// Time `f` with `source` and record the elapsed nanoseconds into `hist`.
/// For whole-operation latencies that don't decompose into phases.
#[inline]
pub fn timed<T>(source: TimeSource, hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let start = source.now();
    let out = f();
    hist.record(start.elapsed_ns());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_phases_enumerate_in_probe_order() {
        assert_eq!(ReadPhase::ALL.len(), 4);
        let keys: Vec<_> = ReadPhase::ALL.iter().map(|p| p.key()).collect();
        assert_eq!(
            keys,
            ["active_probe", "imm_probe", "global_probe", "lsm_probe"]
        );
        let reg = Registry::new();
        let set = ReadPhaseSet::register(&reg, "get", TimeSource::Virtual);
        set.record(ReadPhase::LsmProbe, 9);
        set.op();
        let export = reg.export();
        assert_eq!(export.counters["get.phase.lsm_probe.total_ns"], 9);
        assert_eq!(export.counters["get.phase.active_probe.total_ns"], 0);
        assert_eq!(export.counters["get.ops"], 1);
    }

    #[test]
    fn phases_enumerate_in_order() {
        assert_eq!(Phase::ALL.len(), 5);
        assert_eq!(Phase::ALL[0] as usize, 0);
        assert_eq!(Phase::Persist as usize, 4);
        let keys: Vec<_> = Phase::ALL.iter().map(|p| p.key()).collect();
        assert_eq!(
            keys,
            ["lock_wait", "alloc", "index_update", "data_copy", "persist"]
        );
    }

    #[test]
    fn virtual_timing_is_exact_and_deterministic() {
        let clock = Clock::counting();
        let reg = Registry::new();
        let set = PhaseSet::register(&reg, "put", TimeSource::Virtual);
        set.timed(Phase::DataCopy, || clock.charge(120));
        set.timed(Phase::DataCopy, || clock.charge(80));
        set.timed(Phase::Persist, || clock.charge(7));
        set.op();
        let export = reg.export();
        assert_eq!(export.counters["put.phase.data_copy.total_ns"], 200);
        assert_eq!(export.counters["put.phase.persist.total_ns"], 7);
        assert_eq!(export.counters["put.phase.lock_wait.total_ns"], 0);
        assert_eq!(export.counters["put.ops"], 1);
        assert_eq!(export.histograms["put.phase.data_copy.ns"].count, 2);
        assert_eq!(export.histograms["put.phase.data_copy.ns"].sum, 200);
    }

    #[test]
    fn wall_timing_is_nonzero_for_real_work() {
        let reg = Registry::new();
        let set = PhaseSet::register(&reg, "op", TimeSource::Wall);
        set.timed(Phase::IndexUpdate, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(reg.export().counters["op.phase.index_update.total_ns"] >= 1_000_000);
    }

    #[test]
    fn source_follows_clock_mode() {
        assert_eq!(
            TimeSource::for_mode(ClockMode::Virtual),
            TimeSource::Virtual
        );
        assert_eq!(TimeSource::for_mode(ClockMode::Spin), TimeSource::Wall);
    }

    #[test]
    fn free_timed_records_into_histogram() {
        let clock = Clock::counting();
        let h = Histogram::new();
        timed(TimeSource::Virtual, &h, || clock.charge(33));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 33);
    }
}
