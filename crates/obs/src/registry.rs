//! Named-metric registry.
//!
//! Registration (cold path) takes a lock; recording (hot path) goes through
//! pre-fetched `Arc` handles and is purely atomic. Names are dotted paths
//! like `core.flush.queue_depth`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::Json;

/// Monotonically non-decreasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, lag, table counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A collection of named metrics. Cheap to clone (shared interior).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<RwLock<BTreeMap<String, Metric>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a wiring bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.metrics.read().get(name) {
            return match m {
                Metric::Counter(c) => c.clone(),
                _ => panic!("metric `{name}` is not a counter"),
            };
        }
        let mut w = self.metrics.write();
        match w
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Get or create the gauge named `name`. Panics on kind mismatch.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(m) = self.metrics.read().get(name) {
            return match m {
                Metric::Gauge(g) => g.clone(),
                _ => panic!("metric `{name}` is not a gauge"),
            };
        }
        let mut w = self.metrics.write();
        match w
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Get or create the histogram named `name`. Panics on kind mismatch.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(m) = self.metrics.read().get(name) {
            return match m {
                Metric::Histogram(h) => h.clone(),
                _ => panic!("metric `{name}` is not a histogram"),
            };
        }
        let mut w = self.metrics.write();
        match w
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Snapshot every registered metric.
    pub fn export(&self) -> MetricsExport {
        let mut out = MetricsExport::default();
        for (name, m) in self.metrics.read().iter() {
            match m {
                Metric::Counter(c) => {
                    out.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    out.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    out.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        out
    }
}

/// Point-in-time export of one registry (plus ad-hoc inserted values).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsExport {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsExport {
    /// Insert a snapshot-time counter value (for state sampled on demand).
    pub fn insert_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Insert a snapshot-time gauge value.
    pub fn insert_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Insert a snapshot-time histogram.
    pub fn insert_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), h);
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), histogram_to_json(h)))
                .collect(),
        );
        Json::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Rebuild from a JSON value produced by [`MetricsExport::to_json`].
    pub fn from_json(v: &Json) -> Result<MetricsExport, String> {
        let mut out = MetricsExport::default();
        if let Some(map) = v.get("counters").and_then(Json::as_obj) {
            for (k, val) in map {
                out.counters.insert(
                    k.clone(),
                    val.as_u64().ok_or_else(|| format!("counter {k} not u64"))?,
                );
            }
        }
        if let Some(map) = v.get("gauges").and_then(Json::as_obj) {
            for (k, val) in map {
                out.gauges.insert(
                    k.clone(),
                    val.as_i64().ok_or_else(|| format!("gauge {k} not i64"))?,
                );
            }
        }
        if let Some(map) = v.get("histograms").and_then(Json::as_obj) {
            for (k, val) in map {
                out.histograms.insert(k.clone(), histogram_from_json(val)?);
            }
        }
        Ok(out)
    }
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("count", Json::UInt(h.count)),
        ("sum", Json::UInt(h.sum)),
        ("max", Json::UInt(h.max)),
        ("p50", Json::UInt(h.p50())),
        ("p95", Json::UInt(h.p95())),
        ("p99", Json::UInt(h.p99())),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(i, n)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(n)]))
                    .collect(),
            ),
        ),
    ])
}

fn histogram_from_json(v: &Json) -> Result<HistogramSnapshot, String> {
    let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("bad {k}"));
    let mut buckets = Vec::new();
    if let Some(arr) = v.get("buckets").and_then(Json::as_arr) {
        for pair in arr {
            let pair = pair.as_arr().ok_or("bad bucket pair")?;
            let i = pair
                .first()
                .and_then(Json::as_u64)
                .ok_or("bad bucket index")?;
            let n = pair
                .get(1)
                .and_then(Json::as_u64)
                .ok_or("bad bucket count")?;
            buckets.push((i as u8, n));
        }
    }
    Ok(HistogramSnapshot {
        count: field("count")?,
        sum: field("sum")?,
        max: field("max")?,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_is_shared() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-5);
        assert_eq!(reg.gauge("depth").get(), -5);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn export_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("ops").add(17);
        reg.gauge("depth").set(-2);
        reg.histogram("lat_ns").record(100);
        reg.histogram("lat_ns").record(3);
        let export = reg.export();
        let back = MetricsExport::from_json(&export.to_json()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn concurrent_registration() {
        let reg = Registry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    reg.counter(&format!("c{}", i % 10)).inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = reg.export().counters.values().sum();
        assert_eq!(total, 800);
    }
}
