//! Cross-layer stats snapshot.
//!
//! [`StatsSnapshot`] is the machine-readable view a store returns from
//! `snapshot()`: device counters (PMWatch-style, Figure 4), cache counters,
//! the memory component's registry (phase breakdowns, Figure 5), and the LSM
//! storage component's registry (compaction/amplification accounting).

use cachekv_cache::CacheStats;
use cachekv_pmem::PmemStats;

use crate::json::Json;
use crate::registry::MetricsExport;

/// Point-in-time metrics for every layer of one store instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Which system produced this (e.g. `cachekv`, `novelsm-cache`).
    pub system: String,
    /// Simulated persistent-memory device counters.
    pub device: PmemStats,
    /// Simulated LLC counters.
    pub cache: CacheStats,
    /// Memory-component metrics (pool, flush pipeline, LIU, SC, phases).
    pub memory: MetricsExport,
    /// LSM storage-component metrics (L0 dumps, compaction traffic).
    pub lsm: MetricsExport,
}

impl StatsSnapshot {
    /// Serialize to a JSON value. Derived ratios (write hit ratio, write
    /// amplification, load hit ratio) are included so artifacts are directly
    /// plottable without re-deriving them.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("system", Json::Str(self.system.clone())),
            ("device", device_to_json(&self.device)),
            ("cache", cache_to_json(&self.cache)),
            ("memory", self.memory.to_json()),
            ("lsm", self.lsm.to_json()),
        ])
    }

    /// Serialize to a JSON string (deterministic key order).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Rebuild from a JSON value produced by [`StatsSnapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<StatsSnapshot, String> {
        Ok(StatsSnapshot {
            system: v
                .get("system")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            device: device_from_json(v.get("device").ok_or("missing device")?)?,
            cache: cache_from_json(v.get("cache").ok_or("missing cache")?)?,
            memory: MetricsExport::from_json(v.get("memory").ok_or("missing memory")?)?,
            lsm: MetricsExport::from_json(v.get("lsm").ok_or("missing lsm")?)?,
        })
    }

    /// Parse from a JSON string.
    pub fn parse(text: &str) -> Result<StatsSnapshot, String> {
        StatsSnapshot::from_json(&Json::parse(text)?)
    }
}

fn device_to_json(d: &PmemStats) -> Json {
    Json::obj(vec![
        ("cpu_writes", Json::UInt(d.cpu_writes)),
        ("xpbuffer_hits", Json::UInt(d.xpbuffer_hits)),
        ("xpbuffer_misses", Json::UInt(d.xpbuffer_misses)),
        ("media_read_bytes", Json::UInt(d.media_read_bytes)),
        ("media_write_bytes", Json::UInt(d.media_write_bytes)),
        ("rmw_evictions", Json::UInt(d.rmw_evictions)),
        ("full_evictions", Json::UInt(d.full_evictions)),
        ("reads", Json::UInt(d.reads)),
        ("power_failures", Json::UInt(d.power_failures)),
        ("write_hit_ratio", Json::Num(d.write_hit_ratio())),
        ("write_amplification", Json::Num(d.write_amplification())),
    ])
}

fn device_from_json(v: &Json) -> Result<PmemStats, String> {
    let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("bad {k}"));
    Ok(PmemStats {
        cpu_writes: field("cpu_writes")?,
        xpbuffer_hits: field("xpbuffer_hits")?,
        xpbuffer_misses: field("xpbuffer_misses")?,
        media_read_bytes: field("media_read_bytes")?,
        media_write_bytes: field("media_write_bytes")?,
        rmw_evictions: field("rmw_evictions")?,
        full_evictions: field("full_evictions")?,
        reads: field("reads")?,
        power_failures: field("power_failures")?,
    })
}

fn cache_to_json(c: &CacheStats) -> Json {
    Json::obj(vec![
        ("store_hits", Json::UInt(c.store_hits)),
        ("store_misses", Json::UInt(c.store_misses)),
        ("load_hits", Json::UInt(c.load_hits)),
        ("load_misses", Json::UInt(c.load_misses)),
        ("evictions", Json::UInt(c.evictions)),
        ("dirty_evictions", Json::UInt(c.dirty_evictions)),
        ("flush_ops", Json::UInt(c.flush_ops)),
        ("nt_lines", Json::UInt(c.nt_lines)),
        ("locked_hits", Json::UInt(c.locked_hits)),
        ("load_hit_ratio", Json::Num(c.load_hit_ratio())),
    ])
}

fn cache_from_json(v: &Json) -> Result<CacheStats, String> {
    let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("bad {k}"));
    Ok(CacheStats {
        store_hits: field("store_hits")?,
        store_misses: field("store_misses")?,
        load_hits: field("load_hits")?,
        load_misses: field("load_misses")?,
        evictions: field("evictions")?,
        dirty_evictions: field("dirty_evictions")?,
        flush_ops: field("flush_ops")?,
        nt_lines: field("nt_lines")?,
        locked_hits: field("locked_hits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn round_trips_through_json_string() {
        let reg = Registry::new();
        reg.counter("core.puts").add(12);
        reg.gauge("core.flush.queue_depth").set(3);
        reg.histogram("core.put_ns").record(450);
        let snap = StatsSnapshot {
            system: "cachekv".to_string(),
            device: PmemStats {
                cpu_writes: 100,
                xpbuffer_hits: 80,
                xpbuffer_misses: 20,
                media_write_bytes: 2560,
                ..Default::default()
            },
            cache: CacheStats {
                store_hits: 7,
                locked_hits: 7,
                ..Default::default()
            },
            memory: reg.export(),
            lsm: MetricsExport::default(),
        };
        let text = snap.to_json_string();
        let back = StatsSnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        // Derived ratios are present in the artifact.
        let v = Json::parse(&text).unwrap();
        let ratio = v
            .get("device")
            .and_then(|d| d.get("write_hit_ratio"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((ratio - 0.8).abs() < 1e-9);
    }

    #[test]
    fn missing_layer_is_an_error() {
        assert!(StatsSnapshot::parse("{\"system\":\"x\"}").is_err());
    }
}
