//! Property tests for the log-bucketed latency histogram: bucket counts
//! must account for every sample, quantiles must stay within one bucket
//! boundary of the exact sample quantile, and merging two histograms must
//! equal recording both sample sets into one.

use cachekv_obs::{bucket_index, bucket_upper, Histogram};
use proptest::prelude::*;

/// Samples spanning all magnitudes: raw `u64`s right-shifted by arbitrary
/// amounts, so tiny, mid-range, and near-max values all occur.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0u32..64).prop_map(|(v, s)| v >> s), 1..200)
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    // Every sample lands in exactly one bucket.
    #[test]
    fn bucket_counts_sum_to_sample_count(values in samples()) {
        let snap = record_all(&values).snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, values.len() as u64);
        // And each sample's bucket is non-empty.
        for &v in &values {
            let b = bucket_index(v) as u8;
            prop_assert!(snap.buckets.iter().any(|&(i, n)| i == b && n > 0));
        }
    }

    // The reported quantile is never below the exact sample quantile and
    // never beyond the upper boundary of the bucket holding it.
    #[test]
    fn quantiles_within_one_bucket_of_exact(values in samples()) {
        let snap = record_all(&values).snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            // Same rank definition as HistogramSnapshot::quantile.
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let exact = sorted[rank as usize - 1];
            let got = snap.quantile(q);
            prop_assert!(
                got >= exact && got <= bucket_upper(bucket_index(exact)),
                "q={} exact={} got={} (bucket upper {})",
                q, exact, got, bucket_upper(bucket_index(exact))
            );
        }
    }

    // merge(a, b) is indistinguishable from recording `a ++ b`.
    #[test]
    fn merge_equals_recording_concatenation(a in samples(), b in samples()) {
        let ha = record_all(&a);
        let hb = record_all(&b);
        ha.merge_from(&hb);

        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let hc = record_all(&combined);
        prop_assert_eq!(ha.snapshot(), hc.snapshot());
    }

    // Quantiles are monotone in q, bounded by the observed max, and the
    // snapshot max/sum match the samples exactly.
    #[test]
    fn summary_stats_are_exact(values in samples()) {
        let snap = record_all(&values).snapshot();
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(snap.sum, values.iter().fold(0u64, |s, &v| s.wrapping_add(v)));
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = snap.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev, "quantile not monotone at {}", i);
            prop_assert!(q <= snap.max);
            prev = q;
        }
    }
}
