//! Simulated time accounting.
//!
//! Device and cache operations *charge* nanoseconds to a [`Clock`]. Two modes
//! are provided:
//!
//! * [`ClockMode::Counting`] — charges are summed into an atomic counter and
//!   no real time passes. Deterministic; used by unit tests and by harnesses
//!   that compute throughput from simulated time.
//! * [`ClockMode::Spin`] — each charge busy-waits for the given duration, so
//!   simulated device costs compose with *real* CPU work and *real* lock
//!   contention. This is what the figure-reproduction benchmarks use: the
//!   paper's Observation 2 (software overheads dominating) emerges naturally
//!   because index updates and MemTable locks cost genuine wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How charged nanoseconds are realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Account only; never block.
    #[default]
    Counting,
    /// Busy-wait for each charge so device latency is felt in wall-clock time.
    Spin,
}

/// A shared simulated-time sink. Cheap to clone via `Arc` at the call sites
/// that need it; internally just an atomic counter plus the mode.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    total_ns: AtomicU64,
}

impl Clock {
    /// Create a clock with the given mode.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            mode,
            total_ns: AtomicU64::new(0),
        }
    }

    /// Accounting-only clock (the default for tests).
    pub fn counting() -> Self {
        Clock::new(ClockMode::Counting)
    }

    /// The clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Charge `ns` simulated nanoseconds.
    #[inline]
    pub fn charge(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        if self.mode == ClockMode::Spin {
            spin_for(Duration::from_nanos(ns));
        }
    }

    /// Total nanoseconds charged so far (across all threads).
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Reset the accumulated total (e.g., between benchmark phases).
    pub fn reset(&self) {
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// Busy-wait for approximately `d`. `Instant`-based so it needs no
/// calibration; the ~20 ns `Instant::now` overhead acts as a small floor,
/// below real instruction issue costs anyway.
#[inline]
fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates_without_blocking() {
        let c = Clock::counting();
        let t0 = Instant::now();
        for _ in 0..1000 {
            c.charge(1_000_000); // 1 ms each; must not sleep
        }
        assert_eq!(c.total_ns(), 1_000_000_000);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn zero_charge_is_free() {
        let c = Clock::new(ClockMode::Spin);
        c.charge(0);
        assert_eq!(c.total_ns(), 0);
    }

    #[test]
    fn spin_mode_takes_wall_time() {
        let c = Clock::new(ClockMode::Spin);
        let t0 = Instant::now();
        c.charge(2_000_000); // 2 ms
        assert!(t0.elapsed() >= Duration::from_millis(2));
        assert_eq!(c.total_ns(), 2_000_000);
    }

    #[test]
    fn reset_clears_total() {
        let c = Clock::counting();
        c.charge(42);
        c.reset();
        assert_eq!(c.total_ns(), 0);
    }

    #[test]
    fn concurrent_charges_sum() {
        let c = std::sync::Arc::new(Clock::counting());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.charge(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total_ns(), 4 * 10_000 * 3);
    }
}
