//! Simulated time accounting.
//!
//! Device and cache operations *charge* nanoseconds to a [`Clock`]. Two modes
//! are provided:
//!
//! * [`ClockMode::Virtual`] — charges are summed into an atomic counter and
//!   no real time passes. Deterministic; used by unit tests, by harnesses
//!   that compute throughput from simulated time, and by the observability
//!   layer's phase timers (identical runs charge identical nanoseconds).
//! * [`ClockMode::Spin`] — each charge busy-waits for the given duration, so
//!   simulated device costs compose with *real* CPU work and *real* lock
//!   contention. This is what the figure-reproduction benchmarks use: the
//!   paper's Observation 2 (software overheads dominating) emerges naturally
//!   because index updates and MemTable locks cost genuine wall-clock time.
//!
//! Besides the global total, every charge is also added to a **thread-local**
//! accumulator readable via [`Clock::thread_ns`]. Phase timers diff that
//! accumulator around a critical section to attribute simulated time to the
//! current thread only — background flush threads charging the same clock do
//! not perturb a foreground writer's measurement.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How charged nanoseconds are realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Account only; never block. Deterministic.
    #[default]
    Virtual,
    /// Busy-wait for each charge so device latency is felt in wall-clock time.
    Spin,
}

thread_local! {
    /// Nanoseconds charged by *this* thread to any clock.
    static THREAD_NS: Cell<u64> = const { Cell::new(0) };
}

/// A shared simulated-time sink. Cheap to clone via `Arc` at the call sites
/// that need it; internally just an atomic counter plus the mode.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    total_ns: AtomicU64,
}

impl Clock {
    /// Create a clock with the given mode.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            mode,
            total_ns: AtomicU64::new(0),
        }
    }

    /// Accounting-only virtual clock (the default for tests).
    pub fn counting() -> Self {
        Clock::new(ClockMode::Virtual)
    }

    /// The clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Charge `ns` simulated nanoseconds.
    #[inline]
    pub fn charge(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        THREAD_NS.with(|t| t.set(t.get().wrapping_add(ns)));
        if self.mode == ClockMode::Spin {
            spin_for(Duration::from_nanos(ns));
        }
    }

    /// Total nanoseconds charged so far (across all threads).
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Nanoseconds charged by the calling thread to *any* clock since it
    /// started. Monotonically non-decreasing within a thread; diff two reads
    /// to attribute simulated time to a code region.
    pub fn thread_ns() -> u64 {
        THREAD_NS.with(|t| t.get())
    }

    /// Reset the accumulated total (e.g., between benchmark phases).
    pub fn reset(&self) {
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// Busy-wait for approximately `d`. `Instant`-based so it needs no
/// calibration; the ~20 ns `Instant::now` overhead acts as a small floor,
/// below real instruction issue costs anyway.
#[inline]
fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates_without_blocking() {
        let c = Clock::counting();
        let t0 = Instant::now();
        for _ in 0..1000 {
            c.charge(1_000_000); // 1 ms each; must not sleep
        }
        assert_eq!(c.total_ns(), 1_000_000_000);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn zero_charge_is_free() {
        let c = Clock::new(ClockMode::Spin);
        c.charge(0);
        assert_eq!(c.total_ns(), 0);
    }

    #[test]
    fn spin_mode_takes_wall_time() {
        let c = Clock::new(ClockMode::Spin);
        let t0 = Instant::now();
        c.charge(2_000_000); // 2 ms
        assert!(t0.elapsed() >= Duration::from_millis(2));
        assert_eq!(c.total_ns(), 2_000_000);
    }

    #[test]
    fn reset_clears_total() {
        let c = Clock::counting();
        c.charge(42);
        c.reset();
        assert_eq!(c.total_ns(), 0);
    }

    #[test]
    fn concurrent_charges_sum() {
        let c = std::sync::Arc::new(Clock::counting());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.charge(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total_ns(), 4 * 10_000 * 3);
    }

    #[test]
    fn thread_ns_is_per_thread() {
        let c = std::sync::Arc::new(Clock::counting());
        let base = Clock::thread_ns();
        c.charge(10);
        assert_eq!(Clock::thread_ns() - base, 10);
        // Another thread's charges don't show up here.
        let c2 = c.clone();
        std::thread::spawn(move || {
            let b = Clock::thread_ns();
            c2.charge(99);
            assert_eq!(Clock::thread_ns() - b, 99);
        })
        .join()
        .unwrap();
        assert_eq!(Clock::thread_ns() - base, 10);
        // Two clocks feed the same thread-local stream.
        let other = Clock::counting();
        other.charge(5);
        assert_eq!(Clock::thread_ns() - base, 15);
    }
}
