//! Device configuration: geometry, persistence domain, and latency model.

/// Persistence domain supported by the simulated platform (Section II-B,
/// Feature 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistDomain {
    /// Asynchronous DRAM Refresh: only the iMC write-pending queue and the
    /// media survive a power failure. CPU caches are volatile and must be
    /// flushed explicitly (`clflush`/`clwb` + fence).
    Adr,
    /// Enhanced ADR: the persistence boundary extends up to the CPU caches,
    /// so dirty cachelines survive a power failure without explicit flushes.
    Eadr,
}

/// Simulated latencies charged per operation, in nanoseconds.
///
/// Values follow published Optane PMem characterization studies (Yang et al.,
/// FAST'20; Gugnani et al., VLDB'21): media reads are 2-3x DRAM latency,
/// 256 B media writes are bandwidth-bound (~2.3 GB/s per DIMM set), and a
/// `clflush` stalls for roughly the store+writeback round trip. Absolute
/// numbers only need to preserve *relative* costs for the paper's shapes to
/// reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Reading one 256 B XPLine from the media (e.g., an XPBuffer
    /// read-modify-write, or a load miss that reaches the device).
    pub media_read_256_ns: u64,
    /// Writing one 256 B XPLine to the media.
    pub media_write_256_ns: u64,
    /// Landing one 64 B cacheline in the WPQ/XPBuffer (paid by every
    /// cacheline arriving at the device).
    pub buffer_write_64_ns: u64,
    /// `clflush` instruction overhead (beyond the device-side write), which
    /// invalidates the line and stalls the store pipeline.
    pub clflush_ns: u64,
    /// `clwb` instruction overhead: writes back but retains the line.
    pub clwb_ns: u64,
    /// `sfence` / persistence barrier.
    pub sfence_ns: u64,
    /// Non-temporal 64 B store issued by the CPU (bypasses the cache; the
    /// device-side `buffer_write_64_ns` is charged in addition).
    pub nt_store_64_ns: u64,
    /// Hitting a line already resident in the simulated LLC.
    pub cache_hit_ns: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            media_read_256_ns: 300,
            media_write_256_ns: 110,
            buffer_write_64_ns: 55,
            clflush_ns: 200,
            clwb_ns: 90,
            sfence_ns: 25,
            nt_store_64_ns: 40,
            cache_hit_ns: 3,
        }
    }
}

impl LatencyConfig {
    /// A zero-latency model: statistics are still collected but no time is
    /// charged. Useful for pure-correctness tests.
    pub fn zero() -> Self {
        LatencyConfig {
            media_read_256_ns: 0,
            media_write_256_ns: 0,
            buffer_write_64_ns: 0,
            clflush_ns: 0,
            clwb_ns: 0,
            sfence_ns: 0,
            nt_store_64_ns: 0,
            cache_hit_ns: 0,
        }
    }
}

/// Geometry and behaviour of the simulated PMem platform.
#[derive(Debug, Clone)]
pub struct PmemConfig {
    /// Number of DIMMs in the interleave set. The paper's testbed used four
    /// 128 GB Optane PMem 200-series DIMMs in interleaved App Direct mode.
    pub num_dimms: usize,
    /// Capacity of each DIMM in bytes (scaled down from hardware).
    pub dimm_capacity: usize,
    /// Interleaving granularity across DIMMs, 4 KiB on real platforms.
    pub interleave: usize,
    /// Number of XPLine slots in each DIMM's XPBuffer. Characterization
    /// studies place the XPBuffer around 16 KiB, i.e. 64 XPLines.
    pub xpbuffer_slots: usize,
    /// Persistence domain of the platform.
    pub domain: PersistDomain,
    /// Latency model.
    pub latency: LatencyConfig,
}

impl PmemConfig {
    /// Paper-like geometry scaled for simulation: 4 DIMMs x 64 MiB,
    /// 4 KiB interleave, 64-slot XPBuffers, eADR.
    pub fn paper_scaled() -> Self {
        PmemConfig {
            num_dimms: 4,
            dimm_capacity: 64 << 20,
            interleave: 4096,
            xpbuffer_slots: 64,
            domain: PersistDomain::Eadr,
            latency: LatencyConfig::default(),
        }
    }

    /// A small single-DIMM device for unit tests: 1 MiB, 8 XPBuffer slots.
    pub fn small() -> Self {
        PmemConfig {
            num_dimms: 1,
            dimm_capacity: 1 << 20,
            interleave: 4096,
            xpbuffer_slots: 8,
            domain: PersistDomain::Eadr,
            latency: LatencyConfig::zero(),
        }
    }

    /// Total byte capacity across all DIMMs.
    pub fn total_capacity(&self) -> usize {
        self.num_dimms * self.dimm_capacity
    }

    /// Builder-style override of the persistence domain.
    pub fn with_domain(mut self, domain: PersistDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Builder-style override of the latency model.
    pub fn with_latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style override of total capacity, keeping the DIMM count.
    /// `total` is rounded up to a multiple of `num_dimms * interleave`.
    pub fn with_total_capacity(mut self, total: usize) -> Self {
        let unit = self.num_dimms * self.interleave;
        let rounded = total.div_ceil(unit) * unit;
        self.dimm_capacity = rounded / self.num_dimms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaled_geometry() {
        let c = PmemConfig::paper_scaled();
        assert_eq!(c.num_dimms, 4);
        assert_eq!(c.total_capacity(), 256 << 20);
        assert_eq!(c.domain, PersistDomain::Eadr);
    }

    #[test]
    fn capacity_override_rounds_up() {
        let c = PmemConfig::paper_scaled().with_total_capacity(100_000);
        assert!(c.total_capacity() >= 100_000);
        assert_eq!(c.total_capacity() % (c.num_dimms * c.interleave), 0);
    }

    #[test]
    fn zero_latency_is_all_zero() {
        let l = LatencyConfig::zero();
        assert_eq!(l.media_read_256_ns, 0);
        assert_eq!(l.clflush_ns, 0);
    }
}
