//! The interleaved multi-DIMM device front-end.
//!
//! Presents a flat byte-addressable persistent address space, striped across
//! DIMMs at 4 KiB granularity like a real interleaved App Direct namespace.
//! Every write enters the target DIMM's XPBuffer as 64 B cachelines; reads
//! are coherent with buffered data. Statistics and latency charges are
//! applied here so the per-DIMM code stays purely functional.

use crate::clock::Clock;
use crate::config::{PersistDomain, PmemConfig};
use crate::faults::{self, FaultEventKind, FaultObserver, FaultPlan, FaultState, TripReport};
use crate::media::{Dimm, DimmEffects};
use crate::stats::{PmemStats, StatsCell};
use crate::xpbuffer::SlotSnapshot;
use crate::{CACHELINE, SECTORS_PER_XPLINE};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The simulated PMem device. Cheap to share: wrap in `Arc`.
pub struct PmemDevice {
    config: PmemConfig,
    dimms: Vec<Mutex<Dimm>>,
    stats: StatsCell,
    clock: Arc<Clock>,
    faults: FaultState,
}

impl PmemDevice {
    /// Create a device with an accounting-only clock.
    pub fn new(config: PmemConfig) -> Self {
        Self::with_clock(config, Arc::new(Clock::counting()))
    }

    /// Create a device charging latencies to the given clock.
    pub fn with_clock(config: PmemConfig, clock: Arc<Clock>) -> Self {
        let dimms = (0..config.num_dimms)
            .map(|_| Mutex::new(Dimm::new(config.dimm_capacity, config.xpbuffer_slots)))
            .collect();
        PmemDevice {
            config,
            dimms,
            stats: StatsCell::default(),
            clock,
            faults: FaultState::default(),
        }
    }

    /// Rebuild a device from a crash survivor image (one `Vec<u8>` per
    /// DIMM, as produced in a [`TripReport`]). The XPBuffers start empty:
    /// after a power failure everything that survived is on the media.
    pub fn from_media(config: PmemConfig, media: Vec<Vec<u8>>) -> Self {
        assert_eq!(media.len(), config.num_dimms, "image has wrong DIMM count");
        let dimms = media
            .into_iter()
            .map(|m| {
                assert_eq!(
                    m.len(),
                    config.dimm_capacity,
                    "image has wrong DIMM capacity"
                );
                Mutex::new(Dimm::from_media(m, config.xpbuffer_slots))
            })
            .collect();
        PmemDevice {
            config,
            dimms,
            stats: StatsCell::default(),
            clock: Arc::new(Clock::counting()),
            faults: FaultState::default(),
        }
    }

    /// Byte-exact copy of the media as it would survive a power failure
    /// right now (XPBuffer applied — it is inside the persistence domain).
    pub fn clone_media(&self) -> Vec<Vec<u8>> {
        self.dimms
            .iter()
            .map(|dm| {
                let dm = dm.lock();
                let mut media = dm.media().to_vec();
                for s in dm.buffer_snapshot() {
                    Self::apply_slot(&mut media, &s, s.valid_mask);
                }
                media
            })
            .collect()
    }

    /// Total capacity of the flat address space.
    pub fn capacity(&self) -> u64 {
        self.config.total_capacity() as u64
    }

    /// Device configuration.
    pub fn config(&self) -> &PmemConfig {
        &self.config
    }

    /// The clock this device charges.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Persistence domain of the platform.
    pub fn domain(&self) -> PersistDomain {
        self.config.domain
    }

    /// Snapshot of the hardware counters.
    pub fn stats(&self) -> PmemStats {
        self.stats.snapshot()
    }

    /// Zero the hardware counters (e.g., after warm-up).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Map a global address to (dimm index, DIMM-local offset).
    fn locate(&self, addr: u64) -> (usize, u64) {
        debug_assert!(addr < self.capacity(), "address {addr:#x} out of range");
        let il = self.config.interleave as u64;
        let chunk = addr / il;
        let dimm = (chunk % self.config.num_dimms as u64) as usize;
        let local = (chunk / self.config.num_dimms as u64) * il + addr % il;
        (dimm, local)
    }

    fn apply_effects(&self, fx: DimmEffects) {
        let lat = &self.config.latency;
        let s = &self.stats;
        if fx.hits > 0 {
            s.xpbuffer_hits.fetch_add(fx.hits, Ordering::Relaxed);
        }
        if fx.misses > 0 {
            s.xpbuffer_misses.fetch_add(fx.misses, Ordering::Relaxed);
        }
        if fx.media_reads_256 > 0 {
            s.media_read_bytes
                .fetch_add(fx.media_reads_256 * 256, Ordering::Relaxed);
        }
        if fx.media_writes_256 > 0 {
            s.media_write_bytes
                .fetch_add(fx.media_writes_256 * 256, Ordering::Relaxed);
        }
        if fx.rmw_evictions > 0 {
            s.rmw_evictions
                .fetch_add(fx.rmw_evictions, Ordering::Relaxed);
        }
        if fx.full_evictions > 0 {
            s.full_evictions
                .fetch_add(fx.full_evictions, Ordering::Relaxed);
        }
        self.clock.charge(
            fx.media_reads_256 * lat.media_read_256_ns
                + fx.media_writes_256 * lat.media_write_256_ns,
        );
    }

    /// Install a fault plan and arm the event counter (see
    /// [`faults`](crate::faults) for the trip protocol). Replaces any
    /// previous plan and clears a pending report.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.faults.arm(plan);
    }

    /// Disarm fault injection without clearing a captured report.
    pub fn clear_fault_plan(&self) {
        self.faults.disarm();
    }

    /// Persistence events counted since the plan was installed.
    pub fn fault_events(&self) -> u64 {
        self.faults.events()
    }

    /// True from the instant a fault trip is decided. An operation that
    /// completed while this still read `false` fully reached the device
    /// before the crash.
    pub fn fault_tripped(&self) -> bool {
        self.faults.tripped()
    }

    /// Take the report captured by the last trip, if any.
    pub fn take_trip_report(&self) -> Option<TripReport> {
        self.faults
            .report
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Drain the `(event index, context label)` trace recorded by a
    /// [`FaultPlan::traced`] plan. Crash sweeps use a baseline trace to aim
    /// later trips at specific labelled code paths.
    pub fn take_fault_trace(&self) -> Vec<(u64, &'static str)> {
        self.faults.take_trace()
    }

    /// Register the observer run at trip time before the survivor image is
    /// captured (the cache crate uses this for the eADR writeback).
    pub fn set_fault_observer(&self, obs: FaultObserver) {
        *self
            .faults
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(obs);
    }

    /// Count one persistence event; if it is the planned Kth, run the trip
    /// protocol on this thread.
    fn fault_event(&self, kind: FaultEventKind) {
        if let Some(event_index) = self.faults.record() {
            self.trip(event_index, kind);
        }
    }

    /// Trip protocol: observer (eADR cache writeback flows into the still
    /// writable device), then survivor-image capture, then black hole.
    /// Called with no DIMM lock held.
    fn trip(&self, event_index: u64, kind: FaultEventKind) {
        if let Some(obs) = self
            .faults
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            obs();
        }
        let plan = self
            .faults
            .plan
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .expect("tripped without a plan");
        let media = self.capture_media(&plan);
        *self.faults.report.lock().unwrap_or_else(|e| e.into_inner()) = Some(TripReport {
            event_index,
            kind,
            context: faults::current_context(),
            media,
        });
        self.faults.finish_capture();
    }

    /// Clone each DIMM's media and apply its XPBuffer according to the
    /// plan's survivability policy.
    fn capture_media(&self, plan: &FaultPlan) -> Vec<Vec<u8>> {
        self.dimms
            .iter()
            .enumerate()
            .map(|(di, dm)| {
                let dm = dm.lock();
                let mut media = dm.media().to_vec();
                let slots = dm.buffer_snapshot();
                if !plan.drop_xpbuffer {
                    // WPQ/XPBuffer is power-fail protected: apply everything.
                    for s in &slots {
                        Self::apply_slot(&mut media, s, s.valid_mask);
                    }
                } else if plan.tear_inflight {
                    // Torn platform: only the in-flight (most recent) XPLine
                    // partially lands, sectors chosen by the plan seed.
                    if let Some(newest) = slots.iter().max_by_key(|s| s.tick) {
                        let keep = faults::torn_sector_mask(plan.seed, di, newest.line)
                            & newest.valid_mask;
                        Self::apply_slot(&mut media, newest, keep);
                    }
                }
                media
            })
            .collect()
    }

    fn apply_slot(media: &mut [u8], s: &SlotSnapshot, mask: u8) {
        for sector in 0..SECTORS_PER_XPLINE {
            if mask & (1 << sector) != 0 {
                let lo = sector * CACHELINE;
                let base = s.line as usize + lo;
                media[base..base + CACHELINE].copy_from_slice(&s.data[lo..lo + CACHELINE]);
            }
        }
    }

    /// Hand one 64 B cacheline to the device (the unit at which the CPU
    /// cache hierarchy writes back / flushes / NT-stores). `addr` must be
    /// 64 B aligned.
    pub fn write_cacheline(&self, addr: u64, data: &[u8; CACHELINE]) {
        assert_eq!(
            addr % CACHELINE as u64,
            0,
            "unaligned cacheline address {addr:#x}"
        );
        if self.faults.blackholed() {
            return; // power is out: the write is lost
        }
        let (di, off) = self.locate(addr);
        self.stats.cpu_writes.fetch_add(1, Ordering::Relaxed);
        self.clock.charge(self.config.latency.buffer_write_64_ns);
        let fx = self.dimms[di].lock().write_cacheline(off, data);
        self.apply_effects(fx);
        self.fault_event(FaultEventKind::CachelineWrite);
        if fx.full_evictions + fx.rmw_evictions > 0 {
            self.fault_event(FaultEventKind::Eviction);
        }
    }

    /// Write an arbitrary byte range. Interior full cachelines are streamed
    /// directly; unaligned edges are completed by reading the surrounding
    /// cacheline first (what a real CPU's store path does transparently).
    pub fn write(&self, addr: u64, data: &[u8]) {
        let mut cur = addr;
        let end = addr + data.len() as u64;
        while cur < end {
            let line = cur & !(CACHELINE as u64 - 1);
            let lo = (cur - line) as usize;
            let hi = CACHELINE.min((end - line) as usize);
            let mut cl = [0u8; CACHELINE];
            if lo != 0 || hi != CACHELINE {
                self.read_quiet(line, &mut cl);
            }
            let src_off = (cur - addr) as usize;
            cl[lo..hi].copy_from_slice(&data[src_off..src_off + (hi - lo)]);
            self.write_cacheline(line, &cl);
            cur = line + CACHELINE as u64;
        }
    }

    /// Read `buf.len()` bytes from `addr`, charging media read latency.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let lines = self.read_inner(addr, buf);
        self.clock
            .charge(lines * self.config.latency.media_read_256_ns);
        self.stats
            .media_read_bytes
            .fetch_add(lines * 256, Ordering::Relaxed);
    }

    /// Read without stats or latency (internal RMW edge completion).
    fn read_quiet(&self, addr: u64, buf: &mut [u8]) {
        self.read_inner(addr, buf);
    }

    /// Returns the number of XPLines touched.
    fn read_inner(&self, addr: u64, buf: &mut [u8]) -> u64 {
        if buf.is_empty() {
            return 0;
        }
        let il = self.config.interleave as u64;
        let mut lines = 0;
        let mut cur = addr;
        let end = addr + buf.len() as u64;
        while cur < end {
            // Stay within one interleave chunk (one DIMM) per step.
            let chunk_end = (cur / il + 1) * il;
            let stop = chunk_end.min(end);
            let (di, off) = self.locate(cur);
            let dst = &mut buf[(cur - addr) as usize..(stop - addr) as usize];
            lines += self.dimms[di].lock().read(off, dst);
            cur = stop;
        }
        lines
    }

    /// Persistence barrier (`sfence`). The WPQ/XPBuffer are already inside
    /// the persistence domain, so this only charges the fence cost.
    pub fn persist_barrier(&self) {
        self.clock.charge(self.config.latency.sfence_ns);
        self.fault_event(FaultEventKind::Barrier);
    }

    /// Flush every XPBuffer to the media (used by tests and by power-fail).
    pub fn drain(&self) {
        if self.faults.blackholed() {
            return;
        }
        for d in &self.dimms {
            let fx = d.lock().drain();
            self.apply_effects(fx);
        }
        self.fault_event(FaultEventKind::Drain);
    }

    /// Simulate a power failure *at the device level*: everything already
    /// handed to the device (WPQ/XPBuffer) reaches the media, regardless of
    /// the platform's ADR/eADR mode. The cache hierarchy decides separately
    /// whether CPU cache contents make it here (eADR) or are lost (ADR).
    pub fn power_fail(&self) {
        self.stats.power_failures.fetch_add(1, Ordering::Relaxed);
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyConfig;

    fn dev() -> PmemDevice {
        PmemDevice::new(PmemConfig::small())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let d = dev();
        let data = [0x5Au8; 64];
        d.write_cacheline(4096, &data);
        let mut out = [0u8; 64];
        d.read(4096, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn unaligned_write_roundtrip() {
        let d = dev();
        let payload: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        d.write(100, &payload);
        let mut out = vec![0u8; 200];
        d.read(100, &mut out);
        assert_eq!(out, payload);
    }

    #[test]
    fn interleaving_maps_distinct_dimms() {
        let cfg = PmemConfig {
            num_dimms: 4,
            dimm_capacity: 1 << 20,
            ..PmemConfig::paper_scaled()
        };
        let d = PmemDevice::new(cfg);
        let (d0, _) = d.locate(0);
        let (d1, _) = d.locate(4096);
        let (d2, _) = d.locate(8192);
        let (d4, o4) = d.locate(4 * 4096);
        assert_eq!(d0, 0);
        assert_eq!(d1, 1);
        assert_eq!(d2, 2);
        assert_eq!(d4, 0, "wraps back to DIMM 0");
        assert_eq!(o4, 4096, "second chunk on DIMM 0");
    }

    #[test]
    fn cross_dimm_read_roundtrip() {
        let cfg = PmemConfig {
            num_dimms: 2,
            dimm_capacity: 1 << 20,
            ..PmemConfig::paper_scaled()
        };
        let d = PmemDevice::new(cfg);
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        d.write(1024, &payload); // spans the 4096 interleave boundary
        let mut out = vec![0u8; 8192];
        d.read(1024, &mut out);
        assert_eq!(out, payload);
    }

    #[test]
    fn sequential_stream_has_high_hit_ratio() {
        let d = dev();
        for i in 0..1024u64 {
            d.write_cacheline(i * 64, &[1u8; 64]);
        }
        let s = d.stats();
        // 4 sectors per line: 1 miss + 3 hits each => 75%.
        assert!(
            (s.write_hit_ratio() - 0.75).abs() < 0.01,
            "got {}",
            s.write_hit_ratio()
        );
    }

    #[test]
    fn scattered_stream_has_low_hit_ratio_and_amplifies() {
        let d = dev();
        // Touch one cacheline per XPLine over a region far larger than the
        // 8-slot XPBuffer: every write opens a new slot, evictions are RMW.
        for i in 0..1024u64 {
            d.write_cacheline(i * 256, &[1u8; 64]);
        }
        d.drain();
        let s = d.stats();
        assert_eq!(s.xpbuffer_hits, 0);
        assert!(
            s.write_amplification() >= 3.9,
            "amp {}",
            s.write_amplification()
        );
        assert_eq!(s.rmw_evictions, 1024);
    }

    #[test]
    fn power_fail_persists_buffered_writes() {
        let d = dev();
        d.write_cacheline(0, &[0xCD; 64]);
        d.power_fail();
        let mut out = [0u8; 64];
        d.read(0, &mut out);
        assert_eq!(out, [0xCD; 64]);
        assert_eq!(d.stats().power_failures, 1);
    }

    #[test]
    fn latency_charging_counts() {
        let cfg = PmemConfig::small().with_latency(LatencyConfig::default());
        let d = PmemDevice::new(cfg);
        d.write_cacheline(0, &[0u8; 64]);
        let after_write = d.clock().total_ns();
        assert_eq!(after_write, d.config().latency.buffer_write_64_ns);
        let mut out = [0u8; 64];
        d.read(0, &mut out);
        assert_eq!(
            d.clock().total_ns(),
            after_write + d.config().latency.media_read_256_ns
        );
    }

    #[test]
    fn reset_stats_zeroes() {
        let d = dev();
        d.write_cacheline(0, &[0u8; 64]);
        d.reset_stats();
        assert_eq!(d.stats(), PmemStats::default());
    }

    #[test]
    fn fault_trips_after_kth_event_and_blackholes() {
        let d = dev();
        d.install_fault_plan(FaultPlan::at(2));
        d.write_cacheline(0, &[1u8; 64]);
        assert!(!d.fault_tripped());
        d.write_cacheline(64, &[2u8; 64]);
        assert!(d.fault_tripped());
        // Post-trip writes are lost; reads still work on the live state.
        d.write_cacheline(128, &[3u8; 64]);
        let mut out = [0u8; 64];
        d.read(128, &mut out);
        assert_eq!(out, [0u8; 64], "blackholed write must not land");

        let report = d.take_trip_report().expect("trip captured a report");
        assert_eq!(report.event_index, 2);
        assert_eq!(report.kind, FaultEventKind::CachelineWrite);
        let r = PmemDevice::from_media(d.config().clone(), report.media);
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        let mut c = [0u8; 64];
        r.read(0, &mut a);
        r.read(64, &mut b);
        r.read(128, &mut c);
        assert_eq!(a, [1u8; 64], "event 1 survived");
        assert_eq!(b, [2u8; 64], "the tripping event itself completed");
        assert_eq!(c, [0u8; 64], "post-trip write is not in the image");
    }

    #[test]
    fn fault_counting_is_deterministic_and_reproducible() {
        let run = |plan: FaultPlan| -> (u64, Vec<Vec<u8>>) {
            let d = dev();
            d.install_fault_plan(plan);
            for i in 0..200u64 {
                d.write_cacheline((i * 64) % 4096, &[i as u8; 64]);
            }
            d.persist_barrier();
            d.drain();
            match d.take_trip_report() {
                Some(r) => (r.event_index, r.media),
                None => (d.fault_events(), d.clone_media()),
            }
        };
        let (total, _) = run(FaultPlan::count_only());
        assert!(total > 200, "writes + evictions + barrier + drain");
        let (e1, m1) = run(FaultPlan::at(57));
        let (e2, m2) = run(FaultPlan::at(57));
        assert_eq!(e1, 57);
        assert_eq!(e1, e2);
        assert_eq!(m1, m2, "same plan => byte-identical survivor image");
    }

    #[test]
    fn torn_plan_drops_unevicted_lines_and_tears_deterministically() {
        let run = || {
            let d = dev();
            d.install_fault_plan(FaultPlan::torn(4, 99));
            // Three cachelines into distinct XPLines; small() has 8 slots so
            // nothing evicts — all three are still staged at the trip.
            d.write_cacheline(0, &[0xAA; 64]);
            d.write_cacheline(256, &[0xBB; 64]);
            d.write_cacheline(512, &[0xCC; 64]);
            d.persist_barrier(); // event 4: trip
            d.take_trip_report().expect("tripped").media
        };
        let m1 = run();
        let m2 = run();
        assert_eq!(m1, m2, "torn capture is deterministic");
        // Only the in-flight (newest) line may have landed, and only the
        // sectors chosen by the seed; the older staged lines are gone.
        assert!(
            m1[0][0..64].iter().all(|&b| b == 0),
            "older staged line dropped"
        );
        assert!(
            m1[0][256..320].iter().all(|&b| b == 0),
            "older staged line dropped"
        );
        let keep = crate::faults::torn_sector_mask(99, 0, 512) & 0b0001;
        let expect = if keep != 0 { 0xCC } else { 0 };
        assert!(
            m1[0][512..576].iter().all(|&b| b == expect),
            "tear follows the seed mask"
        );
    }

    #[test]
    fn barrier_and_drain_count_as_events() {
        let d = dev();
        d.install_fault_plan(FaultPlan::count_only());
        d.persist_barrier();
        d.drain();
        assert_eq!(d.fault_events(), 2);
    }

    #[test]
    fn from_media_roundtrips_clone_media() {
        let d = dev();
        d.write(100, &[7u8; 500]); // spans XPLines, leaves staged slots
        let image = d.clone_media();
        let r = PmemDevice::from_media(d.config().clone(), image);
        let mut out = vec![0u8; 500];
        r.read(100, &mut out);
        assert!(
            out.iter().all(|&b| b == 7),
            "staged slots applied to the image"
        );
    }
}
