//! Deterministic fault injection: crash the device at the Kth persistence
//! event.
//!
//! A [`FaultPlan`] installed on a [`PmemDevice`](crate::PmemDevice) counts
//! *persistence events* — cacheline writes handed to the device, XPBuffer
//! evictions, explicit drains, and persistence barriers — and simulates a
//! power failure immediately after the Kth event completes. The trip
//! protocol runs entirely on the thread that triggered the event:
//!
//! 1. **Armed → Capturing**: the winning thread CASes the phase so no other
//!    event can trip again. From this moment [`tripped`] observers see the
//!    crash, so an operation that returned *before* the trip is known to
//!    have fully reached the device.
//! 2. The registered observer runs (under eADR the cache hierarchy writes
//!    back every dirty LLC line — the caches are inside the persistence
//!    domain, so their contents belong in the crash image).
//! 3. The per-DIMM media is cloned and the XPBuffer applied according to the
//!    plan's policy, producing the byte-exact *survivor image* stored in a
//!    [`TripReport`].
//! 4. **Capturing → Tripped**: the device becomes a *black hole* — writes
//!    are silently dropped ("the power is out") but reads keep working, so
//!    in-flight background threads terminate normally instead of
//!    deadlocking. The crashed process is then discarded and recovery runs
//!    against a fresh device rebuilt from the survivor image.
//!
//! XPBuffer policy models two platforms:
//! - default (ADR and eADR): the WPQ/XPBuffer is inside the persistence
//!   domain, so every staged sector is applied — identical to what
//!   [`power_fail`](crate::PmemDevice::power_fail) guarantees;
//! - torn mode ([`FaultPlan::torn`]): staged-but-unevicted XPLines are
//!   dropped and the most recently touched line is *torn* — only a
//!   seed-chosen subset of its staged sectors reaches the media — modelling
//!   a platform whose flush-on-fail did not complete. Guarantees are weaker
//!   here; recovery must merely never fabricate data or crash.
//!
//! [`tripped`]: crate::PmemDevice::fault_tripped

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// The classes of persistence events a [`FaultPlan`] counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// One 64 B cacheline handed to the device.
    CachelineWrite,
    /// One XPLine pushed from the XPBuffer to the media.
    Eviction,
    /// An explicit XPBuffer drain.
    Drain,
    /// A persistence barrier (`sfence`).
    Barrier,
}

/// When and how to crash. Install with
/// [`PmemDevice::install_fault_plan`](crate::PmemDevice::install_fault_plan).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// 1-based persistence-event index to crash after. `u64::MAX` never
    /// trips — useful for counting the total events of a workload.
    pub trip_at: u64,
    /// Discard un-evicted XPBuffer slots from the crash image instead of
    /// applying them (torn-platform mode; see module docs).
    pub drop_xpbuffer: bool,
    /// With `drop_xpbuffer`: partially apply the most recently touched
    /// XPLine, tearing it at sector granularity.
    pub tear_inflight: bool,
    /// Drives the deterministic choice of torn sectors.
    pub seed: u64,
    /// Record `(event index, fault-context label)` for every event counted
    /// on a thread inside a [`fault_context`] scope. Crash sweeps use the
    /// trace of a baseline run to aim follow-up trips at specific code
    /// paths (copy-flush, L0 dump, log reset, ...).
    pub trace: bool,
}

impl FaultPlan {
    /// Crash after the `k`th persistence event; the XPBuffer survives
    /// (standard ADR/eADR device semantics).
    pub fn at(k: u64) -> Self {
        FaultPlan {
            trip_at: k,
            drop_xpbuffer: false,
            tear_inflight: false,
            seed: 0,
            trace: false,
        }
    }

    /// Never crash; just count events (read back via
    /// [`fault_events`](crate::PmemDevice::fault_events)).
    pub fn count_only() -> Self {
        Self::at(u64::MAX)
    }

    /// Crash after the `k`th event on a torn platform: un-evicted XPBuffer
    /// contents are lost and the in-flight XPLine is torn by `seed`.
    pub fn torn(k: u64, seed: u64) -> Self {
        FaultPlan {
            trip_at: k,
            drop_xpbuffer: true,
            tear_inflight: true,
            seed,
            trace: false,
        }
    }

    /// Enable context tracing (see the `trace` field).
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Everything known about a trip, including the byte-exact survivor image.
#[derive(Clone)]
pub struct TripReport {
    /// The 1-based event index that tripped (equals the plan's `trip_at`).
    pub event_index: u64,
    /// The kind of the triggering event.
    pub kind: FaultEventKind,
    /// The fault-context label stack of the tripping thread, outermost
    /// first (see [`fault_context`]).
    pub context: Vec<&'static str>,
    /// Per-DIMM media contents that survive the crash. Feed to
    /// [`PmemDevice::from_media`](crate::PmemDevice::from_media) to reopen.
    pub media: Vec<Vec<u8>>,
}

impl std::fmt::Debug for TripReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TripReport")
            .field("event_index", &self.event_index)
            .field("kind", &self.kind)
            .field("context", &self.context)
            .field("media_dimms", &self.media.len())
            .finish()
    }
}

/// Phase machine: see module docs.
pub(crate) const PHASE_DISARMED: u8 = 0;
pub(crate) const PHASE_ARMED: u8 = 1;
pub(crate) const PHASE_CAPTURING: u8 = 2;
pub(crate) const PHASE_TRIPPED: u8 = 3;

/// Observer invoked at trip time, before the survivor image is captured.
/// The cache crate registers the eADR writeback here.
pub type FaultObserver = Box<dyn Fn() + Send + Sync>;

/// Per-device fault state. All fast-path reads are a single atomic load.
pub(crate) struct FaultState {
    phase: AtomicU8,
    trip_at: AtomicU64,
    counter: AtomicU64,
    tracing: AtomicBool,
    pub(crate) plan: Mutex<Option<FaultPlan>>,
    pub(crate) observer: Mutex<Option<FaultObserver>>,
    pub(crate) report: Mutex<Option<TripReport>>,
    pub(crate) trace: Mutex<Vec<(u64, &'static str)>>,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            phase: AtomicU8::new(PHASE_DISARMED),
            trip_at: AtomicU64::new(0),
            counter: AtomicU64::new(0),
            tracing: AtomicBool::new(false),
            plan: Mutex::new(None),
            observer: Mutex::new(None),
            report: Mutex::new(None),
            trace: Mutex::new(Vec::new()),
        }
    }
}

impl FaultState {
    pub(crate) fn arm(&self, plan: FaultPlan) {
        // Order matters: publish the threshold before opening the gate.
        self.counter.store(0, Ordering::SeqCst);
        self.trip_at.store(plan.trip_at, Ordering::SeqCst);
        self.tracing.store(plan.trace, Ordering::SeqCst);
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).clear();
        *self.plan.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
        *self.report.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.phase.store(PHASE_ARMED, Ordering::SeqCst);
    }

    pub(crate) fn disarm(&self) {
        self.phase.store(PHASE_DISARMED, Ordering::SeqCst);
        self.tracing.store(false, Ordering::SeqCst);
        *self.plan.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Count one event. Returns `Some(event_index)` iff the calling thread
    /// won the trip and must now run capture.
    pub(crate) fn record(&self) -> Option<u64> {
        if self.phase.load(Ordering::Acquire) != PHASE_ARMED {
            return None;
        }
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if self.tracing.load(Ordering::Relaxed) {
            if let Some(&label) = FAULT_CONTEXT.with(|c| c.borrow().last().copied()).as_ref() {
                self.trace
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((n, label));
            }
        }
        if n >= self.trip_at.load(Ordering::SeqCst)
            && self
                .phase
                .compare_exchange(
                    PHASE_ARMED,
                    PHASE_CAPTURING,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
        {
            return Some(n);
        }
        None
    }

    pub(crate) fn finish_capture(&self) {
        self.phase.store(PHASE_TRIPPED, Ordering::SeqCst);
    }

    /// True from the instant a trip is decided (including during capture).
    pub(crate) fn tripped(&self) -> bool {
        self.phase.load(Ordering::SeqCst) >= PHASE_CAPTURING
    }

    /// True once the device has become a black hole for writes.
    pub(crate) fn blackholed(&self) -> bool {
        self.phase.load(Ordering::Acquire) == PHASE_TRIPPED
    }

    pub(crate) fn events(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Drain the context trace recorded so far (traced plans only).
    pub(crate) fn take_trace(&self) -> Vec<(u64, &'static str)> {
        std::mem::take(&mut self.trace.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Deterministic sector-subset choice for torn XPLines: a SplitMix64 draw
/// keyed by (seed, dimm, line). The same plan always tears the same way.
pub(crate) fn torn_sector_mask(seed: u64, dimm: usize, line: u64) -> u8 {
    let mut z = seed ^ (dimm as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ line;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u8 & 0x0F
}

thread_local! {
    static FAULT_CONTEXT: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII label marking the current thread as being inside a named crash
/// site (e.g. `"cachekv::copy_flush"`). If a fault trips on this thread
/// while the guard lives, the label stack is recorded in the
/// [`TripReport`], letting crash sweeps prove they hit specific code paths.
pub fn fault_context(label: &'static str) -> FaultContextGuard {
    FAULT_CONTEXT.with(|c| c.borrow_mut().push(label));
    FaultContextGuard { _priv: () }
}

/// Guard returned by [`fault_context`]; pops the label on drop.
pub struct FaultContextGuard {
    _priv: (),
}

impl Drop for FaultContextGuard {
    fn drop(&mut self) {
        FAULT_CONTEXT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The tripping thread's current label stack, outermost first.
pub(crate) fn current_context() -> Vec<&'static str> {
    FAULT_CONTEXT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_trips_exactly_once_at_threshold() {
        let st = FaultState::default();
        st.arm(FaultPlan::at(3));
        assert_eq!(st.record(), None);
        assert_eq!(st.record(), None);
        assert!(!st.tripped());
        assert_eq!(st.record(), Some(3));
        assert!(st.tripped());
        assert!(!st.blackholed(), "capturing, not yet blackholed");
        st.finish_capture();
        assert!(st.blackholed());
        assert_eq!(st.record(), None, "no double trip");
    }

    #[test]
    fn count_only_never_trips() {
        let st = FaultState::default();
        st.arm(FaultPlan::count_only());
        for _ in 0..10_000 {
            assert_eq!(st.record(), None);
        }
        assert_eq!(st.events(), 10_000);
        assert!(!st.tripped());
    }

    #[test]
    fn disarmed_records_nothing() {
        let st = FaultState::default();
        assert_eq!(st.record(), None);
        assert_eq!(st.events(), 0);
    }

    #[test]
    fn torn_mask_is_deterministic_and_varies() {
        assert_eq!(torn_sector_mask(7, 0, 256), torn_sector_mask(7, 0, 256));
        let distinct: std::collections::HashSet<u8> = (0..64u64)
            .map(|l| torn_sector_mask(7, 0, l * 256))
            .collect();
        assert!(distinct.len() > 4, "masks should vary across lines");
    }

    #[test]
    fn traced_plan_records_labelled_events() {
        let st = FaultState::default();
        st.arm(FaultPlan::count_only().traced());
        st.record(); // unlabelled: not traced
        {
            let _g = fault_context("phase-a");
            st.record();
            st.record();
        }
        st.record(); // unlabelled again
        assert_eq!(st.take_trace(), vec![(2, "phase-a"), (3, "phase-a")]);
        assert_eq!(st.events(), 4, "tracing never changes the count");
    }

    #[test]
    fn context_stack_nests_and_unwinds() {
        assert!(current_context().is_empty());
        {
            let _a = fault_context("outer");
            {
                let _b = fault_context("inner");
                assert_eq!(current_context(), vec!["outer", "inner"]);
            }
            assert_eq!(current_context(), vec!["outer"]);
        }
        assert!(current_context().is_empty());
    }
}
