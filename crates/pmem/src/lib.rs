//! Simulated Intel Optane DC Persistent Memory device.
//!
//! This crate models the two Optane PMem characteristics the CacheKV paper
//! (ICDE 2023) builds on:
//!
//! 1. **Mismatch of access granularities** — the device media is written in
//!    256 B *XPLines* while the CPU emits 64 B cachelines. An on-DIMM
//!    write-combining buffer (the *XPBuffer*) stages incoming cachelines and
//!    merges those belonging to the same XPLine; a partially-filled XPLine
//!    must be completed with a read-modify-write, amplifying write traffic.
//! 2. **Persistence domains** — under ADR only the write-pending queue and
//!    the media are power-fail protected; under eADR the CPU caches are too.
//!    The cache side of eADR is modelled by the `cachekv-cache` crate; this
//!    crate guarantees that anything handed to the device (WPQ/XPBuffer)
//!    survives [`PmemDevice::power_fail`].
//!
//! The device exposes hardware-counter style statistics ([`PmemStats`]),
//! including the *write hit ratio* metric used throughout the paper's
//! Observation 1 (Figure 4), and charges simulated latencies to a [`Clock`]
//! so that full-system benchmarks reproduce the paper's performance shapes.
//!
//! # Example
//!
//! ```
//! use cachekv_pmem::{PmemConfig, PmemDevice};
//!
//! let dev = PmemDevice::new(PmemConfig::small());
//! // Stream one full XPLine in flush order: 1 miss (opens the slot) + 3 hits.
//! for i in 0..4u64 {
//!     dev.write_cacheline(i * 64, &[0xAB; 64]);
//! }
//! dev.drain();
//! let stats = dev.stats();
//! assert_eq!(stats.xpbuffer_hits, 3);
//! assert_eq!(stats.xpbuffer_misses, 1);
//! // The fully populated XPLine was written without a read-modify-write.
//! assert_eq!(stats.media_read_bytes, 0);
//! assert_eq!(stats.media_write_bytes, 256);
//! ```

pub mod clock;
pub mod config;
pub mod device;
pub mod faults;
pub mod media;
pub mod stats;
pub mod xpbuffer;

pub use clock::{Clock, ClockMode};
pub use config::{LatencyConfig, PersistDomain, PmemConfig};
pub use device::PmemDevice;
pub use faults::{fault_context, FaultEventKind, FaultPlan, TripReport};
pub use stats::PmemStats;

/// Size of a CPU cacheline in bytes: the granularity at which the CPU hands
/// data to the memory subsystem.
pub const CACHELINE: usize = 64;

/// Size of an XPLine in bytes: the constant access granularity of the Optane
/// PMem media (Section II-B, Feature 1 of the paper).
pub const XPLINE: usize = 256;

/// Number of cacheline-sized sectors per XPLine.
pub const SECTORS_PER_XPLINE: usize = XPLINE / CACHELINE;
