//! One DIMM: 3D-XPoint media plus its XPBuffer.

use crate::xpbuffer::{Eviction, XpBuffer};
use crate::{CACHELINE, XPLINE};

/// A single simulated DIMM. The device wraps each in a mutex; methods here
/// assume exclusive access.
pub struct Dimm {
    media: Vec<u8>,
    buffer: XpBuffer,
}

/// Accounting outcome for a DIMM-level operation, consumed by the device to
/// update counters and charge latency.
#[derive(Debug, Default, Clone, Copy)]
pub struct DimmEffects {
    pub hits: u64,
    pub misses: u64,
    pub media_reads_256: u64,
    pub media_writes_256: u64,
    pub rmw_evictions: u64,
    pub full_evictions: u64,
}

impl DimmEffects {
    fn absorb(&mut self, ev: Eviction) {
        self.media_writes_256 += 1;
        match ev {
            Eviction::Full => self.full_evictions += 1,
            Eviction::ReadModifyWrite => {
                self.rmw_evictions += 1;
                self.media_reads_256 += 1;
            }
        }
    }
}

impl Dimm {
    /// Create a DIMM with `capacity` bytes of zeroed media and an XPBuffer of
    /// `xpbuffer_slots` XPLines.
    pub fn new(capacity: usize, xpbuffer_slots: usize) -> Self {
        assert_eq!(capacity % XPLINE, 0, "capacity must be XPLine aligned");
        Dimm {
            media: vec![0u8; capacity],
            buffer: XpBuffer::new(xpbuffer_slots),
        }
    }

    /// Rebuild a DIMM around existing media contents (crash-image reopen).
    /// The XPBuffer starts empty.
    pub fn from_media(media: Vec<u8>, xpbuffer_slots: usize) -> Self {
        assert_eq!(media.len() % XPLINE, 0, "capacity must be XPLine aligned");
        Dimm {
            media,
            buffer: XpBuffer::new(xpbuffer_slots),
        }
    }

    /// Raw media contents, *excluding* anything staged in the XPBuffer.
    pub fn media(&self) -> &[u8] {
        &self.media
    }

    /// Snapshot of the open XPBuffer slots (fault-injection capture).
    pub fn buffer_snapshot(&self) -> Vec<crate::xpbuffer::SlotSnapshot> {
        self.buffer.snapshot()
    }

    /// DIMM capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.media.len()
    }

    /// Stage one cacheline at DIMM-local offset `off`.
    pub fn write_cacheline(&mut self, off: u64, data: &[u8; CACHELINE]) -> DimmEffects {
        assert!(
            off as usize + CACHELINE <= self.media.len(),
            "write past DIMM end"
        );
        let outcome = self.buffer.write_cacheline(off, data, &mut self.media);
        let mut fx = DimmEffects::default();
        if outcome.hit {
            fx.hits = 1;
        } else {
            fx.misses = 1;
        }
        if let Some(ev) = outcome.evicted {
            fx.absorb(ev);
        }
        fx
    }

    /// Read `buf.len()` bytes at DIMM-local offset `off`, coherent with any
    /// pending XPBuffer contents. Returns the number of 256 B media reads
    /// charged (one per touched XPLine).
    pub fn read(&self, off: u64, buf: &mut [u8]) -> u64 {
        let end = off as usize + buf.len();
        assert!(end <= self.media.len(), "read past DIMM end");
        buf.copy_from_slice(&self.media[off as usize..end]);
        self.buffer.overlay_reads(off, buf);
        let first = off / XPLINE as u64;
        let last = (off + buf.len().max(1) as u64 - 1) / XPLINE as u64;
        last - first + 1
    }

    /// Flush the XPBuffer to the media (power-fail drain).
    pub fn drain(&mut self) -> DimmEffects {
        let mut fx = DimmEffects::default();
        for ev in self.buffer.drain(&mut self.media) {
            fx.absorb(ev);
        }
        fx
    }

    /// Number of open XPBuffer slots (for tests).
    pub fn buffered_lines(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sees_buffered_data_before_drain() {
        let mut d = Dimm::new(4096, 4);
        d.write_cacheline(128, &[9u8; CACHELINE]);
        let mut out = [0u8; 64];
        d.read(128, &mut out);
        assert_eq!(out, [9u8; 64]);
    }

    #[test]
    fn read_charges_per_xpline() {
        let d = Dimm::new(4096, 4);
        let mut out = vec![0u8; 300];
        // [100, 400) touches XPLines 0 and 1.
        assert_eq!(d.read(100, &mut out), 2);
        let mut one = [0u8; 1];
        assert_eq!(d.read(0, &mut one), 1);
    }

    #[test]
    fn drain_then_media_holds_data() {
        let mut d = Dimm::new(4096, 4);
        d.write_cacheline(0, &[3u8; CACHELINE]);
        let fx = d.drain();
        assert_eq!(fx.media_writes_256, 1);
        assert_eq!(fx.rmw_evictions, 1, "single sector forces RMW");
        assert_eq!(d.buffered_lines(), 0);
        let mut out = [0u8; 64];
        d.read(0, &mut out);
        assert_eq!(out, [3u8; 64]);
    }

    #[test]
    #[should_panic(expected = "write past DIMM end")]
    fn out_of_bounds_write_panics() {
        let mut d = Dimm::new(256, 2);
        d.write_cacheline(256, &[0u8; CACHELINE]);
    }
}
