//! Hardware-counter style statistics for the simulated device.
//!
//! Mirrors what Intel PMWatch exposes on real Optane DIMMs and what the paper
//! measures: cacheline arrivals, XPBuffer hit/miss, and media read/write
//! traffic, from which the *write hit ratio* (Figure 4) and *write
//! amplification* are derived.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, one set per device (aggregated across DIMMs).
#[derive(Debug, Default)]
pub struct StatsCell {
    /// Number of 64 B cachelines the CPU side handed to the device.
    pub cpu_writes: AtomicU64,
    /// Cacheline writes that landed in an already-open XPLine slot.
    pub xpbuffer_hits: AtomicU64,
    /// Cacheline writes that had to open a new XPLine slot.
    pub xpbuffer_misses: AtomicU64,
    /// Bytes read from the media (RMW completions and load misses).
    pub media_read_bytes: AtomicU64,
    /// Bytes written to the media (always multiples of 256).
    pub media_write_bytes: AtomicU64,
    /// XPLine evictions that needed a read-modify-write (partial line).
    pub rmw_evictions: AtomicU64,
    /// XPLine evictions with all four sectors dirty (no RMW needed).
    pub full_evictions: AtomicU64,
    /// Number of read operations served by the device.
    pub reads: AtomicU64,
    /// Power failures injected on this device.
    pub power_failures: AtomicU64,
}

impl StatsCell {
    /// Take an immutable snapshot of the counters.
    pub fn snapshot(&self) -> PmemStats {
        PmemStats {
            cpu_writes: self.cpu_writes.load(Ordering::Relaxed),
            xpbuffer_hits: self.xpbuffer_hits.load(Ordering::Relaxed),
            xpbuffer_misses: self.xpbuffer_misses.load(Ordering::Relaxed),
            media_read_bytes: self.media_read_bytes.load(Ordering::Relaxed),
            media_write_bytes: self.media_write_bytes.load(Ordering::Relaxed),
            rmw_evictions: self.rmw_evictions.load(Ordering::Relaxed),
            full_evictions: self.full_evictions.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            power_failures: self.power_failures.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (e.g., after a warm-up phase).
    pub fn reset(&self) {
        self.cpu_writes.store(0, Ordering::Relaxed);
        self.xpbuffer_hits.store(0, Ordering::Relaxed);
        self.xpbuffer_misses.store(0, Ordering::Relaxed);
        self.media_read_bytes.store(0, Ordering::Relaxed);
        self.media_write_bytes.store(0, Ordering::Relaxed);
        self.rmw_evictions.store(0, Ordering::Relaxed);
        self.full_evictions.store(0, Ordering::Relaxed);
        self.reads.store(0, Ordering::Relaxed);
        self.power_failures.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time snapshot of device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStats {
    pub cpu_writes: u64,
    pub xpbuffer_hits: u64,
    pub xpbuffer_misses: u64,
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    pub rmw_evictions: u64,
    pub full_evictions: u64,
    pub reads: u64,
    pub power_failures: u64,
}

impl PmemStats {
    /// Fraction of cacheline writes that hit the XPBuffer — the metric of
    /// the paper's Figure 4. Returns 0.0 when no writes occurred.
    pub fn write_hit_ratio(&self) -> f64 {
        let total = self.xpbuffer_hits + self.xpbuffer_misses;
        if total == 0 {
            0.0
        } else {
            self.xpbuffer_hits as f64 / total as f64
        }
    }

    /// Bytes written to the media per byte the CPU wrote; >= 1.0 in steady
    /// state (1.0 means perfect write combining, 4.0 means every cacheline
    /// cost a whole XPLine). Returns 0.0 when nothing was written.
    pub fn write_amplification(&self) -> f64 {
        let cpu_bytes = self.cpu_writes * crate::CACHELINE as u64;
        if cpu_bytes == 0 {
            0.0
        } else {
            self.media_write_bytes as f64 / cpu_bytes as f64
        }
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn delta_since(&self, earlier: &PmemStats) -> PmemStats {
        PmemStats {
            cpu_writes: self.cpu_writes - earlier.cpu_writes,
            xpbuffer_hits: self.xpbuffer_hits - earlier.xpbuffer_hits,
            xpbuffer_misses: self.xpbuffer_misses - earlier.xpbuffer_misses,
            media_read_bytes: self.media_read_bytes - earlier.media_read_bytes,
            media_write_bytes: self.media_write_bytes - earlier.media_write_bytes,
            rmw_evictions: self.rmw_evictions - earlier.rmw_evictions,
            full_evictions: self.full_evictions - earlier.full_evictions,
            reads: self.reads - earlier.reads,
            power_failures: self.power_failures - earlier.power_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_empty_is_zero() {
        assert_eq!(PmemStats::default().write_hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_computes() {
        let s = PmemStats {
            xpbuffer_hits: 3,
            xpbuffer_misses: 1,
            ..Default::default()
        };
        assert!((s.write_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn write_amp_computes() {
        let s = PmemStats {
            cpu_writes: 1,
            media_write_bytes: 256,
            ..Default::default()
        };
        assert!((s.write_amplification() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn delta_subtracts() {
        let a = PmemStats {
            cpu_writes: 10,
            media_write_bytes: 512,
            ..Default::default()
        };
        let b = PmemStats {
            cpu_writes: 4,
            media_write_bytes: 256,
            ..Default::default()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.cpu_writes, 6);
        assert_eq!(d.media_write_bytes, 256);
    }

    #[test]
    fn snapshot_and_reset() {
        let cell = StatsCell::default();
        cell.cpu_writes.fetch_add(5, Ordering::Relaxed);
        assert_eq!(cell.snapshot().cpu_writes, 5);
        cell.reset();
        assert_eq!(cell.snapshot().cpu_writes, 0);
    }
}
