//! The on-DIMM write-combining buffer ("XPBuffer").
//!
//! Incoming 64 B cachelines are staged in XPLine-sized slots. A cacheline
//! that lands in an already-open slot is a *write hit* (combined for free);
//! one that must open a new slot is a *miss*, and when the buffer is full the
//! least-recently-used slot is evicted to the media. A fully populated slot
//! is written as one 256 B media write; a partial slot first reads the line
//! from the media (read-modify-write), which is the write-amplification
//! mechanism of the paper's Figure 3.

use crate::{CACHELINE, SECTORS_PER_XPLINE, XPLINE};
use std::collections::HashMap;

/// All sectors dirty: no read-modify-write needed on eviction.
const FULL_MASK: u8 = (1 << SECTORS_PER_XPLINE) - 1;

/// One staged XPLine.
#[derive(Clone)]
struct Slot {
    data: [u8; XPLINE],
    /// Bit i set => sector i holds CPU data newer than the media.
    valid_mask: u8,
    /// LRU timestamp.
    tick: u64,
}

/// What happened to a slot that was pushed out to the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// All four sectors were dirty; one clean 256 B media write.
    Full,
    /// Some sectors were missing; the media line was read, merged, and
    /// rewritten (read-modify-write).
    ReadModifyWrite,
}

/// Read-only view of one open slot, taken for fault-injection capture.
#[derive(Debug, Clone)]
pub struct SlotSnapshot {
    /// XPLine-aligned DIMM-local offset.
    pub line: u64,
    /// The staged data; only sectors set in `valid_mask` are meaningful.
    pub data: [u8; XPLINE],
    /// Bit i set => sector i holds CPU data newer than the media.
    pub valid_mask: u8,
    /// LRU timestamp; the maximum across slots is the in-flight line.
    pub tick: u64,
}

/// Outcome of staging one cacheline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Whether the cacheline hit an already-open XPLine slot.
    pub hit: bool,
    /// Eviction triggered to make room, if any.
    pub evicted: Option<Eviction>,
}

/// A bounded write-combining buffer in front of one DIMM's media.
pub struct XpBuffer {
    slots: HashMap<u64, Slot>,
    capacity: usize,
    next_tick: u64,
}

impl XpBuffer {
    /// Create a buffer with room for `capacity` XPLines (must be > 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "XPBuffer needs at least one slot");
        XpBuffer {
            slots: HashMap::with_capacity(capacity + 1),
            capacity,
            next_tick: 0,
        }
    }

    /// Number of currently open slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Snapshot of every open slot, sorted by line offset for determinism.
    pub fn snapshot(&self) -> Vec<SlotSnapshot> {
        let mut out: Vec<SlotSnapshot> = self
            .slots
            .iter()
            .map(|(&line, s)| SlotSnapshot {
                line,
                data: s.data,
                valid_mask: s.valid_mask,
                tick: s.tick,
            })
            .collect();
        out.sort_unstable_by_key(|s| s.line);
        out
    }

    /// True when no slots are open.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Stage one 64 B cacheline destined for DIMM-local offset `off` (must be
    /// 64 B aligned). `media` is the DIMM's backing store, updated in place
    /// when an eviction occurs.
    pub fn write_cacheline(
        &mut self,
        off: u64,
        data: &[u8; CACHELINE],
        media: &mut [u8],
    ) -> WriteOutcome {
        debug_assert_eq!(off % CACHELINE as u64, 0, "unaligned cacheline write");
        let line = off & !(XPLINE as u64 - 1);
        let sector = ((off - line) / CACHELINE as u64) as usize;
        self.next_tick += 1;
        let tick = self.next_tick;

        if let Some(slot) = self.slots.get_mut(&line) {
            let s = sector * CACHELINE;
            slot.data[s..s + CACHELINE].copy_from_slice(data);
            slot.valid_mask |= 1 << sector;
            slot.tick = tick;
            return WriteOutcome {
                hit: true,
                evicted: None,
            };
        }

        let evicted = if self.slots.len() >= self.capacity {
            Some(self.evict_lru(media))
        } else {
            None
        };

        let mut slot = Slot {
            data: [0u8; XPLINE],
            valid_mask: 1 << sector,
            tick,
        };
        let s = sector * CACHELINE;
        slot.data[s..s + CACHELINE].copy_from_slice(data);
        self.slots.insert(line, slot);
        WriteOutcome {
            hit: false,
            evicted,
        }
    }

    /// Push the least-recently-used slot out to the media.
    fn evict_lru(&mut self, media: &mut [u8]) -> Eviction {
        let (&line, _) = self
            .slots
            .iter()
            .min_by_key(|(_, s)| s.tick)
            .expect("evict_lru called on empty buffer");
        let slot = self.slots.remove(&line).expect("slot vanished");
        Self::write_out(line, &slot, media)
    }

    /// Write every open slot to the media (power-fail drain or explicit
    /// flush). Returns the evictions performed, for accounting.
    pub fn drain(&mut self, media: &mut [u8]) -> Vec<Eviction> {
        let mut lines: Vec<u64> = self.slots.keys().copied().collect();
        lines.sort_unstable();
        let mut out = Vec::with_capacity(lines.len());
        for line in lines {
            let slot = self.slots.remove(&line).expect("slot vanished");
            out.push(Self::write_out(line, &slot, media));
        }
        out
    }

    fn write_out(line: u64, slot: &Slot, media: &mut [u8]) -> Eviction {
        let base = line as usize;
        let kind = if slot.valid_mask == FULL_MASK {
            Eviction::Full
        } else {
            Eviction::ReadModifyWrite
        };
        for sector in 0..SECTORS_PER_XPLINE {
            if slot.valid_mask & (1 << sector) != 0 {
                let s = sector * CACHELINE;
                media[base + s..base + s + CACHELINE].copy_from_slice(&slot.data[s..s + CACHELINE]);
            }
            // Invalid sectors keep the media's current contents — the
            // read-modify-write "read" half.
        }
        kind
    }

    /// Overlay any buffered (newer-than-media) bytes in `[off, off+buf.len())`
    /// onto `buf`, which the caller pre-filled from the media. Keeps reads
    /// coherent with pending writes.
    pub fn overlay_reads(&self, off: u64, buf: &mut [u8]) {
        if self.slots.is_empty() || buf.is_empty() {
            return;
        }
        let start = off;
        let end = off + buf.len() as u64;
        let first_line = start & !(XPLINE as u64 - 1);
        let mut line = first_line;
        while line < end {
            if let Some(slot) = self.slots.get(&line) {
                for sector in 0..SECTORS_PER_XPLINE {
                    if slot.valid_mask & (1 << sector) == 0 {
                        continue;
                    }
                    let sec_start = line + (sector * CACHELINE) as u64;
                    let sec_end = sec_start + CACHELINE as u64;
                    let lo = sec_start.max(start);
                    let hi = sec_end.min(end);
                    if lo < hi {
                        let src = &slot.data[(lo - line) as usize..(hi - line) as usize];
                        buf[(lo - start) as usize..(hi - start) as usize].copy_from_slice(src);
                    }
                }
            }
            line += XPLINE as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cl(b: u8) -> [u8; CACHELINE] {
        [b; CACHELINE]
    }

    #[test]
    fn sequential_line_fills_then_hits() {
        let mut buf = XpBuffer::new(4);
        let mut media = vec![0u8; 1024];
        let o0 = buf.write_cacheline(0, &cl(1), &mut media);
        assert!(!o0.hit);
        for i in 1..4 {
            let o = buf.write_cacheline(i * 64, &cl(1), &mut media);
            assert!(o.hit, "sector {i} should combine");
        }
    }

    #[test]
    fn full_slot_evicts_without_rmw() {
        let mut buf = XpBuffer::new(1);
        let mut media = vec![0u8; 1024];
        for i in 0..4 {
            buf.write_cacheline(i * 64, &cl(7), &mut media);
        }
        // Opening a second XPLine forces the first (full) slot out.
        let o = buf.write_cacheline(256, &cl(9), &mut media);
        assert_eq!(o.evicted, Some(Eviction::Full));
        assert!(media[..256].iter().all(|&b| b == 7));
    }

    #[test]
    fn partial_slot_evicts_with_rmw_preserving_media() {
        let mut buf = XpBuffer::new(1);
        let mut media = vec![0xEE; 1024];
        buf.write_cacheline(64, &cl(5), &mut media); // only sector 1 dirty
        let o = buf.write_cacheline(512, &cl(9), &mut media);
        assert_eq!(o.evicted, Some(Eviction::ReadModifyWrite));
        assert!(
            media[0..64].iter().all(|&b| b == 0xEE),
            "sector 0 kept from media"
        );
        assert!(
            media[64..128].iter().all(|&b| b == 5),
            "sector 1 overwritten"
        );
        assert!(
            media[128..256].iter().all(|&b| b == 0xEE),
            "sectors 2-3 kept"
        );
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut buf = XpBuffer::new(2);
        let mut media = vec![0u8; 4096];
        buf.write_cacheline(0, &cl(1), &mut media); // line 0 (older)
        buf.write_cacheline(256, &cl(2), &mut media); // line 256
        buf.write_cacheline(64, &cl(1), &mut media); // touch line 0 again
        buf.write_cacheline(512, &cl(3), &mut media); // must evict line 256
        assert!(buf.slots.contains_key(&0));
        assert!(!buf.slots.contains_key(&256));
        assert!(media[256..320].iter().all(|&b| b == 2));
    }

    #[test]
    fn drain_flushes_everything() {
        let mut buf = XpBuffer::new(8);
        let mut media = vec![0u8; 4096];
        buf.write_cacheline(0, &cl(1), &mut media);
        buf.write_cacheline(1024, &cl(2), &mut media);
        let evs = buf.drain(&mut media);
        assert_eq!(evs.len(), 2);
        assert!(buf.is_empty());
        assert!(media[0..64].iter().all(|&b| b == 1));
        assert!(media[1024..1088].iter().all(|&b| b == 2));
    }

    #[test]
    fn overlay_merges_buffered_bytes_into_reads() {
        let mut buf = XpBuffer::new(4);
        let mut media = vec![0xAA; 1024];
        buf.write_cacheline(64, &cl(0x55), &mut media);
        let mut out = vec![0u8; 192];
        out.copy_from_slice(&media[0..192]);
        buf.overlay_reads(0, &mut out);
        assert!(out[0..64].iter().all(|&b| b == 0xAA));
        assert!(out[64..128].iter().all(|&b| b == 0x55));
        assert!(out[128..192].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn overlay_handles_unaligned_ranges() {
        let mut buf = XpBuffer::new(4);
        let mut media = vec![0xAA; 1024];
        buf.write_cacheline(64, &cl(0x55), &mut media);
        let mut out = vec![0u8; 40];
        out.copy_from_slice(&media[100..140]);
        buf.overlay_reads(100, &mut out);
        // [100,128) falls in sector 1 (buffered); [128,140) in sector 2.
        assert!(out[0..28].iter().all(|&b| b == 0x55));
        assert!(out[28..].iter().all(|&b| b == 0xAA));
    }
}
