//! Property tests: the device behaves as flat coherent memory regardless of
//! XPBuffer staging, interleaving, or power failures, and its counters obey
//! their invariants.

use cachekv_pmem::{PmemConfig, PmemDevice};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum DevOp {
    Write { addr: u64, len: usize, fill: u8 },
    Read { addr: u64, len: usize },
    Drain,
    PowerFail,
}

const SPACE: u64 = 64 << 10;

fn op_strategy() -> impl Strategy<Value = DevOp> {
    prop_oneof![
        4 => (0..SPACE - 512, 1usize..512, any::<u8>())
            .prop_map(|(addr, len, fill)| DevOp::Write { addr, len, fill }),
        3 => (0..SPACE - 512, 1usize..512).prop_map(|(addr, len)| DevOp::Read { addr, len }),
        1 => Just(DevOp::Drain),
        1 => Just(DevOp::PowerFail),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn device_is_coherent_flat_memory(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dev = PmemDevice::new(PmemConfig::small());
        let mut model = vec![0u8; SPACE as usize];
        for op in ops {
            match op {
                DevOp::Write { addr, len, fill } => {
                    let data = vec![fill; len];
                    dev.write(addr, &data);
                    model[addr as usize..addr as usize + len].copy_from_slice(&data);
                }
                DevOp::Read { addr, len } => {
                    let mut buf = vec![0u8; len];
                    dev.read(addr, &mut buf);
                    prop_assert_eq!(&buf[..], &model[addr as usize..addr as usize + len]);
                }
                DevOp::Drain => dev.drain(),
                DevOp::PowerFail => dev.power_fail(),
            }
        }
        // Final sweep: the whole space matches after a drain.
        dev.drain();
        let mut buf = vec![0u8; SPACE as usize];
        dev.read(0, &mut buf);
        prop_assert_eq!(buf, model);
    }

    #[test]
    fn counters_are_consistent(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dev = PmemDevice::new(PmemConfig::small());
        for op in ops {
            match op {
                DevOp::Write { addr, len, fill } => dev.write(addr, &vec![fill; len]),
                DevOp::Read { addr, len } => {
                    let mut buf = vec![0u8; len];
                    dev.read(addr, &mut buf);
                }
                DevOp::Drain => dev.drain(),
                DevOp::PowerFail => dev.power_fail(),
            }
        }
        dev.drain();
        let s = dev.stats();
        // Every CPU write either hit or missed the buffer.
        prop_assert_eq!(s.cpu_writes, s.xpbuffer_hits + s.xpbuffer_misses);
        // Media writes happen in whole XPLines, one per eviction.
        prop_assert_eq!(s.media_write_bytes % 256, 0);
        prop_assert_eq!(s.media_write_bytes / 256, s.full_evictions + s.rmw_evictions);
        // After a full drain nothing is left staged: every miss opened a
        // slot that was eventually evicted.
        prop_assert_eq!(s.xpbuffer_misses, s.full_evictions + s.rmw_evictions);
        // RMW evictions are exactly the ones that read the media.
        prop_assert!(s.media_read_bytes >= s.rmw_evictions * 256);
    }
}
