//! `cachekv_serve` — run a sharded CacheKV service over TCP.
//!
//! ```sh
//! cargo run --release -p cachekv-server --bin cachekv_serve -- [ADDR] [SHARDS] [CACHE_MB]
//! # defaults: 127.0.0.1:4840, 2 shards, 16 MiB hot-key cache (0 = off)
//! ```
//!
//! Each shard is an independent simulated eADR device + cache hierarchy
//! with its own CacheKV instance; keys hash-route across them. Type
//! `stats` on stdin for the live stats document, `quit` (or EOF) for a
//! clean shutdown that drains in-flight group commits.

use cachekv::{CacheKv, CacheKvConfig};
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::KvStore;
use cachekv_pmem::{PmemConfig, PmemDevice};
use cachekv_server::{HotCacheConfig, KvServer, ServerConfig, TcpTransport};
use std::io::BufRead;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:4840".to_string());
    let shards: usize = args
        .next()
        .map(|s| s.parse().expect("SHARDS must be a number"))
        .unwrap_or(2);
    let cache_mb: usize = args
        .next()
        .map(|s| s.parse().expect("CACHE_MB must be a number"))
        .unwrap_or(16);

    let stores: Vec<Arc<dyn KvStore>> = (0..shards)
        .map(|_| {
            let dev = Arc::new(PmemDevice::new(PmemConfig::paper_scaled()));
            let hier = Arc::new(Hierarchy::new(dev, CacheConfig::paper()));
            Arc::new(CacheKv::create(hier, CacheKvConfig::default())) as Arc<dyn KvStore>
        })
        .collect();

    let transport = TcpTransport::bind(&addr).expect("bind TCP listener");
    let local = transport.local_addr();
    let cfg = ServerConfig {
        cache: HotCacheConfig::with_capacity(cache_mb << 20),
        ..ServerConfig::default()
    };
    let server = KvServer::start(stores, transport, cfg);
    println!(
        "cachekv_serve: {shards} shard(s) listening on {local}, hot cache {}",
        if cache_mb == 0 {
            "off".to_string()
        } else {
            format!("{cache_mb} MiB")
        }
    );
    println!("commands: stats | quit");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        match line.trim() {
            "" => {}
            "stats" => println!("{}", server.stats_document()),
            "quit" | "exit" => break,
            other => println!("unknown command: {other} (stats | quit)"),
        }
    }
    println!("draining in-flight commits...");
    server.shutdown();
    println!("bye");
}
