//! DRAM hot-key cache tier: a version-stamped, memory-capped cache
//! consulted before the shard submission queue on GET.
//!
//! ```text
//!   GET ──► per-core replica slab ──hit──► reply (no queue, no engine)
//!              │ miss
//!              ▼
//!        shard.store().get() ──► epoch-gated fill ──► reply
//!
//!   committer round:  publish round bloom ─► epoch→odd ─► apply writes
//!                     ─► update/remove cached entries ─► epoch→even ─► ack
//! ```
//!
//! # Coherence: round-epoch invalidation
//!
//! Naive KV caching over an LSM breaks on invalidation: a GET can read the
//! engine, lose the CPU, and insert a value that a concurrent write has
//! already superseded — serving it after the write was acked. The cache
//! therefore anchors *all* invalidation to the group-commit round, the
//! server's existing durability point:
//!
//! * Each shard has a monotonic **round epoch**: even while the shard is
//!   quiescent, odd while a commit round is applying. Only the shard's
//!   committer thread advances it.
//! * Before applying a round, the committer publishes the round's write-key
//!   **bloom** into a seqlock slot of the shard's round log, then bumps the
//!   epoch to odd. After applying, it updates (put) or removes (delete)
//!   every replica's entry for the round's keys — stamped with the upcoming
//!   even epoch — then bumps the epoch to even, and only then are acks
//!   released.
//! * Every cached entry carries the epoch **stamp** at which it was last
//!   known to equal the engine's value. A probe serves an entry iff its
//!   stamp is current, or the round log proves no round since the stamp
//!   wrote the key (re-stamping it forward). Anything else is a miss and
//!   the entry is dropped.
//! * A fill captures the shard epoch *before* probing the engine and
//!   installs only if the epoch is even and unchanged at insert — a fill
//!   that raced any round is discarded rather than risk caching a value
//!   the round overwrote.
//!
//! Consequences: after a write is acked, no replica holds (or can ever
//! re-admit) an older value for that key, so read-your-writes through the
//! server path holds; and because the in-progress round's bloom is visible
//! *before* its writes apply, a reader can never observe a new value from
//! the engine and subsequently an older value from a replica — per-key
//! observations are monotonic even mid-round.
//!
//! # Per-core replicas
//!
//! An ultra-hot key serialized on one cacheline would make the cache the
//! bottleneck it is meant to remove. The cache therefore keeps one slab per
//! server worker thread (connection readers pin to a replica round-robin):
//! probes and fills touch only the calling thread's slab, while the
//! committer walks all slabs at round publication — writes pay the
//! fan-out, reads stay core-local.
//!
//! Admission (sampled frequency sketch) and eviction (CLOCK) are pluggable
//! behind [`Admission`] / [`Eviction`]; each slab enforces a hard byte cap.

use crate::obs::ServerObs;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Accounted bytes per entry beyond key + value (map slot, stamps, clock
/// state — a deliberate overestimate so the cap is honest).
const ENTRY_OVERHEAD: usize = 96;

/// FNV-1a 64 over `key` — the hash used for replicas' maps, the admission
/// sketch, and round-log blooms. (Same family as shard routing, different
/// use: this one never feeds `% shards`.)
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h = 0x8422_2325_cbf2_9ce4u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Admission policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Admit every fill (evict whatever CLOCK points at).
    AdmitAll,
    /// TinyLFU-style sampled frequency sketch: a fill displaces a victim
    /// only if the candidate's estimated frequency exceeds the victim's.
    Sketch,
}

/// Eviction policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionKind {
    /// CLOCK (second chance) over the slab's slot ring.
    Clock,
    /// Insertion-order FIFO (reference baseline; no recency signal).
    Fifo,
}

/// Hot-cache tuning knobs (part of [`crate::ServerConfig`]).
#[derive(Debug, Clone)]
pub struct HotCacheConfig {
    /// Total byte cap across all replicas. `0` disables the tier entirely
    /// (no slabs are allocated and it cannot be enabled at runtime).
    pub capacity_bytes: usize,
    /// Per-core replica slabs. `0` = auto (available parallelism, max 8).
    pub replicas: usize,
    /// Fill admission policy.
    pub admission: AdmissionKind,
    /// Slab eviction policy.
    pub eviction: EvictionKind,
    /// Round-log slots per shard: how many group-commit rounds back an
    /// idle entry can be re-validated before coverage is lost and it is
    /// dropped. Minimum 8.
    pub round_log_slots: usize,
}

impl Default for HotCacheConfig {
    fn default() -> Self {
        HotCacheConfig {
            capacity_bytes: 16 << 20,
            replicas: 0,
            admission: AdmissionKind::Sketch,
            eviction: EvictionKind::Clock,
            round_log_slots: 64,
        }
    }
}

impl HotCacheConfig {
    /// A configuration with the tier compiled out of the request path.
    pub fn disabled() -> Self {
        HotCacheConfig {
            capacity_bytes: 0,
            ..HotCacheConfig::default()
        }
    }

    /// Convenience: default policies at a given byte cap.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        HotCacheConfig {
            capacity_bytes,
            ..HotCacheConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// Fill-admission policy. Implementations must be cheap and thread-safe:
/// `record` runs on every probe, `admit` on every fill that needs to evict.
pub trait Admission: Send + Sync {
    /// Note one access to `h` (sampled frequency signal).
    fn record(&self, h: u64);
    /// Estimated access frequency of `h`.
    fn estimate(&self, h: u64) -> u32;
    /// Should a fill of `cand` displace `victim`? `victim` is `None` when
    /// the slab still has free space (always admit).
    fn admit(&self, cand: u64, victim: Option<u64>) -> bool {
        match victim {
            None => true,
            Some(v) => self.estimate(cand) > self.estimate(v),
        }
    }
}

/// Admit-everything policy.
struct AdmitAll;

impl Admission for AdmitAll {
    fn record(&self, _h: u64) {}
    fn estimate(&self, _h: u64) -> u32 {
        0
    }
    fn admit(&self, _cand: u64, _victim: Option<u64>) -> bool {
        true
    }
}

/// A count-min sketch of 4-bit-equivalent saturating byte counters with
/// periodic halving (TinyLFU's aging), shared lock-free across threads.
pub struct FreqSketch {
    rows: Vec<AtomicU8>,
    mask: usize,
    samples: AtomicU64,
    window: u64,
}

const SKETCH_HASHES: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0xff51_afd7_ed55_8ccd,
];

impl FreqSketch {
    /// `slots` is rounded up to a power of two; the aging window is 16x
    /// the slot count, as in TinyLFU.
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(64).next_power_of_two();
        FreqSketch {
            rows: (0..slots).map(|_| AtomicU8::new(0)).collect(),
            mask: slots - 1,
            samples: AtomicU64::new(0),
            window: 16 * slots as u64,
        }
    }

    fn idx(&self, h: u64, row: usize) -> usize {
        (h.wrapping_mul(SKETCH_HASHES[row]) >> 32) as usize & self.mask
    }

    /// Halve every counter (called once per aging window; racing
    /// increments are lost, which only dampens the estimate).
    fn age(&self) {
        for c in &self.rows {
            let v = c.load(Ordering::Relaxed);
            c.store(v >> 1, Ordering::Relaxed);
        }
    }
}

impl Admission for FreqSketch {
    fn record(&self, h: u64) {
        for row in 0..SKETCH_HASHES.len() {
            let c = &self.rows[self.idx(h, row)];
            // Saturating increment without wrap under races.
            let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                (v < u8::MAX).then(|| v + 1)
            });
        }
        if self.samples.fetch_add(1, Ordering::Relaxed) + 1 >= self.window
            && self
                .samples
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                    (s >= self.window).then_some(0)
                })
                .is_ok()
        {
            self.age();
        }
    }

    fn estimate(&self, h: u64) -> u32 {
        (0..SKETCH_HASHES.len())
            .map(|row| self.rows[self.idx(h, row)].load(Ordering::Relaxed) as u32)
            .min()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

/// Per-slab eviction policy. Called with the slab lock held; `slot`
/// indices refer to the slab's entry ring.
pub trait Eviction: Send {
    /// A new entry landed in `slot`.
    fn on_insert(&mut self, slot: usize);
    /// The entry in `slot` was served (recency signal).
    fn on_hit(&mut self, slot: usize);
    /// The entry in `slot` was removed (invalidation, not eviction).
    fn on_remove(&mut self, slot: usize);
    /// Pick a victim among occupied slots (`occupied[i]` ⇔ slot `i` holds
    /// an entry). Returns `None` only if nothing is occupied.
    fn victim(&mut self, occupied: &[bool]) -> Option<usize>;
}

/// CLOCK: one reference bit per slot, a sweeping hand granting each
/// referenced entry a second chance.
struct ClockEviction {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockEviction {
    fn new() -> Self {
        ClockEviction {
            referenced: Vec::new(),
            hand: 0,
        }
    }

    fn ensure(&mut self, slot: usize) {
        if slot >= self.referenced.len() {
            self.referenced.resize(slot + 1, false);
        }
    }
}

impl Eviction for ClockEviction {
    fn on_insert(&mut self, slot: usize) {
        self.ensure(slot);
        self.referenced[slot] = false;
    }

    fn on_hit(&mut self, slot: usize) {
        self.ensure(slot);
        self.referenced[slot] = true;
    }

    fn on_remove(&mut self, slot: usize) {
        self.ensure(slot);
        self.referenced[slot] = false;
    }

    fn victim(&mut self, occupied: &[bool]) -> Option<usize> {
        if occupied.is_empty() {
            return None;
        }
        self.ensure(occupied.len() - 1);
        // Two full sweeps suffice: the first clears every reference bit in
        // the worst case, the second must find an unreferenced entry.
        for _ in 0..occupied.len() * 2 {
            let i = self.hand;
            self.hand = (self.hand + 1) % occupied.len();
            if !occupied[i] {
                continue;
            }
            if self.referenced[i] {
                self.referenced[i] = false;
            } else {
                return Some(i);
            }
        }
        occupied.iter().position(|&o| o)
    }
}

/// FIFO in insertion order.
struct FifoEviction {
    queue: std::collections::VecDeque<usize>,
}

impl Eviction for FifoEviction {
    fn on_insert(&mut self, slot: usize) {
        self.queue.push_back(slot);
    }

    fn on_hit(&mut self, _slot: usize) {}

    fn on_remove(&mut self, slot: usize) {
        self.queue.retain(|&s| s != slot);
    }

    fn victim(&mut self, occupied: &[bool]) -> Option<usize> {
        // Peek without rotating: if the caller's admission gate declines
        // the candidate, the victim must stay at the front so eviction
        // keeps following insertion order. The slot leaves the queue in
        // `on_remove` when an eviction actually happens.
        while let Some(&s) = self.queue.front() {
            if occupied.get(s).copied().unwrap_or(false) {
                return Some(s);
            }
            self.queue.pop_front(); // stale slot id: discard
        }
        occupied.iter().position(|&o| o)
    }
}

fn make_eviction(kind: EvictionKind) -> Box<dyn Eviction> {
    match kind {
        EvictionKind::Clock => Box::new(ClockEviction::new()),
        EvictionKind::Fifo => Box::new(FifoEviction {
            queue: Default::default(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Round log (per shard): seqlock slots of per-round write-key blooms
// ---------------------------------------------------------------------------

const BLOOM_WORDS: usize = 4; // 256-bit bloom, 2 bits per key

struct RoundSlot {
    /// The round's odd epoch, or 0 while the slot is being (re)written.
    seq: AtomicU64,
    bloom: [AtomicU64; BLOOM_WORDS],
}

fn bloom_bits(h: u64) -> (usize, usize) {
    let bits = BLOOM_WORDS * 64;
    ((h as usize) % bits, ((h >> 21) as usize) % bits)
}

struct ShardClock {
    /// Even = quiescent, odd = a commit round is applying. Written only by
    /// the shard's committer thread.
    epoch: AtomicU64,
    log: Vec<RoundSlot>,
}

impl ShardClock {
    fn new(slots: usize) -> Self {
        ShardClock {
            epoch: AtomicU64::new(0),
            log: (0..slots)
                .map(|_| RoundSlot {
                    seq: AtomicU64::new(0),
                    bloom: Default::default(),
                })
                .collect(),
        }
    }

    fn slot_for(&self, odd: u64) -> &RoundSlot {
        &self.log[(((odd - 1) / 2) as usize) % self.log.len()]
    }

    /// Publish round `odd`'s write-key bloom. Single writer (the
    /// committer); SeqCst so readers' double-checked reads order globally.
    fn publish(&self, odd: u64, hashes: &[u64]) {
        let slot = self.slot_for(odd);
        slot.seq.store(0, Ordering::SeqCst);
        let mut words = [0u64; BLOOM_WORDS];
        for &h in hashes {
            let (a, b) = bloom_bits(h);
            words[a / 64] |= 1 << (a % 64);
            words[b / 64] |= 1 << (b % 64);
        }
        for (w, v) in slot.bloom.iter().zip(words) {
            w.store(v, Ordering::SeqCst);
        }
        slot.seq.store(odd, Ordering::SeqCst);
    }

    /// Did any round in `(stamp, upto]` possibly write a key hashing to
    /// `h`? Returns `true` (conservative) when the log no longer covers
    /// the range or a slot is torn mid-read.
    fn maybe_written_since(&self, stamp: u64, upto: u64, h: u64) -> bool {
        let first_odd = if stamp.is_multiple_of(2) {
            stamp + 1
        } else {
            stamp + 2
        };
        if upto < first_odd {
            return false; // no rounds in range
        }
        let rounds = (upto - first_odd) / 2 + 1;
        if rounds > self.log.len() as u64 {
            return true; // coverage lost
        }
        let (ba, bb) = bloom_bits(h);
        let mut odd = first_odd;
        while odd <= upto {
            let slot = self.slot_for(odd);
            let s1 = slot.seq.load(Ordering::SeqCst);
            if s1 != odd {
                return true; // overwritten or mid-write
            }
            let wa = slot.bloom[ba / 64].load(Ordering::SeqCst);
            let wb = slot.bloom[bb / 64].load(Ordering::SeqCst);
            if slot.seq.load(Ordering::SeqCst) != odd {
                return true; // torn read
            }
            if wa >> (ba % 64) & 1 == 1 && wb >> (bb % 64) & 1 == 1 {
                return true; // round maybe wrote the key
            }
            odd += 2;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Replica slabs
// ---------------------------------------------------------------------------

struct Entry {
    key: Box<[u8]>,
    value: Box<[u8]>,
    hash: u64,
    shard: u32,
    /// Epoch at which `value` was last known to equal the engine's.
    stamp: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.key.len() + self.value.len() + ENTRY_OVERHEAD
    }
}

struct Slab {
    map: HashMap<Box<[u8]>, usize>,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    occupied: Vec<bool>,
    bytes: usize,
    cap: usize,
    evict: Box<dyn Eviction>,
}

impl Slab {
    fn new(cap: usize, eviction: EvictionKind) -> Self {
        Slab {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            occupied: Vec::new(),
            bytes: 0,
            cap,
            evict: make_eviction(eviction),
        }
    }

    fn slot_of(&self, key: &[u8]) -> Option<usize> {
        self.map.get(key).copied()
    }

    /// Remove the entry in `slot`, returning freed bytes. The slot goes
    /// back on the free list so the slot ring stays O(capacity) under
    /// eviction/invalidation churn instead of growing per fill.
    fn remove_slot(&mut self, slot: usize) -> usize {
        let Some(e) = self.slots[slot].take() else {
            return 0;
        };
        self.map.remove(&e.key);
        self.occupied[slot] = false;
        self.free.push(slot);
        self.evict.on_remove(slot);
        self.bytes -= e.bytes();
        e.bytes()
    }

    /// Install `entry`, evicting under `admission` as needed. Returns
    /// `(installed, delta_bytes, evictions)`; when admission rejects the
    /// fill, `installed` is `false` but bytes already freed by earlier
    /// eviction-loop iterations are still reported in `delta_bytes` /
    /// `evictions` so the caller's gauges never drift from slab state.
    fn install(&mut self, entry: Entry, admission: &dyn Admission) -> (bool, i64, u64) {
        let need = entry.bytes();
        if need > self.cap {
            return (false, 0, 0);
        }
        let mut delta = 0i64;
        let mut evictions = 0u64;
        // Overwrite in place if present.
        if let Some(slot) = self.slot_of(&entry.key) {
            let old = self.slots[slot].as_ref().expect("mapped slot occupied");
            delta -= old.bytes() as i64;
            delta += need as i64;
            self.bytes = (self.bytes as i64 + delta) as usize;
            self.slots[slot] = Some(entry);
            self.evict.on_hit(slot);
            // Over-cap after a larger value: fall through to trim below.
            while self.bytes > self.cap {
                let Some(v) = self.pick_victim(None) else {
                    break;
                };
                delta -= self.remove_slot(v) as i64;
                evictions += 1;
            }
            return (true, delta, evictions);
        }
        while self.bytes + need > self.cap {
            let Some(v) = self.pick_victim(Some((admission, entry.hash))) else {
                return (false, delta, evictions);
            };
            delta -= self.remove_slot(v) as i64;
            evictions += 1;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.occupied.push(false);
            self.slots.len() - 1
        });
        self.map.insert(entry.key.clone(), slot);
        self.occupied[slot] = true;
        self.bytes += need;
        self.slots[slot] = Some(entry);
        self.evict.on_insert(slot);
        delta += need as i64;
        (true, delta, evictions)
    }

    /// Choose an eviction victim; with `gate = (admission, candidate)`
    /// the candidate must beat the victim's estimated frequency.
    fn pick_victim(&mut self, gate: Option<(&dyn Admission, u64)>) -> Option<usize> {
        let v = self.evict.victim(&self.occupied)?;
        if let Some((admission, cand)) = gate {
            let victim_hash = self.slots[v].as_ref().map(|e| e.hash);
            if !admission.admit(cand, victim_hash) {
                return None;
            }
        }
        Some(v)
    }

    fn purge(&mut self) -> i64 {
        let freed = self.bytes as i64;
        for slot in 0..self.slots.len() {
            if self.occupied[slot] {
                self.remove_slot(slot);
            }
        }
        -freed
    }
}

// ---------------------------------------------------------------------------
// The cache tier
// ---------------------------------------------------------------------------

/// Token returned by a missed probe; carries the shard epoch captured
/// *before* the engine read so the fill can detect racing commit rounds.
#[derive(Debug, Clone, Copy)]
pub struct FillToken {
    epoch: u64,
    usable: bool,
}

/// Token handed to the committer between [`HotCache::round_begin`] and
/// [`HotCache::round_publish`].
#[must_use]
pub struct RoundToken {
    shard: usize,
    odd: u64,
}

/// The DRAM hot-key cache tier. One instance per [`crate::KvServer`],
/// shared by every connection thread and shard committer.
pub struct HotCache {
    replicas: Vec<Mutex<Slab>>,
    shards: Vec<ShardClock>,
    admission: Arc<dyn Admission>,
    enabled: AtomicBool,
    obs: Arc<ServerObs>,
}

/// Round-robin replica assignment: each OS thread gets a stable slab so
/// an ultra-hot key's probes never share a cacheline across cores.
static REPLICA_TICKET: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static REPLICA_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

fn replica_ticket() -> usize {
    REPLICA_ID.with(|c| match c.get() {
        Some(t) => t,
        None => {
            let t = REPLICA_TICKET.fetch_add(1, Ordering::Relaxed);
            c.set(Some(t));
            t
        }
    })
}

impl HotCache {
    /// Build the tier for `num_shards` shards. `capacity_bytes == 0`
    /// allocates nothing and pins the tier off.
    pub fn new(cfg: &HotCacheConfig, num_shards: usize, obs: Arc<ServerObs>) -> Arc<HotCache> {
        let replicas = if cfg.capacity_bytes == 0 {
            0
        } else if cfg.replicas > 0 {
            cfg.replicas
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .min(8)
        };
        let per_slab = cfg
            .capacity_bytes
            .checked_div(replicas)
            .map_or(0, |per| per.max(ENTRY_OVERHEAD * 4));
        let admission: Arc<dyn Admission> = match cfg.admission {
            AdmissionKind::AdmitAll => Arc::new(AdmitAll),
            // Size the sketch to roughly the entry count the cap implies.
            AdmissionKind::Sketch => Arc::new(FreqSketch::new(
                (cfg.capacity_bytes / 256).clamp(1024, 1 << 20),
            )),
        };
        Arc::new(HotCache {
            replicas: (0..replicas)
                .map(|_| Mutex::new(Slab::new(per_slab, cfg.eviction)))
                .collect(),
            shards: (0..num_shards)
                .map(|_| ShardClock::new(cfg.round_log_slots.max(8)))
                .collect(),
            admission,
            enabled: AtomicBool::new(replicas > 0),
            obs,
        })
    }

    /// Whether the tier is currently serving probes and fills.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire) && !self.replicas.is_empty()
    }

    /// Whether the tier was built with capacity at all.
    pub fn has_capacity(&self) -> bool {
        !self.replicas.is_empty()
    }

    /// Turn the tier on or off at runtime. Disabling purges every slab
    /// (re-enable starts cold). Returns the effective state: enabling a
    /// zero-capacity tier stays off.
    pub fn set_enabled(&self, on: bool) -> bool {
        if self.replicas.is_empty() {
            return false;
        }
        self.enabled.store(on, Ordering::Release);
        if !on {
            for slab in &self.replicas {
                let delta = slab.lock().purge();
                self.obs.cache_bytes.add(delta);
            }
        }
        on
    }

    /// Total cached bytes across replicas (tests / stats).
    pub fn bytes(&self) -> usize {
        self.replicas.iter().map(|s| s.lock().bytes).sum()
    }

    fn replica(&self) -> &Mutex<Slab> {
        &self.replicas[replica_ticket() % self.replicas.len()]
    }

    // -- read path ---------------------------------------------------------

    /// Probe the calling thread's replica for `key` on `shard`. `Ok` is a
    /// hit; `Err` is a miss carrying the [`FillToken`] that must be
    /// captured *before* the engine read backing the fill.
    pub fn probe(&self, shard: usize, key: &[u8]) -> Result<Vec<u8>, FillToken> {
        if !self.is_enabled() {
            return Err(FillToken {
                epoch: 0,
                usable: false,
            });
        }
        let clock = &self.shards[shard];
        let epoch = clock.epoch.load(Ordering::Acquire);
        let h = key_hash(key);
        self.admission.record(h);
        let token = FillToken {
            epoch,
            // Fills are only sound from a quiescent (even) epoch.
            usable: epoch.is_multiple_of(2),
        };
        let mut slab = self.replica().lock();
        let Some(slot) = slab.slot_of(key) else {
            self.obs.cache_misses.inc();
            return Err(token);
        };
        let entry = slab.slots[slot].as_ref().expect("mapped slot occupied");
        if entry.stamp >= epoch {
            // Current (or installed by the in-flight round after its
            // applies — the engine already serves that value).
            let v = entry.value.to_vec();
            slab.evict.on_hit(slot);
            self.obs.cache_hits.inc();
            return Ok(v);
        }
        if clock.maybe_written_since(entry.stamp, epoch, h) {
            // A round since the stamp may have written the key (or log
            // coverage is gone): the value is unusable, drop it.
            let delta = -(slab.remove_slot(slot) as i64);
            self.obs.cache_bytes.add(delta);
            self.obs.cache_invalidations.inc();
            self.obs.cache_misses.inc();
            return Err(token);
        }
        // No round touched the key since the stamp: still exact.
        let entry = slab.slots[slot].as_mut().expect("mapped slot occupied");
        entry.stamp = epoch;
        let v = entry.value.to_vec();
        slab.evict.on_hit(slot);
        self.obs.cache_hits.inc();
        Ok(v)
    }

    /// Install `key = value` read from the engine under `token`. The fill
    /// is discarded if any commit round began on the shard since the token
    /// was captured, or if admission prefers the incumbent victim.
    pub fn fill(&self, shard: usize, key: &[u8], value: &[u8], token: FillToken) {
        if !token.usable || !self.is_enabled() {
            return;
        }
        let clock = &self.shards[shard];
        let h = key_hash(key);
        let mut slab = self.replica().lock();
        // Epoch-gate under the slab lock: round publication takes this
        // lock too, so a round that slips in after this check will still
        // observe (and supersede) the entry we install.
        if clock.epoch.load(Ordering::Acquire) != token.epoch {
            self.obs.cache_fill_races.inc();
            return;
        }
        if let Some(slot) = slab.slot_of(key) {
            let existing = slab.slots[slot].as_ref().expect("mapped slot occupied");
            if existing.stamp > token.epoch {
                // A round published a fresher value while we read the
                // engine; with the epoch unchanged that cannot happen.
                self.obs.cache_tripwire.inc();
                return;
            }
        }
        let entry = Entry {
            key: key.into(),
            value: value.into(),
            hash: h,
            shard: shard as u32,
            stamp: token.epoch,
        };
        let (installed, delta, evictions) = slab.install(entry, &*self.admission);
        // Apply the accounting even when admission rejected the fill: the
        // eviction loop may have freed entries before the gate declined,
        // and those bytes must still leave the gauge.
        self.obs.cache_bytes.add(delta);
        self.obs.cache_evictions.add(evictions);
        if installed {
            self.obs.cache_fills.inc();
        } else {
            self.obs.cache_admission_rejects.inc();
        }
    }

    // -- committer path ----------------------------------------------------

    /// Begin a group-commit round on `shard` that writes the keys hashing
    /// to `write_hashes`: publish the round's bloom and move the shard
    /// epoch to odd. Call *before* applying the round's writes; returns
    /// `None` (and leaves the epoch untouched) for write-free rounds.
    /// Only the shard's committer thread may call this.
    pub fn round_begin(&self, shard: usize, write_hashes: &[u64]) -> Option<RoundToken> {
        if write_hashes.is_empty() {
            return None;
        }
        let clock = &self.shards[shard];
        let even = clock.epoch.load(Ordering::Acquire);
        debug_assert!(even.is_multiple_of(2), "nested round on shard {shard}");
        let odd = even + 1;
        clock.publish(odd, write_hashes);
        clock.epoch.store(odd, Ordering::Release);
        Some(RoundToken { shard, odd })
    }

    /// Publish a round's results: update or remove every replica's entry
    /// for the written keys, then move the shard epoch back to even.
    /// `writes` holds each applied write as `(key, Some(value))` for a put
    /// or `(key, None)` for a delete. Must be called *after* the round's
    /// writes are applied and *before* its acks are released.
    pub fn round_publish(&self, token: RoundToken, writes: &[(&[u8], Option<&[u8]>)]) {
        let RoundToken { shard, odd } = token;
        let next_even = odd + 1;
        if self.is_enabled() {
            for slab in &self.replicas {
                let mut slab = slab.lock();
                for &(key, val) in writes {
                    let Some(slot) = slab.slot_of(key) else {
                        continue;
                    };
                    self.obs.cache_invalidations.inc();
                    match val {
                        None => {
                            let delta = -(slab.remove_slot(slot) as i64);
                            self.obs.cache_bytes.add(delta);
                        }
                        Some(v) => {
                            let entry = slab.slots[slot].as_mut().expect("mapped slot occupied");
                            if entry.stamp > next_even {
                                // Stamps only ever reach the epoch this
                                // publication is about to install.
                                self.obs.cache_tripwire.inc();
                                continue;
                            }
                            let old = entry.key.len() + entry.value.len() + ENTRY_OVERHEAD;
                            entry.value = v.into();
                            entry.stamp = next_even;
                            let new = entry.bytes();
                            slab.bytes = slab.bytes + new - old;
                            self.obs.cache_bytes.add(new as i64 - old as i64);
                        }
                    }
                }
                // An updated value may have grown past the cap: trim.
                let mut delta = 0i64;
                while slab.bytes > slab.cap {
                    let Some(v) = slab.pick_victim(None) else {
                        break;
                    };
                    delta -= slab.remove_slot(v) as i64;
                    self.obs.cache_evictions.inc();
                }
                if delta != 0 {
                    self.obs.cache_bytes.add(delta);
                }
            }
        }
        self.shards[shard].epoch.store(next_even, Ordering::Release);
    }

    /// The current round epoch of `shard` (tests).
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].epoch.load(Ordering::Acquire)
    }
}

// The `shard` field documents entry ownership for debugging; keep the
// compiler honest about it being read.
impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("shard", &self.shard)
            .field("stamp", &self.stamp)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> Arc<HotCache> {
        let obs = ServerObs::new();
        HotCache::new(
            &HotCacheConfig {
                capacity_bytes: cap,
                replicas: 1,
                admission: AdmissionKind::AdmitAll,
                eviction: EvictionKind::Clock,
                round_log_slots: 8,
            },
            1,
            obs,
        )
    }

    fn put_round(c: &HotCache, key: &[u8], val: &[u8]) {
        let tok = c.round_begin(0, &[key_hash(key)]).expect("write round");
        c.round_publish(tok, &[(key, Some(val))]);
    }

    #[test]
    fn fill_then_hit() {
        let c = cache(1 << 20);
        let t = c.probe(0, b"k").unwrap_err();
        c.fill(0, b"k", b"v", t);
        assert_eq!(c.probe(0, b"k").unwrap(), b"v");
    }

    #[test]
    fn round_invalidates_written_key_only() {
        let c = cache(1 << 20);
        for (k, v) in [(b"a", b"1"), (b"b", b"2")] {
            let t = c.probe(0, k).unwrap_err();
            c.fill(0, k, v, t);
        }
        put_round(&c, b"a", b"9");
        // Written key serves the round's new value; the other re-validates
        // through the round log and stays.
        assert_eq!(c.probe(0, b"a").unwrap(), b"9");
        assert_eq!(c.probe(0, b"b").unwrap(), b"2");
    }

    #[test]
    fn delete_round_removes_entry() {
        let c = cache(1 << 20);
        let t = c.probe(0, b"k").unwrap_err();
        c.fill(0, b"k", b"v", t);
        let tok = c.round_begin(0, &[key_hash(b"k")]).unwrap();
        c.round_publish(tok, &[(b"k".as_slice(), None)]);
        assert!(c.probe(0, b"k").is_err());
    }

    #[test]
    fn raced_fill_is_discarded() {
        let c = cache(1 << 20);
        let t = c.probe(0, b"k").unwrap_err();
        // A round commits between the engine read and the fill.
        put_round(&c, b"k", b"new");
        c.fill(0, b"k", b"stale", t);
        // The fill must not have shadowed the round's value. (The round
        // updated no entry — the key wasn't cached — so this is a miss.)
        if let Ok(v) = c.probe(0, b"k") {
            assert_eq!(v, b"new");
        }
    }

    #[test]
    fn coverage_loss_drops_entry() {
        let c = cache(1 << 20);
        let t = c.probe(0, b"k").unwrap_err();
        c.fill(0, b"k", b"v", t);
        // Push more rounds than the log holds, none touching `k`.
        for i in 0..20u64 {
            let other = format!("other{i}");
            put_round(&c, other.as_bytes(), b"x");
        }
        // Validation can no longer prove freshness: must miss, not serve.
        assert!(c.probe(0, b"k").is_err());
    }

    #[test]
    fn byte_cap_evicts() {
        let c = cache(3 * (ENTRY_OVERHEAD + 10));
        for i in 0..16u8 {
            let k = [b'k', i];
            let t = c.probe(0, &k).unwrap_err();
            c.fill(0, &k, &[0u8; 8], t);
        }
        assert!(c.bytes() <= 3 * (ENTRY_OVERHEAD + 10));
    }

    #[test]
    fn disable_purges_and_reenable_starts_cold() {
        let c = cache(1 << 20);
        let t = c.probe(0, b"k").unwrap_err();
        c.fill(0, b"k", b"v", t);
        assert!(c.bytes() > 0);
        assert!(!c.set_enabled(false));
        assert_eq!(c.bytes(), 0);
        assert!(c.probe(0, b"k").is_err());
        assert!(c.set_enabled(true));
        assert!(c.probe(0, b"k").is_err());
    }

    #[test]
    fn zero_capacity_never_enables() {
        let c = cache(0);
        assert!(!c.has_capacity());
        assert!(!c.set_enabled(true));
        assert!(c.probe(0, b"k").is_err());
    }

    #[test]
    fn slab_ring_stays_bounded_under_churn() {
        // A long-running server must not grow the slot ring per fill:
        // evicted and invalidated slots go back on the free list, so the
        // ring stays O(capacity) no matter how many keys churn through.
        let cap = 3 * (ENTRY_OVERHEAD + 10);
        let c = cache(cap);
        for i in 0..1000u32 {
            let k = format!("key{i}");
            let t = c.probe(0, k.as_bytes()).unwrap_err();
            c.fill(0, k.as_bytes(), &[0u8; 8], t);
            if i % 7 == 0 {
                // Round-driven delete exercises the invalidation path's
                // remove_slot as well as the eviction loop's.
                let tok = c.round_begin(0, &[key_hash(k.as_bytes())]).unwrap();
                c.round_publish(tok, &[(k.as_bytes(), None)]);
            }
        }
        let slab = c.replicas[0].lock();
        assert!(
            slab.slots.len() <= 4,
            "slot ring grew unboundedly: {} slots",
            slab.slots.len()
        );
        assert_eq!(slab.slots.len(), slab.occupied.len());
        // (HotCache::new may round the per-slab cap up to a small floor.)
        assert!(slab.bytes <= slab.cap);
        // The obs gauge must track actual slab bytes exactly.
        assert_eq!(c.obs.cache_bytes.get(), slab.bytes as i64);
    }

    #[test]
    fn admission_reject_keeps_gauge_in_sync() {
        // With a sketch gate, a cold candidate is declined; any accounting
        // from the attempt must still leave the gauge equal to slab bytes.
        let obs = ServerObs::new();
        let c = HotCache::new(
            &HotCacheConfig {
                capacity_bytes: 2 * (ENTRY_OVERHEAD + 2),
                replicas: 1,
                admission: AdmissionKind::Sketch,
                eviction: EvictionKind::Clock,
                round_log_slots: 8,
            },
            1,
            obs,
        );
        // Make two keys hot enough to be admitted and defended.
        for k in [b"a".as_slice(), b"b"] {
            for _ in 0..8 {
                let _ = c.probe(0, k); // records frequency
            }
            let t = c.probe(0, k).unwrap_err();
            c.fill(0, k, b"v", t);
        }
        // One cold probe + fill: declined by admission.
        let t = c.probe(0, b"x").unwrap_err();
        c.fill(0, b"x", b"v", t);
        assert_eq!(c.obs.cache_bytes.get(), c.bytes() as i64);
    }

    #[test]
    fn fifo_keeps_insertion_order_across_declined_admission() {
        let sketch = FreqSketch::new(256);
        let mut slab = Slab::new(3 * (ENTRY_OVERHEAD + 2), EvictionKind::Fifo);
        let mk = |k: &[u8]| Entry {
            key: k.into(),
            value: b"v".as_slice().into(),
            hash: key_hash(k),
            shard: 0,
            stamp: 0,
        };
        for k in [b"a".as_slice(), b"b", b"c"] {
            for _ in 0..10 {
                sketch.record(key_hash(k));
            }
            assert!(slab.install(mk(k), &sketch).0);
        }
        // Cold candidate declined: must not rotate the FIFO queue, and no
        // entry may have been evicted before the gate fired.
        let (installed, _, evictions) = slab.install(mk(b"x"), &sketch);
        assert!(!installed);
        assert_eq!(evictions, 0);
        // A hot candidate then evicts the *oldest* entry, proving the
        // declined attempt did not disturb insertion order.
        for _ in 0..20 {
            sketch.record(key_hash(b"y"));
        }
        assert!(slab.install(mk(b"y"), &sketch).0);
        assert!(slab.slot_of(b"a").is_none(), "oldest entry must go first");
        assert!(slab.slot_of(b"b").is_some());
        assert!(slab.slot_of(b"c").is_some());
    }

    #[test]
    fn sketch_prefers_frequent_keys() {
        let s = FreqSketch::new(256);
        for _ in 0..8 {
            s.record(key_hash(b"hot"));
        }
        s.record(key_hash(b"cold"));
        assert!(s.estimate(key_hash(b"hot")) > s.estimate(key_hash(b"cold")));
        assert!(s.admit(key_hash(b"hot"), Some(key_hash(b"cold"))));
        assert!(!s.admit(key_hash(b"cold"), Some(key_hash(b"hot"))));
    }
}
