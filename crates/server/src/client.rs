//! Pipelined client for the CacheKV wire protocol.
//!
//! One [`KvClient`] owns one connection. Requests carry client-chosen ids;
//! a background demux thread matches responses (which may arrive in any
//! order) back to waiters, so any number of threads can share a client and
//! keep many requests in flight — that is what makes group commit pay:
//! the server folds concurrently in-flight writes into one commit round.
//!
//! [`RemoteStore`] adapts a client to the [`KvStore`] trait so the
//! workload drivers (YCSB, db_bench-style loops) can run unchanged against
//! a server instead of an in-process engine.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, BatchOp, BatchReply, Request,
    Response,
};
use crate::transport::{Closer, Connection};
use cachekv_lsm::KvStore;
use cachekv_obs::Json;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The connection is gone (EOF, corrupt frame, or server shutdown).
    Disconnected,
    /// The server answered with an error status.
    Remote(String),
    /// The server answered with a status that makes no sense for the
    /// request (protocol bug).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Disconnected => write!(f, "connection closed"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One SCAN page: the returned pairs plus the `more` continuation flag.
pub type ScanPage = (Vec<(Vec<u8>, Vec<u8>)>, bool);

struct ClientInner {
    tx: Mutex<Box<dyn Write + Send>>,
    pending: Mutex<HashMap<u64, Sender<Response>>>,
    next_id: AtomicU64,
    closed: AtomicBool,
    closer: Closer,
}

/// A response not yet waited on — the handle that makes pipelining
/// explicit: issue several requests, then [`Pending::wait`] for each.
pub struct Pending {
    rx: Receiver<Response>,
}

impl Pending {
    /// Block until the response for this request arrives.
    pub fn wait(self) -> Result<Response, ClientError> {
        self.rx.recv().map_err(|_| ClientError::Disconnected)
    }
}

/// A thread-safe, pipelined connection to a [`crate::KvServer`].
pub struct KvClient {
    inner: Arc<ClientInner>,
    demux: Option<JoinHandle<()>>,
}

impl KvClient {
    /// Take ownership of `conn` and start the response demux thread.
    pub fn connect(conn: Connection) -> KvClient {
        let inner = Arc::new(ClientInner {
            tx: Mutex::new(conn.tx),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            closed: AtomicBool::new(false),
            closer: conn.closer,
        });
        let demux = {
            let inner = inner.clone();
            let mut rx = conn.rx;
            std::thread::Builder::new()
                .name("cachekv-client-demux".into())
                .spawn(move || {
                    while let Ok(Some(payload)) = read_frame(&mut rx) {
                        let Ok((id, resp)) = decode_response(&payload) else {
                            break;
                        };
                        if let Some(tx) = inner.pending.lock().remove(&id) {
                            let _ = tx.send(resp);
                        }
                    }
                    inner.closed.store(true, Ordering::Release);
                    // Dropping the one-shot senders wakes every waiter
                    // with Disconnected.
                    inner.pending.lock().clear();
                })
                .expect("spawn client demux")
        };
        KvClient {
            inner,
            demux: Some(demux),
        }
    }

    /// Send `req` without waiting; the returned [`Pending`] resolves when
    /// the response arrives. This is the pipelining primitive.
    pub fn submit(&self, req: &Request) -> Result<Pending, ClientError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(ClientError::Disconnected);
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (otx, orx) = unbounded();
        self.inner.pending.lock().insert(id, otx);
        let payload = encode_request(id, req);
        let mut tx = self.inner.tx.lock();
        let sent = write_frame(&mut *tx, &payload).and_then(|()| tx.flush());
        drop(tx);
        if sent.is_err() {
            self.inner.pending.lock().remove(&id);
            return Err(ClientError::Disconnected);
        }
        Ok(Pending { rx: orx })
    }

    fn call(&self, req: &Request) -> Result<Response, ClientError> {
        self.submit(req)?.wait()
    }

    /// Fetch `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("get")),
        }
    }

    /// Write `key = value`; returns after the server's group commit.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("put")),
        }
    }

    /// Delete `key`; returns after the server's group commit.
    pub fn delete(&self, key: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::Delete { key: key.to_vec() })? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("delete")),
        }
    }

    /// Run `ops` as one atomic-ack batch: one reply, acked only after
    /// every op committed (gets observe earlier writes in the same batch
    /// on the same shard).
    pub fn batch(&self, ops: Vec<BatchOp>) -> Result<Vec<BatchReply>, ClientError> {
        match self.call(&Request::Batch { ops })? {
            Response::Batch(replies) => Ok(replies),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("batch")),
        }
    }

    /// One SCAN page: up to `limit` live pairs with `start <= key < end`
    /// (empty `end` = unbounded), strictly after `resume_after` when set.
    /// Returns `(items, more)`; `more` means the server truncated and a
    /// continuation (resume after the last returned key) fetches the rest.
    pub fn scan(
        &self,
        start: &[u8],
        end: &[u8],
        limit: u32,
        resume_after: Option<&[u8]>,
    ) -> Result<ScanPage, ClientError> {
        match self.call(&Request::Scan {
            start: start.to_vec(),
            end: end.to_vec(),
            limit,
            resume_after: resume_after.map(|k| k.to_vec()),
        })? {
            Response::Scan { items, more } => Ok((items, more)),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("scan")),
        }
    }

    /// The server's stats document (JSON: `server` metrics, per-shard
    /// snapshots, and a merged `StatsSnapshot`).
    pub fn stats(&self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(doc) => Ok(doc),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Liveness probe; with `sync` the server first drains every shard
    /// queue and quiesces every store (the wire form of `quiesce`).
    pub fn ping(&self, sync: bool) -> Result<(), ClientError> {
        match self.call(&Request::Ping { sync })? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::Unexpected("ping")),
        }
    }

    /// Tear the connection down and join the demux thread.
    pub fn close(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        (self.inner.closer)();
        if let Some(h) = self.demux.take() {
            let _ = h.join();
        }
    }
}

impl Drop for KvClient {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// [`KvStore`] adapter over a shared [`KvClient`], so workload drivers
/// and the shell run against the wire exactly as they run against an
/// in-process engine.
pub struct RemoteStore {
    client: Arc<KvClient>,
}

impl RemoteStore {
    pub fn new(client: Arc<KvClient>) -> Self {
        RemoteStore { client }
    }

    /// The underlying client (for stats or pipelined access).
    pub fn client(&self) -> &Arc<KvClient> {
        &self.client
    }
}

/// Map a wire error string back onto the nearest [`cachekv_lsm::Error`].
/// The exact variant crossed the wire as its `Display` form; recovering
/// `OutOfSpace`/`Closed` keeps workload drivers' error handling working.
fn remote_error(e: ClientError) -> cachekv_lsm::Error {
    match e {
        ClientError::Disconnected => cachekv_lsm::Error::Closed,
        ClientError::Remote(msg) => {
            if msg.contains("out of persistent space") {
                cachekv_lsm::Error::OutOfSpace(msg)
            } else if msg.contains("store is closed") || msg.contains("shutting down") {
                cachekv_lsm::Error::Closed
            } else {
                cachekv_lsm::Error::Corruption(msg)
            }
        }
        ClientError::Unexpected(what) => {
            cachekv_lsm::Error::Corruption(format!("protocol: unexpected response for {what}"))
        }
    }
}

impl KvStore for RemoteStore {
    fn put(&self, key: &[u8], value: &[u8]) -> cachekv_lsm::Result<()> {
        self.client.put(key, value).map_err(remote_error)
    }

    fn get(&self, key: &[u8]) -> cachekv_lsm::Result<Option<Vec<u8>>> {
        self.client.get(key).map_err(remote_error)
    }

    fn delete(&self, key: &[u8]) -> cachekv_lsm::Result<()> {
        self.client.delete(key).map_err(remote_error)
    }

    fn name(&self) -> &'static str {
        "cachekv-remote"
    }

    /// Paged wire scan: follow continuation cursors until the limit is
    /// met or the server reports the range exhausted. The concatenated
    /// pages equal one unbounded scan of the same range.
    fn scan(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> cachekv_lsm::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut resume: Option<Vec<u8>> = None;
        loop {
            let want = (limit - out.len()).min(u32::MAX as usize) as u32;
            let (items, more) = self
                .client
                .scan(start, end, want, resume.as_deref())
                .map_err(remote_error)?;
            out.extend(items);
            if !more || out.len() >= limit {
                out.truncate(limit);
                return Ok(out);
            }
            resume = out.last().map(|(k, _)| k.clone());
        }
    }

    fn quiesce(&self) {
        let _ = self.client.ping(true);
    }

    /// The merged `StatsSnapshot` member of the server's stats document
    /// (harnesses expect one snapshot per label, not the full document).
    fn snapshot_json(&self) -> Option<String> {
        let doc = self.client.stats().ok()?;
        let parsed = Json::parse(&doc).ok()?;
        parsed.get("merged").map(|m| format!("{m}"))
    }
}
