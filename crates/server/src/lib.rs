//! `cachekv-server` — the service layer over the CacheKV engine.
//!
//! The engine (`crates/core`) gives one process a persistent-cache-resident
//! KV store; this crate turns it into a *service*: a wire protocol, a
//! pluggable transport, and a sharded front-end whose write path batches
//! concurrent requests into group commits.
//!
//! * [`protocol`] — length-prefixed, CRC-framed binary frames
//!   (GET/PUT/DELETE/BATCH/STATS/PING), pipelined via client-chosen ids.
//! * [`transport`] — how bytes move: an in-process loopback with bounded
//!   duplex pipes (deterministic tests/benches, real backpressure) or a
//!   `std::net` TCP listener with a thread per connection. The server is
//!   written against the [`Transport`] trait only.
//! * [`shard`]/[`server`] — keys hash-route across N engine shards; each
//!   shard fronts its store with a bounded submission queue drained in
//!   group-commit rounds. Writes are acked only after their whole round is
//!   applied (under eADR, applied ⇒ persisted — see `tests/server_crash.rs`
//!   for the crash-sweep proof). Full queues block the connection reader,
//!   backpressuring the transport and ultimately the client.
//! * [`client`] — pipelined [`KvClient`] plus [`RemoteStore`], a
//!   [`cachekv_lsm::KvStore`] adapter so YCSB/db_bench drivers run against
//!   the wire unchanged.
//! * [`obs`] — `server.*` counters, gauges, and latency histograms; the
//!   STATS opcode returns them with per-shard engine snapshots.

pub mod cache;
pub mod client;
pub mod obs;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod transport;

pub use cache::{Admission, AdmissionKind, Eviction, EvictionKind, HotCache, HotCacheConfig};
pub use client::{ClientError, KvClient, Pending, RemoteStore};
pub use obs::ServerObs;
pub use protocol::{BatchOp, BatchReply, Request, Response};
pub use server::{shard_for_key, KvServer, ReplySender, ServerConfig, MAX_SCAN_PAGE};
pub use shard::Shard;
pub use transport::{Connection, LoopbackTransport, TcpTransport, Transport};
