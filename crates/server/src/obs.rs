//! `server.*` instruments: request counters, per-op latency histograms,
//! group-commit batch sizes, queue depths, connection counts.
//!
//! One [`ServerObs`] per [`crate::KvServer`], shared by the accept loop,
//! every connection's reader/writer threads, and the shard committers.
//! All hot-path handles are pre-fetched `Arc`s (recording is purely
//! atomic); the registry lock is only taken at construction and snapshot.

use cachekv_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Instruments for the service front-end.
pub struct ServerObs {
    pub registry: Registry,

    // Request mix.
    pub requests: Arc<Counter>,
    pub gets: Arc<Counter>,
    pub puts: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub batch_ops: Arc<Counter>,
    pub pings: Arc<Counter>,
    pub stats_requests: Arc<Counter>,
    pub errors: Arc<Counter>,
    /// SCAN requests served (each continuation page counts once).
    pub scans: Arc<Counter>,
    /// Items returned across all SCAN pages.
    pub scan_items: Arc<Counter>,

    // Per-op wire-to-ack latency (p50/p95/p99 come from the histogram).
    pub get_ns: Arc<Histogram>,
    pub put_ns: Arc<Histogram>,
    pub delete_ns: Arc<Histogram>,
    pub batch_ns: Arc<Histogram>,
    /// SCAN wire-to-ack latency (fan-out + cross-shard merge included).
    pub scan_ns: Arc<Histogram>,

    // Group commit.
    /// Committed batches (one per shard commit round).
    pub group_commits: Arc<Counter>,
    /// Entries applied per commit round.
    pub batch_size: Arc<Histogram>,
    /// Submission-queue depth observed at each commit round.
    pub queue_depth_hist: Arc<Histogram>,
    /// Current total queued submissions across shards.
    pub queue_depth: Arc<Gauge>,
    /// Submissions that blocked on a full shard queue (backpressure).
    pub backpressure_waits: Arc<Counter>,

    // Hot-key cache tier (see `crate::cache`).
    /// GETs served from a replica slab (no queue, no engine probe).
    pub cache_hits: Arc<Counter>,
    /// GETs that fell through to the engine.
    pub cache_misses: Arc<Counter>,
    /// Engine values installed into a slab after a miss.
    pub cache_fills: Arc<Counter>,
    /// Fills discarded because a commit round raced the engine read.
    pub cache_fill_races: Arc<Counter>,
    /// Fills rejected by the admission policy (victim was hotter).
    pub cache_admission_rejects: Arc<Counter>,
    /// Entries updated/removed by round publication or round-log checks.
    pub cache_invalidations: Arc<Counter>,
    /// Entries displaced by the byte cap.
    pub cache_evictions: Arc<Counter>,
    /// Coherence-invariant violations (must stay 0; tests assert on it).
    pub cache_tripwire: Arc<Counter>,
    /// Current cached bytes across every replica slab.
    pub cache_bytes: Arc<Gauge>,

    // Connections.
    pub connections: Arc<Gauge>,
    pub connections_total: Arc<Counter>,

    // Wire traffic.
    pub bytes_in: Arc<Counter>,
    pub bytes_out: Arc<Counter>,
}

impl ServerObs {
    /// Register every instrument under the `server.` namespace.
    pub fn new() -> Arc<Self> {
        let registry = Registry::new();
        Arc::new(ServerObs {
            requests: registry.counter("server.requests"),
            registry: registry.clone(),
            gets: registry.counter("server.gets"),
            puts: registry.counter("server.puts"),
            deletes: registry.counter("server.deletes"),
            batches: registry.counter("server.batches"),
            batch_ops: registry.counter("server.batch_ops"),
            pings: registry.counter("server.pings"),
            stats_requests: registry.counter("server.stats_requests"),
            errors: registry.counter("server.errors"),
            scans: registry.counter("server.scans"),
            scan_items: registry.counter("server.scan.items"),
            get_ns: registry.histogram("server.get_ns"),
            put_ns: registry.histogram("server.put_ns"),
            delete_ns: registry.histogram("server.delete_ns"),
            batch_ns: registry.histogram("server.batch_ns"),
            scan_ns: registry.histogram("server.scan_ns"),
            group_commits: registry.counter("server.group_commit.commits"),
            batch_size: registry.histogram("server.group_commit.batch_size"),
            queue_depth_hist: registry.histogram("server.group_commit.queue_depth"),
            queue_depth: registry.gauge("server.queue_depth"),
            backpressure_waits: registry.counter("server.backpressure_waits"),
            cache_hits: registry.counter("server.cache.hits"),
            cache_misses: registry.counter("server.cache.misses"),
            cache_fills: registry.counter("server.cache.fills"),
            cache_fill_races: registry.counter("server.cache.fill_races"),
            cache_admission_rejects: registry.counter("server.cache.admission_rejects"),
            cache_invalidations: registry.counter("server.cache.invalidations"),
            cache_evictions: registry.counter("server.cache.evictions"),
            cache_tripwire: registry.counter("server.cache.tripwire"),
            cache_bytes: registry.gauge("server.cache.bytes"),
            connections: registry.gauge("server.connections"),
            connections_total: registry.counter("server.connections_total"),
            bytes_in: registry.counter("server.bytes_in"),
            bytes_out: registry.counter("server.bytes_out"),
        })
    }
}
