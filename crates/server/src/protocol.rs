//! The wire protocol: length-prefixed, CRC-framed binary messages.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [len: u32 LE][crc32c(payload): u32 LE][payload: len bytes]
//! ```
//!
//! The CRC is the same Castagnoli CRC-32C the storage layer uses for log
//! records and table blocks ([`cachekv_storage::crc32c`]), so a flipped bit
//! anywhere on the wire is detected before the payload is interpreted.
//!
//! Request payloads are `[id: u64][opcode: u8][body]`; response payloads
//! are `[id: u64][status: u8][body]`. The `id` is chosen by the client and
//! echoed verbatim, which is what lets a connection carry many requests in
//! flight (pipelining): responses may return in any order and the client
//! demultiplexes on `id`.
//!
//! Opcodes: GET, PUT, DELETE, BATCH (a mixed op vector applied with
//! group-commit semantics), STATS (the server's metrics document as JSON),
//! and PING (with an optional `sync` flag that drains every shard queue and
//! quiesces the stores before replying — the wire form of
//! [`cachekv_lsm::KvStore::quiesce`]).

use cachekv_storage::crc::crc32c;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame, large enough for a BATCH of maximum-size
/// values but small enough that a corrupt length prefix cannot trigger a
/// multi-GiB allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Request opcodes (the first payload byte after the id).
pub const OP_GET: u8 = 1;
pub const OP_PUT: u8 = 2;
pub const OP_DELETE: u8 = 3;
pub const OP_BATCH: u8 = 4;
pub const OP_STATS: u8 = 5;
pub const OP_PING: u8 = 6;
pub const OP_SCAN: u8 = 7;

/// Response status codes.
pub const ST_OK: u8 = 0;
pub const ST_VALUE: u8 = 1;
pub const ST_NOT_FOUND: u8 = 2;
pub const ST_BATCH: u8 = 3;
pub const ST_STATS: u8 = 4;
pub const ST_ERR: u8 = 5;
pub const ST_SCAN: u8 = 6;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Get {
        key: Vec<u8>,
    },
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        key: Vec<u8>,
    },
    Batch {
        ops: Vec<BatchOp>,
    },
    Stats,
    Ping {
        sync: bool,
    },
    /// Range scan: up to `limit` live pairs with `start <= key < end`
    /// (empty `end` = unbounded). `resume_after` is the continuation
    /// cursor: when present, only keys strictly greater are returned, so a
    /// client pages a long range by echoing the last key it received.
    Scan {
        start: Vec<u8>,
        end: Vec<u8>,
        limit: u32,
        resume_after: Option<Vec<u8>>,
    },
}

/// One operation inside a BATCH. Gets are allowed so a batch can read its
/// own writes: every batch op is routed through the shard submission queues
/// and executes in submission order on its shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    Put { key: Vec<u8>, value: Vec<u8> },
    Delete { key: Vec<u8> },
    Get { key: Vec<u8> },
}

impl BatchOp {
    /// The key this op routes on.
    pub fn key(&self) -> &[u8] {
        match self {
            BatchOp::Put { key, .. } | BatchOp::Delete { key } | BatchOp::Get { key } => key,
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// PUT / DELETE / PING acknowledged.
    Ok,
    /// GET hit.
    Value(Vec<u8>),
    /// GET miss (absent or deleted).
    NotFound,
    /// Per-op replies of a BATCH, in submission order.
    Batch(Vec<BatchReply>),
    /// The STATS JSON document.
    Stats(String),
    /// The request failed server-side.
    Err(String),
    /// One SCAN result page, sorted ascending. `more` means the range was
    /// truncated at the limit and a continuation (resume after the last
    /// key here) can fetch the rest.
    Scan {
        items: Vec<(Vec<u8>, Vec<u8>)>,
        more: bool,
    },
}

/// One BATCH op's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    Ok,
    Value(Vec<u8>),
    NotFound,
    Err(String),
}

/// Decode failures (distinct from transport-level I/O errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the structure it promised.
    Truncated(&'static str),
    /// An unknown opcode / status byte.
    BadTag(u8),
    /// A length field exceeded its limit.
    TooLarge { what: &'static str, len: usize },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated(what) => write!(f, "truncated payload: {what}"),
            ProtoError::BadTag(t) => write!(f, "unknown opcode/status byte {t}"),
            ProtoError::TooLarge { what, len } => write!(f, "{what} too large: {len}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: length, CRC, payload. The caller flushes.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut hdr = [0u8; 8];
    hdr[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    hdr[4..].copy_from_slice(&crc32c(payload).to_le_bytes());
    w.write_all(&hdr)?;
    w.write_all(payload)
}

/// Read one frame's payload, verifying its CRC. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer closed the connection); any
/// other shortfall, an oversized length, or a CRC mismatch is an error.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 8];
    let mut got = 0;
    while got < hdr.len() {
        match r.read(&mut hdr[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(hdr[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got_crc = crc32c(&payload);
    if got_crc != want_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: want {want_crc:#010x}, got {got_crc:#010x}"),
        ));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
    buf.extend_from_slice(b);
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        let b = *self.data.get(self.pos).ok_or(ProtoError::Truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        let end = self.pos + 4;
        if end > self.data.len() {
            return Err(ProtoError::Truncated(what));
        }
        let v = u32::from_le_bytes(self.data[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        let end = self.pos + 8;
        if end > self.data.len() {
            return Err(ProtoError::Truncated(what));
        }
        let v = u64::from_le_bytes(self.data[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32(what)? as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::TooLarge { what, len });
        }
        let end = self.pos + len;
        if end > self.data.len() {
            return Err(ProtoError::Truncated(what));
        }
        let v = self.data[self.pos..end].to_vec();
        self.pos = end;
        Ok(v)
    }

    fn done(&self, what: &'static str) -> Result<(), ProtoError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ProtoError::Truncated(what))
        }
    }
}

/// Encode `(id, request)` into a frame payload.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(&id.to_le_bytes());
    match req {
        Request::Get { key } => {
            buf.push(OP_GET);
            put_bytes(&mut buf, key);
        }
        Request::Put { key, value } => {
            buf.push(OP_PUT);
            put_bytes(&mut buf, key);
            put_bytes(&mut buf, value);
        }
        Request::Delete { key } => {
            buf.push(OP_DELETE);
            put_bytes(&mut buf, key);
        }
        Request::Batch { ops } => {
            buf.push(OP_BATCH);
            buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                match op {
                    BatchOp::Put { key, value } => {
                        buf.push(OP_PUT);
                        put_bytes(&mut buf, key);
                        put_bytes(&mut buf, value);
                    }
                    BatchOp::Delete { key } => {
                        buf.push(OP_DELETE);
                        put_bytes(&mut buf, key);
                    }
                    BatchOp::Get { key } => {
                        buf.push(OP_GET);
                        put_bytes(&mut buf, key);
                    }
                }
            }
        }
        Request::Stats => buf.push(OP_STATS),
        Request::Ping { sync } => {
            buf.push(OP_PING);
            buf.push(*sync as u8);
        }
        Request::Scan {
            start,
            end,
            limit,
            resume_after,
        } => {
            buf.push(OP_SCAN);
            put_bytes(&mut buf, start);
            put_bytes(&mut buf, end);
            buf.extend_from_slice(&limit.to_le_bytes());
            match resume_after {
                Some(k) => {
                    buf.push(1);
                    put_bytes(&mut buf, k);
                }
                None => buf.push(0),
            }
        }
    }
    buf
}

/// Decode a frame payload into `(id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtoError> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let id = c.u64("request id")?;
    let op = c.u8("opcode")?;
    let req = match op {
        OP_GET => Request::Get {
            key: c.bytes("get key")?,
        },
        OP_PUT => Request::Put {
            key: c.bytes("put key")?,
            value: c.bytes("put value")?,
        },
        OP_DELETE => Request::Delete {
            key: c.bytes("delete key")?,
        },
        OP_BATCH => {
            let n = c.u32("batch count")? as usize;
            if n > MAX_FRAME / 5 {
                return Err(ProtoError::TooLarge {
                    what: "batch count",
                    len: n,
                });
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(match c.u8("batch opcode")? {
                    OP_PUT => BatchOp::Put {
                        key: c.bytes("batch put key")?,
                        value: c.bytes("batch put value")?,
                    },
                    OP_DELETE => BatchOp::Delete {
                        key: c.bytes("batch delete key")?,
                    },
                    OP_GET => BatchOp::Get {
                        key: c.bytes("batch get key")?,
                    },
                    t => return Err(ProtoError::BadTag(t)),
                });
            }
            Request::Batch { ops }
        }
        OP_STATS => Request::Stats,
        OP_PING => Request::Ping {
            sync: c.u8("ping flag")? != 0,
        },
        OP_SCAN => {
            let start = c.bytes("scan start")?;
            let end = c.bytes("scan end")?;
            let limit = c.u32("scan limit")?;
            let resume_after = match c.u8("scan resume flag")? {
                0 => None,
                1 => Some(c.bytes("scan resume key")?),
                t => return Err(ProtoError::BadTag(t)),
            };
            Request::Scan {
                start,
                end,
                limit,
                resume_after,
            }
        }
        t => return Err(ProtoError::BadTag(t)),
    };
    c.done("trailing request bytes")?;
    Ok((id, req))
}

/// Encode `(id, response)` into a frame payload.
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(&id.to_le_bytes());
    match resp {
        Response::Ok => buf.push(ST_OK),
        Response::Value(v) => {
            buf.push(ST_VALUE);
            put_bytes(&mut buf, v);
        }
        Response::NotFound => buf.push(ST_NOT_FOUND),
        Response::Batch(replies) => {
            buf.push(ST_BATCH);
            buf.extend_from_slice(&(replies.len() as u32).to_le_bytes());
            for r in replies {
                match r {
                    BatchReply::Ok => buf.push(ST_OK),
                    BatchReply::Value(v) => {
                        buf.push(ST_VALUE);
                        put_bytes(&mut buf, v);
                    }
                    BatchReply::NotFound => buf.push(ST_NOT_FOUND),
                    BatchReply::Err(e) => {
                        buf.push(ST_ERR);
                        put_bytes(&mut buf, e.as_bytes());
                    }
                }
            }
        }
        Response::Stats(json) => {
            buf.push(ST_STATS);
            put_bytes(&mut buf, json.as_bytes());
        }
        Response::Err(e) => {
            buf.push(ST_ERR);
            put_bytes(&mut buf, e.as_bytes());
        }
        Response::Scan { items, more } => {
            buf.push(ST_SCAN);
            buf.push(*more as u8);
            buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for (k, v) in items {
                put_bytes(&mut buf, k);
                put_bytes(&mut buf, v);
            }
        }
    }
    buf
}

/// Decode a frame payload into `(id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtoError> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let id = c.u64("response id")?;
    let st = c.u8("status")?;
    let resp = match st {
        ST_OK => Response::Ok,
        ST_VALUE => Response::Value(c.bytes("value")?),
        ST_NOT_FOUND => Response::NotFound,
        ST_BATCH => {
            let n = c.u32("batch reply count")? as usize;
            if n > MAX_FRAME {
                return Err(ProtoError::TooLarge {
                    what: "batch reply count",
                    len: n,
                });
            }
            let mut replies = Vec::with_capacity(n);
            for _ in 0..n {
                replies.push(match c.u8("batch reply status")? {
                    ST_OK => BatchReply::Ok,
                    ST_VALUE => BatchReply::Value(c.bytes("batch value")?),
                    ST_NOT_FOUND => BatchReply::NotFound,
                    ST_ERR => BatchReply::Err(
                        String::from_utf8_lossy(&c.bytes("batch error")?).into_owned(),
                    ),
                    t => return Err(ProtoError::BadTag(t)),
                });
            }
            Response::Batch(replies)
        }
        ST_STATS => Response::Stats(String::from_utf8_lossy(&c.bytes("stats json")?).into_owned()),
        ST_ERR => Response::Err(String::from_utf8_lossy(&c.bytes("error")?).into_owned()),
        ST_SCAN => {
            let more = match c.u8("scan more flag")? {
                0 => false,
                1 => true,
                t => return Err(ProtoError::BadTag(t)),
            };
            let n = c.u32("scan item count")? as usize;
            // Each item costs at least two length prefixes: same
            // poisoned-count guard as BATCH.
            if n > MAX_FRAME / 8 {
                return Err(ProtoError::TooLarge {
                    what: "scan item count",
                    len: n,
                });
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let k = c.bytes("scan item key")?;
                let v = c.bytes("scan item value")?;
                items.push((k, v));
            }
            Response::Scan { items, more }
        }
        t => return Err(ProtoError::BadTag(t)),
    };
    c.done("trailing response bytes")?;
    Ok((id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let payload = encode_request(77, &req);
        let (id, got) = decode_request(&payload).unwrap();
        assert_eq!(id, 77);
        assert_eq!(got, req);
    }

    fn roundtrip_resp(resp: Response) {
        let payload = encode_response(981, &resp);
        let (id, got) = decode_response(&payload).unwrap();
        assert_eq!(id, 981);
        assert_eq!(got, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Get { key: b"k".to_vec() });
        roundtrip_req(Request::Put {
            key: b"key".to_vec(),
            value: vec![0u8; 4096],
        });
        roundtrip_req(Request::Delete { key: vec![] });
        roundtrip_req(Request::Batch {
            ops: vec![
                BatchOp::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                BatchOp::Get { key: b"a".to_vec() },
                BatchOp::Delete { key: b"b".to_vec() },
            ],
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Ping { sync: true });
        roundtrip_req(Request::Ping { sync: false });
        roundtrip_req(Request::Scan {
            start: b"a".to_vec(),
            end: b"z".to_vec(),
            limit: 128,
            resume_after: None,
        });
        roundtrip_req(Request::Scan {
            start: vec![],
            end: vec![],
            limit: u32::MAX,
            resume_after: Some(b"k00042".to_vec()),
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Value(b"v".to_vec()));
        roundtrip_resp(Response::NotFound);
        roundtrip_resp(Response::Batch(vec![
            BatchReply::Ok,
            BatchReply::Value(vec![9u8; 100]),
            BatchReply::NotFound,
            BatchReply::Err("boom".into()),
        ]));
        roundtrip_resp(Response::Stats("{\"a\":1}".into()));
        roundtrip_resp(Response::Err("nope".into()));
        roundtrip_resp(Response::Scan {
            items: vec![],
            more: false,
        });
        roundtrip_resp(Response::Scan {
            items: vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), vec![7u8; 300]),
                (vec![], vec![]),
            ],
            more: true,
        });
    }

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r: &[u8] = &wire;
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_detects_corruption() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload-bytes").unwrap();
        // Flip one payload bit: the CRC must catch it.
        let n = wire.len();
        wire[n - 3] ^= 0x40;
        let mut r: &[u8] = &wire;
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"));
    }

    #[test]
    fn frame_rejects_oversized_length() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut r: &[u8] = &wire;
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn frame_truncated_header_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"xyz").unwrap();
        wire.truncate(5); // mid-header of... actually mid-frame
        let mut r: &[u8] = &wire;
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let payload = encode_request(
            1,
            &Request::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        );
        for cut in 1..payload.len() {
            assert!(decode_request(&payload[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = payload.clone();
        bad[8] = 0xEE; // opcode byte
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::BadTag(0xEE))
        ));
        // Trailing garbage is rejected too.
        let mut long = payload;
        long.push(0);
        assert!(decode_request(&long).is_err());
    }

    #[test]
    fn scan_decode_rejects_truncation_and_bad_flags() {
        let payload = encode_request(
            3,
            &Request::Scan {
                start: b"aa".to_vec(),
                end: b"zz".to_vec(),
                limit: 10,
                resume_after: Some(b"mm".to_vec()),
            },
        );
        for cut in 1..payload.len() {
            assert!(decode_request(&payload[..cut]).is_err(), "cut {cut}");
        }
        // A resume flag outside {0, 1} is a bad tag.
        let mut bad = payload.clone();
        let flag_pos = payload.len() - 2 - 4 - 1; // before [len u32][key "mm"]
        assert_eq!(bad[flag_pos], 1);
        bad[flag_pos] = 9;
        assert!(matches!(decode_request(&bad), Err(ProtoError::BadTag(9))));

        let resp = encode_response(
            4,
            &Response::Scan {
                items: vec![(b"k".to_vec(), b"v".to_vec())],
                more: false,
            },
        );
        for cut in 1..resp.len() {
            assert!(decode_response(&resp[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = resp.clone();
        trailing.push(0);
        assert!(decode_response(&trailing).is_err());
        // A poisoned item count must be rejected before allocation.
        let mut poisoned = Vec::new();
        poisoned.extend_from_slice(&4u64.to_le_bytes());
        poisoned.push(ST_SCAN);
        poisoned.push(0);
        poisoned.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&poisoned),
            Err(ProtoError::TooLarge { .. })
        ));
    }
}
