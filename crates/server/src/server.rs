//! The sharded, pipelined service front-end.
//!
//! ```text
//!   clients ── transport (loopback / TCP) ── accept loop
//!                                              │ thread per connection
//!                       ┌── reader thread ─────┤  (pipelined: reads req
//!                       │                      │   K+1 while K commits)
//!     GET / STATS / PING│ inline               │ PUT / DELETE / BATCH
//!                       ▼                      ▼ hash-route per key
//!                  shard.store().get()   bounded submission queues
//!                                              │ group-commit rounds
//!                                        shard committer threads
//!                       └───────► writer thread ◄── acks (any order)
//! ```
//!
//! Writes are acked only after their group-commit round is fully applied;
//! a full submission queue blocks the reader thread, which backpressures
//! the transport. Shutdown stops accepting, force-closes connections, then
//! drains every shard queue before returning.

use crate::cache::{HotCache, HotCacheConfig};
use crate::obs::ServerObs;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, BatchOp, Request, Response,
};
use crate::shard::{Ack, BatchAcc, Shard, SubOp, Submission};
use crate::transport::{Closer, Transport};
use cachekv_lsm::KvStore;
use cachekv_obs::{Json, StatsSnapshot};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Submissions a shard queue holds before `submit` blocks
    /// (backpressure bound).
    pub shard_queue_cap: usize,
    /// Max submissions folded into one group-commit round.
    pub group_commit_max: usize,
    /// Connections beyond this are refused (closed on accept).
    pub max_connections: usize,
    /// Hot-key cache tier in front of the GET path (see [`crate::cache`]).
    /// `cache.capacity_bytes == 0` builds the server without the tier.
    pub cache: HotCacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shard_queue_cap: 256,
            group_commit_max: 32,
            max_connections: 64,
            cache: HotCacheConfig::default(),
        }
    }
}

/// Hard per-page item cap for SCAN responses: a client cannot ask one
/// frame to carry more than this many pairs.
pub const MAX_SCAN_PAGE: usize = 4096;

/// Soft per-page byte budget for SCAN responses, kept well under
/// [`crate::protocol::MAX_FRAME`] so a page of maximum-size values still
/// frames (the page is cut early once the budget is crossed).
pub const MAX_SCAN_BYTES: usize = 4 << 20;

/// Route `key` to one of `n` shards (stable FNV-1a 64 hash — must not
/// change across restarts, or recovered shards would serve wrong keys).
pub fn shard_for_key(key: &[u8], n: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % n.max(1) as u64) as usize
}

enum WriterMsg {
    Frame(Vec<u8>),
    Close,
}

/// Cloneable handle that routes an encoded response back to its
/// connection's writer thread. Sends to a torn-down connection are
/// silently dropped (the client is gone; the commit still happened).
#[derive(Clone)]
pub struct ReplySender {
    tx: Sender<WriterMsg>,
    obs: Arc<ServerObs>,
}

impl ReplySender {
    /// Encode and enqueue `(id, resp)` for the writer thread.
    pub fn send(&self, id: u64, resp: &Response) {
        let payload = encode_response(id, resp);
        self.obs.bytes_out.add(payload.len() as u64 + 8);
        let _ = self.tx.send(WriterMsg::Frame(payload));
    }
}

struct ServerShared {
    shards: Vec<Shard>,
    cache: Arc<HotCache>,
    obs: Arc<ServerObs>,
    transport: Arc<dyn Transport>,
    cfg: ServerConfig,
    stopping: AtomicBool,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    conn_closers: Mutex<Vec<Closer>>,
}

/// A running KV service: accept loop + per-connection threads + shard
/// committers. Stops cleanly via [`KvServer::shutdown`] (drains in-flight
/// batches) — dropping without shutdown also joins everything.
pub struct KvServer {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl KvServer {
    /// Start serving `stores` (one per shard; key-hash routed) over
    /// `transport`.
    pub fn start(
        stores: Vec<Arc<dyn KvStore>>,
        transport: Arc<dyn Transport>,
        cfg: ServerConfig,
    ) -> KvServer {
        assert!(!stores.is_empty(), "server needs at least one shard");
        let obs = ServerObs::new();
        let cache = HotCache::new(&cfg.cache, stores.len(), obs.clone());
        let shards = stores
            .into_iter()
            .enumerate()
            .map(|(i, store)| {
                Shard::spawn(
                    i,
                    store,
                    cfg.shard_queue_cap,
                    cfg.group_commit_max,
                    obs.clone(),
                    cache.clone(),
                )
            })
            .collect();
        let shared = Arc::new(ServerShared {
            shards,
            cache,
            obs,
            transport,
            cfg,
            stopping: AtomicBool::new(false),
            conn_threads: Mutex::new(Vec::new()),
            conn_closers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("cachekv-accept".into())
                .spawn(move || accept_loop(&shared))
                .expect("spawn accept loop")
        };
        KvServer {
            shared,
            accept: Some(accept),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// The server's instruments (tests / benches).
    pub fn obs(&self) -> &Arc<ServerObs> {
        &self.shared.obs
    }

    /// The hot-key cache tier (runtime toggle, stats, tests).
    pub fn cache(&self) -> &Arc<HotCache> {
        &self.shared.cache
    }

    /// The STATS wire document: `server.*` metrics, each shard's full
    /// [`StatsSnapshot`], and a merged snapshot (shard 0's layers with the
    /// `server.*` metrics folded into its memory section) for artifact
    /// pipelines that expect one `StatsSnapshot` per label.
    pub fn stats_document(&self) -> String {
        stats_document(&self.shared)
    }

    /// Just the merged snapshot (see [`KvServer::stats_document`]).
    pub fn merged_snapshot_json(&self) -> String {
        merged_snapshot_json(&self.shared)
    }

    /// Stop accepting, force-close connections, then drain and stop every
    /// shard committer. Everything already accepted onto a queue is
    /// committed before this returns.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.transport.close();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for closer in self.shared.conn_closers.lock().drain(..) {
            closer();
        }
        for h in self.shared.conn_threads.lock().drain(..) {
            let _ = h.join();
        }
        // Drain after the readers stop submitting: every accepted write is
        // committed (and acked, where the connection still exists) before
        // shutdown returns. The committer threads themselves join in
        // Shard's Drop when the last ServerShared ref goes away.
        for shard in &self.shared.shards {
            shard.wait_idle_and_quiesce();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.teardown();
        // Shards drain-and-join in their own Drop (after teardown stopped
        // all submitters).
    }
}

fn accept_loop(shared: &Arc<ServerShared>) {
    while let Some(conn) = shared.transport.accept() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let obs = &shared.obs;
        if obs.connections.get() >= shared.cfg.max_connections as i64 {
            // At capacity: refuse by dropping the connection (the peer
            // sees EOF).
            continue;
        }
        obs.connections.inc();
        obs.connections_total.inc();
        shared.conn_closers.lock().push(conn.closer);
        let handle = {
            let shared = shared.clone();
            let peer = conn.peer.clone();
            let rx = conn.rx;
            let tx = conn.tx;
            std::thread::Builder::new()
                .name(format!("cachekv-conn-{peer}"))
                .spawn(move || serve_connection(&shared, rx, tx))
                .expect("spawn connection thread")
        };
        shared.conn_threads.lock().push(handle);
    }
}

/// Writer thread: drain the response channel, coalescing flushes.
fn writer_loop(rx: &Receiver<WriterMsg>, mut tx: Box<dyn Write + Send>) {
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        let mut m = msg;
        loop {
            match m {
                WriterMsg::Close => return,
                WriterMsg::Frame(payload) => {
                    if write_frame(&mut tx, &payload).is_err() {
                        return;
                    }
                }
            }
            match rx.try_recv() {
                Ok(next) => m = next,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        if tx.flush().is_err() {
            return;
        }
    }
}

/// Reader thread: decode frames, dispatch, loop. Exits on EOF, frame
/// corruption, or server shutdown (closer-induced EOF).
fn serve_connection(
    shared: &Arc<ServerShared>,
    mut rx: Box<dyn std::io::Read + Send>,
    tx: Box<dyn Write + Send>,
) {
    let (wtx, wrx) = unbounded::<WriterMsg>();
    let writer = std::thread::Builder::new()
        .name("cachekv-conn-writer".into())
        .spawn(move || writer_loop(&wrx, tx))
        .expect("spawn connection writer");
    let reply = ReplySender {
        tx: wtx.clone(),
        obs: shared.obs.clone(),
    };

    while let Ok(Some(payload)) = read_frame(&mut rx) {
        let obs = &shared.obs;
        obs.bytes_in.add(payload.len() as u64 + 8);
        obs.requests.inc();
        let (id, req) = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                obs.errors.inc();
                // The id prefix decodes even for malformed bodies wherever
                // at least 8 bytes arrived; use 0 otherwise.
                let id = payload
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                reply.send(id, &Response::Err(format!("bad request: {e}")));
                continue;
            }
        };
        dispatch(shared, id, req, &reply);
    }

    let _ = wtx.send(WriterMsg::Close);
    drop(wtx);
    let _ = writer.join();
    shared.obs.connections.dec();
}

fn dispatch(shared: &Arc<ServerShared>, id: u64, req: Request, reply: &ReplySender) {
    let obs = &shared.obs;
    let n = shared.shards.len();
    match req {
        Request::Get { key } => {
            obs.gets.inc();
            let started = Instant::now();
            // Reads bypass the queues entirely: the engine's read path is
            // contention-free, so serving inline gives GETs queue-free
            // latency even while writes batch behind them. The hot-key
            // cache sits in front of even that: a hit never touches the
            // engine. The fill token must be captured before the engine
            // read — it carries the round epoch that makes a racing
            // group-commit round discard the fill.
            let shard = shard_for_key(&key, n);
            let resp = match shared.cache.probe(shard, &key) {
                Ok(v) => Response::Value(v),
                Err(fill) => match shared.shards[shard].store().get(&key) {
                    Ok(Some(v)) => {
                        shared.cache.fill(shard, &key, &v, fill);
                        Response::Value(v)
                    }
                    Ok(None) => Response::NotFound,
                    Err(e) => {
                        obs.errors.inc();
                        Response::Err(e.to_string())
                    }
                },
            };
            obs.get_ns.record(started.elapsed().as_nanos() as u64);
            reply.send(id, &resp);
        }
        Request::Put { key, value } => {
            obs.puts.inc();
            let shard = &shared.shards[shard_for_key(&key, n)];
            let accepted = shard.submit(Submission {
                ops: vec![SubOp::Put { key, value }],
                ack: Ack::Single {
                    id,
                    reply: reply.clone(),
                    started: Instant::now(),
                    latency: obs.put_ns.clone(),
                },
            });
            if !accepted {
                reply.send(id, &Response::Err("server shutting down".into()));
            }
        }
        Request::Delete { key } => {
            obs.deletes.inc();
            let shard = &shared.shards[shard_for_key(&key, n)];
            let accepted = shard.submit(Submission {
                ops: vec![SubOp::Delete { key }],
                ack: Ack::Single {
                    id,
                    reply: reply.clone(),
                    started: Instant::now(),
                    latency: obs.delete_ns.clone(),
                },
            });
            if !accepted {
                reply.send(id, &Response::Err("server shutting down".into()));
            }
        }
        Request::Batch { ops } => {
            obs.batches.inc();
            obs.batch_ops.add(ops.len() as u64);
            if ops.is_empty() {
                reply.send(id, &Response::Batch(Vec::new()));
                return;
            }
            // Split by shard, remembering each op's original position.
            let mut parts: Vec<(Vec<usize>, Vec<SubOp>)> = vec![Default::default(); n];
            for (pos, op) in ops.into_iter().enumerate() {
                let s = shard_for_key(op.key(), n);
                parts[s].0.push(pos);
                parts[s].1.push(match op {
                    BatchOp::Put { key, value } => SubOp::Put { key, value },
                    BatchOp::Delete { key } => SubOp::Delete { key },
                    BatchOp::Get { key } => SubOp::Get { key },
                });
            }
            let live: Vec<usize> = (0..n).filter(|&s| !parts[s].1.is_empty()).collect();
            let total: usize = parts.iter().map(|(slots, _)| slots.len()).sum();
            let acc = BatchAcc::new(id, reply.clone(), total, live.len(), obs.clone());
            for s in live {
                let (slots, sub_ops) = std::mem::take(&mut parts[s]);
                let accepted = shared.shards[s].submit(Submission {
                    ops: sub_ops,
                    ack: Ack::BatchPart {
                        acc: acc.clone(),
                        slots,
                    },
                });
                if !accepted {
                    reply.send(id, &Response::Err("server shutting down".into()));
                    return;
                }
            }
        }
        Request::Stats => {
            obs.stats_requests.inc();
            reply.send(id, &Response::Stats(stats_document(shared)));
        }
        Request::Ping { sync } => {
            obs.pings.inc();
            if sync {
                // The wire form of `quiesce`: wait until every accepted
                // submission is committed and every shard's background
                // work is done. Blocks only this connection's reader.
                for shard in &shared.shards {
                    shard.wait_idle_and_quiesce();
                }
            }
            reply.send(id, &Response::Ok);
        }
        Request::Scan {
            start,
            end,
            limit,
            resume_after,
        } => {
            obs.scans.inc();
            let started = Instant::now();
            // Scans are reads: serve inline like GETs, off each shard's
            // contention-free scan path. Shard routing hashes keys, so a
            // key range scatters across every shard — fan out, merge by
            // key (each key lives on exactly one shard), page the result.
            let page = (limit as usize).min(MAX_SCAN_PAGE);
            let eff_start = match resume_after {
                // Continuation is exclusive: resume at the successor of
                // the last delivered key (`key ++ 0x00` in byte order).
                Some(mut k) => {
                    k.push(0);
                    if k > start {
                        k
                    } else {
                        start
                    }
                }
                None => start,
            };
            // `page + 1` per shard: enough to fill the page from any one
            // shard and still detect that the range continues past it.
            let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut err = None;
            for shard in &shared.shards {
                match shard.store().scan(&eff_start, &end, page + 1) {
                    Ok(items) => merged.extend(items),
                    Err(e) => {
                        err = Some(e.to_string());
                        break;
                    }
                }
            }
            let resp = match err {
                Some(e) => {
                    obs.errors.inc();
                    Response::Err(e)
                }
                None => {
                    merged.sort_by(|a, b| a.0.cmp(&b.0));
                    // Truncate to the page, and further to the byte budget
                    // so the response frame stays well under MAX_FRAME —
                    // but always deliver at least one item (progress).
                    let mut cut = merged.len().min(page);
                    let mut bytes = 0usize;
                    for (i, (k, v)) in merged.iter().take(cut).enumerate() {
                        bytes += k.len() + v.len() + 8;
                        if bytes > MAX_SCAN_BYTES && i > 0 {
                            cut = i;
                            break;
                        }
                    }
                    let more = merged.len() > cut;
                    merged.truncate(cut);
                    obs.scan_items.add(merged.len() as u64);
                    Response::Scan {
                        items: merged,
                        more,
                    }
                }
            };
            obs.scan_ns.record(started.elapsed().as_nanos() as u64);
            reply.send(id, &resp);
        }
    }
}

fn stats_document(shared: &Arc<ServerShared>) -> String {
    let mut shard_docs = std::collections::BTreeMap::new();
    for (i, shard) in shared.shards.iter().enumerate() {
        if let Some(json) = shard.store().snapshot_json() {
            if let Ok(doc) = Json::parse(&json) {
                shard_docs.insert(format!("shard{i}"), doc);
            }
        }
    }
    let merged =
        Json::parse(&merged_snapshot_json(shared)).expect("merged snapshot is well-formed JSON");
    let doc = Json::obj(vec![
        ("server", shared.obs.registry.export().to_json()),
        ("shards", Json::Obj(shard_docs)),
        ("merged", merged),
    ]);
    format!("{doc}")
}

fn merged_snapshot_json(shared: &Arc<ServerShared>) -> String {
    let export = shared.obs.registry.export();
    for shard in &shared.shards {
        let Some(json) = shard.store().snapshot_json() else {
            continue;
        };
        let Ok(mut snap) = Json::parse(&json).and_then(|j| StatsSnapshot::from_json(&j)) else {
            continue;
        };
        snap.system = format!("{}-server", snap.system);
        for (k, v) in &export.counters {
            snap.memory.counters.insert(k.clone(), *v);
        }
        for (k, v) in &export.gauges {
            snap.memory.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &export.histograms {
            snap.memory.histograms.insert(k.clone(), h.clone());
        }
        return snap.to_json_string();
    }
    // No instrumented shard: serve the server registry alone.
    let doc = Json::obj(vec![
        ("system", Json::Str("server".into())),
        ("server", export.to_json()),
    ]);
    format!("{doc}")
}
