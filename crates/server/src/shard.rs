//! One shard: a bounded submission queue in front of a [`KvStore`], drained
//! by a committer thread in group-commit rounds.
//!
//! Writes are acked only after their whole batch is applied. Under eADR the
//! engine's append publish (the sub-MemTable header CAS) *is* the
//! persistence event, so "batch fully applied" is the batch's commit point:
//! an ack observed before a power failure implies every write of that batch
//! reached the persistence domain. The crash harness
//! (`tests/server_crash.rs`) kills a shard mid-traffic and verifies exactly
//! that.
//!
//! The queue is bounded: when it is full, [`Shard::submit`] blocks the
//! calling connection-reader thread, which stops draining the transport,
//! which backpressures the client — no unbounded buffering anywhere in the
//! pipeline.

use crate::cache::{key_hash, HotCache};
use crate::obs::ServerObs;
use crate::protocol::{BatchReply, Response};
use crate::server::ReplySender;
use cachekv_lsm::KvStore;
use cachekv_obs::Histogram;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One operation inside a submission (already routed to this shard).
#[derive(Debug, Clone)]
pub enum SubOp {
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        key: Vec<u8>,
    },
    /// Batch gets ride the queue so a batch observes its own prior writes
    /// on the same shard (top-level GETs never enter the queue).
    Get {
        key: Vec<u8>,
    },
}

/// One op's outcome, mirrored into the wire reply.
#[derive(Debug, Clone)]
pub enum SubResult {
    Ok,
    Value(Vec<u8>),
    NotFound,
    Err(String),
}

impl From<SubResult> for BatchReply {
    fn from(r: SubResult) -> BatchReply {
        match r {
            SubResult::Ok => BatchReply::Ok,
            SubResult::Value(v) => BatchReply::Value(v),
            SubResult::NotFound => BatchReply::NotFound,
            SubResult::Err(e) => BatchReply::Err(e),
        }
    }
}

/// Accumulates a cross-shard BATCH: each shard's part fills its slots; the
/// last part to finish sends the combined response.
pub struct BatchAcc {
    id: u64,
    reply: ReplySender,
    slots: Mutex<Vec<Option<BatchReply>>>,
    remaining: AtomicUsize,
    started: Instant,
    obs: Arc<ServerObs>,
}

impl BatchAcc {
    pub fn new(
        id: u64,
        reply: ReplySender,
        total_ops: usize,
        parts: usize,
        obs: Arc<ServerObs>,
    ) -> Arc<Self> {
        Arc::new(BatchAcc {
            id,
            reply,
            slots: Mutex::new(vec![None; total_ops]),
            remaining: AtomicUsize::new(parts),
            started: Instant::now(),
            obs,
        })
    }

    /// Record one shard part's results (`slots[i]` ↔ `results[i]`) and send
    /// the response if this was the last outstanding part.
    fn complete_part(&self, slot_idx: &[usize], results: Vec<SubResult>) {
        {
            let mut slots = self.slots.lock();
            for (i, r) in slot_idx.iter().zip(results) {
                slots[*i] = Some(r.into());
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let replies: Vec<BatchReply> = self
                .slots
                .lock()
                .iter_mut()
                .map(|s| s.take().expect("every batch slot filled"))
                .collect();
            self.obs
                .batch_ns
                .record(self.started.elapsed().as_nanos() as u64);
            self.reply.send(self.id, &Response::Batch(replies));
        }
    }
}

/// How a completed submission reports back to its connection.
pub enum Ack {
    /// A single PUT/DELETE: reply `Ok`/`Err` after the commit round.
    Single {
        id: u64,
        reply: ReplySender,
        started: Instant,
        latency: Arc<Histogram>,
    },
    /// This shard's slice of a BATCH.
    BatchPart {
        acc: Arc<BatchAcc>,
        /// Position of each op in the client's original batch order.
        slots: Vec<usize>,
    },
}

/// One unit on the submission queue: the ops plus their ack route.
pub struct Submission {
    pub ops: Vec<SubOp>,
    pub ack: Ack,
}

struct ShardQueue {
    items: VecDeque<Submission>,
    /// Submissions accepted but not yet acked (queued or mid-commit).
    in_flight: usize,
}

struct ShardInner {
    index: usize,
    store: Arc<dyn KvStore>,
    q: Mutex<ShardQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    idle: Condvar,
    cap: usize,
    commit_max: usize,
    stop: AtomicBool,
    obs: Arc<ServerObs>,
    cache: Arc<HotCache>,
}

/// A store shard plus its committer thread.
pub struct Shard {
    inner: Arc<ShardInner>,
    committer: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spawn the committer for `store`. `cap` bounds the submission queue;
    /// `commit_max` caps submissions per group-commit round.
    pub fn spawn(
        index: usize,
        store: Arc<dyn KvStore>,
        cap: usize,
        commit_max: usize,
        obs: Arc<ServerObs>,
        cache: Arc<HotCache>,
    ) -> Shard {
        let inner = Arc::new(ShardInner {
            index,
            store,
            q: Mutex::new(ShardQueue {
                items: VecDeque::new(),
                in_flight: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            idle: Condvar::new(),
            cap: cap.max(1),
            commit_max: commit_max.max(1),
            stop: AtomicBool::new(false),
            obs,
            cache,
        });
        let committer = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("cachekv-shard-{index}"))
                .spawn(move || committer_loop(&inner))
                .expect("spawn shard committer")
        };
        Shard {
            inner,
            committer: Some(committer),
        }
    }

    /// Direct read access for the inline (non-queued) GET path.
    pub fn store(&self) -> &Arc<dyn KvStore> {
        &self.inner.store
    }

    /// Enqueue a submission, blocking while the queue is full
    /// (backpressure). Returns `false` if the shard is shutting down.
    pub fn submit(&self, sub: Submission) -> bool {
        let inner = &self.inner;
        let mut q = inner.q.lock();
        if q.items.len() >= inner.cap {
            inner.obs.backpressure_waits.inc();
            while q.items.len() >= inner.cap {
                if inner.stop.load(Ordering::Acquire) {
                    return false;
                }
                inner.not_full.wait(&mut q);
            }
        }
        if inner.stop.load(Ordering::Acquire) {
            return false;
        }
        q.items.push_back(sub);
        q.in_flight += 1;
        inner.obs.queue_depth.inc();
        drop(q);
        inner.not_empty.notify_one();
        true
    }

    /// Block until every accepted submission has been committed and acked,
    /// then quiesce the store (flushes, compactions). The wire form is
    /// `PING(sync)`.
    pub fn wait_idle_and_quiesce(&self) {
        let inner = &self.inner;
        {
            let mut q = inner.q.lock();
            while q.in_flight > 0 {
                inner.idle.wait(&mut q);
            }
        }
        inner.store.quiesce();
    }

    /// Current queue depth (tests / stats).
    pub fn queue_len(&self) -> usize {
        self.inner.q.lock().items.len()
    }

    /// Stop the committer *after* draining: everything already accepted is
    /// committed and acked before the thread exits.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

fn committer_loop(inner: &Arc<ShardInner>) {
    loop {
        let batch: Vec<Submission> = {
            let mut q = inner.q.lock();
            while q.items.is_empty() {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                inner.not_empty.wait(&mut q);
            }
            inner.obs.queue_depth_hist.record(q.items.len() as u64);
            let n = q.items.len().min(inner.commit_max);
            let batch: Vec<Submission> = q.items.drain(..n).collect();
            inner.obs.queue_depth.add(-(n as i64));
            batch
        };
        inner.not_full.notify_all();
        commit_round(inner, batch);
    }
}

/// Apply one batch of submissions, then ack them all: the group commit.
fn commit_round(inner: &Arc<ShardInner>, batch: Vec<Submission>) {
    let _ctx = cachekv_pmem::fault_context("server::group_commit");
    let store = &inner.store;
    let obs = &inner.obs;
    // Publish the round's write-key bloom and move the shard's cache epoch
    // to "round in progress" BEFORE any write applies: a GET racing the
    // apply window then refuses cached entries for these keys rather than
    // risk serving a value the engine has already superseded.
    let write_hashes: Vec<u64> = batch
        .iter()
        .flat_map(|sub| sub.ops.iter())
        .filter_map(|op| match op {
            SubOp::Put { key, .. } | SubOp::Delete { key } => Some(key_hash(key)),
            SubOp::Get { .. } => None,
        })
        .collect();
    let round = inner.cache.round_begin(inner.index, &write_hashes);
    let mut entries = 0u64;
    let mut results: Vec<Vec<SubResult>> = Vec::with_capacity(batch.len());
    for sub in &batch {
        let rs = sub
            .ops
            .iter()
            .map(|op| {
                entries += 1;
                match op {
                    SubOp::Put { key, value } => match store.put(key, value) {
                        Ok(()) => SubResult::Ok,
                        Err(e) => {
                            obs.errors.inc();
                            SubResult::Err(e.to_string())
                        }
                    },
                    SubOp::Delete { key } => match store.delete(key) {
                        Ok(()) => SubResult::Ok,
                        Err(e) => {
                            obs.errors.inc();
                            SubResult::Err(e.to_string())
                        }
                    },
                    SubOp::Get { key } => match store.get(key) {
                        Ok(Some(v)) => SubResult::Value(v),
                        Ok(None) => SubResult::NotFound,
                        Err(e) => {
                            obs.errors.inc();
                            SubResult::Err(e.to_string())
                        }
                    },
                }
            })
            .collect();
        results.push(rs);
    }
    // Round publication: push the applied values into (or delete them
    // from) every cache replica and return the epoch to quiescent. This
    // must complete before any ack below — that is what makes an acked
    // write unshadowable by a stale cached value. Failed writes are left
    // out: their cached entries fail round-log revalidation instead
    // (conservative miss).
    if let Some(token) = round {
        let writes: Vec<(&[u8], Option<&[u8]>)> = batch
            .iter()
            .zip(&results)
            .flat_map(|(sub, rs)| sub.ops.iter().zip(rs))
            .filter_map(|(op, r)| match (op, r) {
                (SubOp::Put { key, value }, SubResult::Ok) => {
                    Some((key.as_slice(), Some(value.as_slice())))
                }
                (SubOp::Delete { key }, SubResult::Ok) => Some((key.as_slice(), None)),
                _ => None,
            })
            .collect();
        inner.cache.round_publish(token, &writes);
    }
    // Commit point: every write of the round is applied (durable under
    // eADR). Only now are acks released.
    obs.group_commits.inc();
    obs.batch_size.record(entries);
    let acked = batch.len();
    for (sub, rs) in batch.into_iter().zip(results) {
        match sub.ack {
            Ack::Single {
                id,
                reply,
                started,
                latency,
            } => {
                latency.record(started.elapsed().as_nanos() as u64);
                let resp = match rs.first() {
                    Some(SubResult::Err(e)) => Response::Err(e.clone()),
                    _ => Response::Ok,
                };
                reply.send(id, &resp);
            }
            Ack::BatchPart { acc, slots } => acc.complete_part(&slots, rs),
        }
    }
    let mut q = inner.q.lock();
    q.in_flight -= acked;
    if q.in_flight == 0 {
        inner.idle.notify_all();
    }
}
