//! Pluggable byte transports.
//!
//! The server accepts [`Connection`]s from a [`Transport`]; a connection is
//! an independent read half and write half so the per-connection reader and
//! writer threads can run concurrently (pipelining requires reading request
//! K+1 while response K is still being written).
//!
//! Two implementations:
//!
//! * [`LoopbackTransport`] — an in-process duplex byte channel with a
//!   bounded buffer per direction. Deterministic (no sockets, no ports),
//!   used by the test suite, the crash harness, and the loopback bench; the
//!   bounded buffer means transport backpressure is real even in-process.
//! * [`TcpTransport`] — a `std::net` TCP listener (no async runtime; the
//!   server runs a thread per connection, which is the right shape for the
//!   thread-per-core engine underneath).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Force-closes a connection from a third thread (unblocking a reader
/// parked in `read`); used by server shutdown.
pub type Closer = Box<dyn Fn() + Send + Sync>;

/// One accepted or dialed connection: a read half and a write half that can
/// be moved to different threads, plus a closer usable from anywhere.
pub struct Connection {
    /// Peer label for logs/metrics ("loopback", "127.0.0.1:43210", ...).
    pub peer: String,
    pub rx: Box<dyn Read + Send>,
    pub tx: Box<dyn Write + Send>,
    pub closer: Closer,
}

/// Server-side listener abstraction.
pub trait Transport: Send + Sync {
    /// Block until the next connection arrives; `None` once the transport
    /// has been closed (the accept loop should exit).
    fn accept(&self) -> Option<Connection>;

    /// Stop accepting: wakes any blocked `accept` and makes future dials
    /// fail. Established connections are unaffected (the server drains
    /// them separately).
    fn close(&self);

    /// Transport label for logs.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Loopback: bounded in-process byte pipes
// ---------------------------------------------------------------------------

/// Per-direction bounded byte buffer backing the loopback transport.
const PIPE_CAP: usize = 256 << 10;

struct PipeState {
    buf: VecDeque<u8>,
    /// Writer half dropped: readers drain what's left, then see EOF.
    write_closed: bool,
    /// Reader half dropped: writers get `BrokenPipe` immediately.
    read_closed: bool,
}

struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }
}

/// Read half of a loopback pipe.
pub struct PipeReader(Arc<Pipe>);

/// Write half of a loopback pipe.
pub struct PipeWriter(Arc<Pipe>);

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().unwrap();
                }
                drop(st);
                self.0.writable.notify_all();
                return Ok(n);
            }
            if st.write_closed {
                return Ok(0); // clean EOF
            }
            st = self.0.readable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.read_closed = true;
        drop(st);
        self.0.writable.notify_all();
    }
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.read_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "loopback peer closed",
                ));
            }
            let room = PIPE_CAP - st.buf.len();
            if room > 0 {
                let n = data.len().min(room);
                st.buf.extend(&data[..n]);
                drop(st);
                self.0.readable.notify_all();
                return Ok(n);
            }
            // Buffer full: block — this is the transport-level backpressure
            // the loopback shares with real sockets.
            st = self.0.writable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.write_closed = true;
        drop(st);
        self.0.readable.notify_all();
    }
}

/// Create one unidirectional bounded byte pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let p = Pipe::new();
    (PipeWriter(p.clone()), PipeReader(p))
}

/// Hard-close a pipe in both roles: readers drain what is buffered then see
/// EOF, writers fail with `BrokenPipe`.
fn kill_pipe(p: &Arc<Pipe>) {
    let mut st = p.state.lock().unwrap_or_else(|e| e.into_inner());
    st.write_closed = true;
    st.read_closed = true;
    drop(st);
    p.readable.notify_all();
    p.writable.notify_all();
}

/// In-process transport: `connect` hands the caller the client end of a
/// fresh duplex channel and queues the server end for `accept`.
pub struct LoopbackTransport {
    pending: Mutex<VecDeque<Connection>>,
    arrived: Condvar,
    closed: AtomicBool,
}

impl LoopbackTransport {
    pub fn new() -> Arc<Self> {
        Arc::new(LoopbackTransport {
            pending: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            closed: AtomicBool::new(false),
        })
    }

    /// Dial the server: returns the client-side [`Connection`], or `None`
    /// if the transport is closed.
    pub fn connect(&self) -> Option<Connection> {
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        let c2s = Pipe::new();
        let s2c = Pipe::new();
        let closer = |a: Arc<Pipe>, b: Arc<Pipe>| -> Closer {
            Box::new(move || {
                kill_pipe(&a);
                kill_pipe(&b);
            })
        };
        let server_end = Connection {
            peer: "loopback".into(),
            rx: Box::new(PipeReader(c2s.clone())),
            tx: Box::new(PipeWriter(s2c.clone())),
            closer: closer(c2s.clone(), s2c.clone()),
        };
        let client_end = Connection {
            peer: "loopback".into(),
            rx: Box::new(PipeReader(s2c.clone())),
            tx: Box::new(PipeWriter(c2s.clone())),
            closer: closer(c2s, s2c),
        };
        let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        q.push_back(server_end);
        drop(q);
        self.arrived.notify_one();
        Some(client_end)
    }
}

impl Transport for LoopbackTransport {
    fn accept(&self) -> Option<Connection> {
        let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            q = self.arrived.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.arrived.notify_all();
    }

    fn name(&self) -> &'static str {
        "loopback"
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// `std::net` TCP listener transport.
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
    closed: AtomicBool,
}

impl TcpTransport {
    /// Bind a listener (use port 0 for an ephemeral port in tests).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Arc<Self>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Arc::new(TcpTransport {
            listener,
            addr,
            closed: AtomicBool::new(false),
        }))
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Dial a server (client side); independent of any listener instance.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        tcp_connection(stream)
    }
}

/// Split a `TcpStream` into a [`Connection`].
pub fn tcp_connection(stream: TcpStream) -> io::Result<Connection> {
    stream.set_nodelay(true).ok();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "tcp".into());
    let rx = stream.try_clone()?;
    let close_handle = stream.try_clone()?;
    Ok(Connection {
        peer,
        rx: Box::new(rx),
        tx: Box::new(stream),
        closer: Box::new(move || {
            let _ = close_handle.shutdown(std::net::Shutdown::Both);
        }),
    })
}

impl Transport for TcpTransport {
    fn accept(&self) -> Option<Connection> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.closed.load(Ordering::Acquire) {
                        return None;
                    }
                    match tcp_connection(stream) {
                        Ok(conn) => return Some(conn),
                        Err(_) => continue,
                    }
                }
                Err(_) => {
                    if self.closed.load(Ordering::Acquire) {
                        return None;
                    }
                }
            }
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway self-connection.
        let _ = TcpStream::connect(self.addr);
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrip_and_eof() {
        let (mut w, mut r) = pipe();
        w.write_all(b"abc").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        drop(w);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF after writer drop");
    }

    #[test]
    fn pipe_backpressure_blocks_then_unblocks() {
        let (mut w, mut r) = pipe();
        let big = vec![7u8; PIPE_CAP + 1024];
        let t = std::thread::spawn(move || {
            w.write_all(&big).unwrap();
            drop(w);
        });
        // Drain everything; the writer can only finish once we free room.
        let mut total = 0usize;
        let mut buf = [0u8; 4096];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, PIPE_CAP + 1024);
        t.join().unwrap();
    }

    #[test]
    fn pipe_write_after_reader_drop_is_broken() {
        let (mut w, r) = pipe();
        drop(r);
        let err = w.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn loopback_connect_accept_duplex() {
        let t = LoopbackTransport::new();
        let mut client = t.connect().unwrap();
        let mut server = t.accept().unwrap();
        client.tx.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        server.tx.write_all(b"pong").unwrap();
        client.rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn loopback_close_unblocks_accept_and_refuses_dials() {
        let t = LoopbackTransport::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.accept().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        t.close();
        assert!(h.join().unwrap(), "accept observed close");
        assert!(t.connect().is_none());
    }

    #[test]
    fn closer_unblocks_parked_reader() {
        let t = LoopbackTransport::new();
        let _client = t.connect().unwrap(); // held open: reader would park forever
        let Connection { mut rx, closer, .. } = t.accept().unwrap();
        let h = std::thread::spawn(move || {
            let mut b = [0u8; 1];
            rx.read(&mut b).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        closer();
        assert_eq!(h.join().unwrap(), 0, "closed connection reads EOF");
    }

    #[test]
    fn tcp_accept_connect_roundtrip() {
        let t = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = t.local_addr();
        let h = {
            let t = t.clone();
            std::thread::spawn(move || {
                let mut conn = t.accept().unwrap();
                let mut buf = [0u8; 2];
                conn.rx.read_exact(&mut buf).unwrap();
                conn.tx.write_all(&buf).unwrap();
            })
        };
        let mut c = TcpTransport::connect(addr).unwrap();
        c.tx.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        c.rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        h.join().unwrap();
        t.close();
        assert!(t.accept().is_none());
    }
}
