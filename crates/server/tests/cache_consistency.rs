//! Model-based consistency oracle for the hot-key cache tier.
//!
//! The property under test: **no GET served through the server path ever
//! returns a value older than the last acked write to that key**, at any
//! cache capacity (off, tiny-and-thrashing, unbounded) and shard count.
//!
//! Every value written embeds its per-key version. Writers serialize per
//! key (a version is fully acked before the next is issued), so the acked
//! version counter is exactly the oracle's lower bound: a GET that starts
//! after version `lo` was acked and finishes before version `hi` was
//! issued must observe a version in `[lo, hi]` — anything below `lo` is a
//! stale cached value, which the round-invalidation protocol exists to
//! make impossible.

use cachekv::{CacheKv, CacheKvConfig};
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::KvStore;
use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
use cachekv_server::{
    AdmissionKind, HotCacheConfig, KvClient, KvServer, LoopbackTransport, ServerConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const KEYS: usize = 48;
const WRITERS: usize = 3;
const READERS: usize = 3;
const OPS_PER_WRITER: usize = 150;
const OPS_PER_READER: usize = 400;

fn engine_shard() -> Arc<dyn KvStore> {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
    ));
    let hier = Arc::new(Hierarchy::new(dev, CacheConfig::paper()));
    Arc::new(CacheKv::create(hier, CacheKvConfig::test_small()))
}

fn start(shards: usize, cache: HotCacheConfig) -> (KvServer, Arc<LoopbackTransport>) {
    let transport = LoopbackTransport::new();
    let stores = (0..shards).map(|_| engine_shard()).collect();
    let cfg = ServerConfig {
        cache,
        ..ServerConfig::default()
    };
    (KvServer::start(stores, transport.clone(), cfg), transport)
}

fn key(k: usize) -> Vec<u8> {
    format!("oracle-key-{k:04}").into_bytes()
}

fn encode(version: u64) -> Vec<u8> {
    format!("v{version:012}-padding-padding-padding").into_bytes()
}

fn decode(value: &[u8]) -> u64 {
    let s = std::str::from_utf8(value).expect("oracle value is utf8");
    s[1..13].parse().expect("oracle value embeds its version")
}

/// Per-key ground truth. Writers hold `write_lock` across issue→ack, so
/// per-key versions are issued, applied, and acked strictly in order.
struct KeyOracle {
    write_lock: Mutex<()>,
    /// Highest version whose ack has been observed.
    last_acked: AtomicU64,
    /// Highest version that has been issued (upper bound for readers).
    max_issued: AtomicU64,
    /// `deletes[v-1]` ⇔ version `v` was a DELETE. Pushed at issue time.
    deletes: Mutex<Vec<bool>>,
}

impl KeyOracle {
    fn new() -> Self {
        KeyOracle {
            write_lock: Mutex::new(()),
            last_acked: AtomicU64::new(0),
            max_issued: AtomicU64::new(0),
            deletes: Mutex::new(Vec::new()),
        }
    }

    fn any_delete_in(&self, lo: u64, hi: u64) -> bool {
        if hi < 1 || hi < lo {
            return false;
        }
        let deletes = self.deletes.lock().unwrap();
        (lo.max(1)..=hi.min(deletes.len() as u64)).any(|v| deletes[(v - 1) as usize])
    }
}

/// Tiny deterministic PRNG so the interleaving differs per thread without
/// pulling in a rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }
}

/// Drive the interleaved PUT/DELETE/GET battery against one server
/// configuration and check every read against the oracle.
fn run_oracle(shards: usize, cache: HotCacheConfig, label: &str) {
    let (server, transport) = start(shards, cache);
    let oracles: Arc<Vec<KeyOracle>> = Arc::new((0..KEYS).map(|_| KeyOracle::new()).collect());

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let oracles = oracles.clone();
        let client = KvClient::connect(transport.connect().expect("dial"));
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(0x9E3779B9 + w as u64);
            for _ in 0..OPS_PER_WRITER {
                let k = (rng.next() as usize) % KEYS;
                let oracle = &oracles[k];
                let _guard = oracle.write_lock.lock().unwrap();
                let version = oracle.max_issued.load(Ordering::Acquire) + 1;
                let is_delete = rng.next().is_multiple_of(5);
                oracle.deletes.lock().unwrap().push(is_delete);
                oracle.max_issued.store(version, Ordering::Release);
                if is_delete {
                    client.delete(&key(k)).expect("delete acked");
                } else {
                    client.put(&key(k), &encode(version)).expect("put acked");
                }
                oracle.last_acked.store(version, Ordering::Release);
            }
            client.close();
        }));
    }
    for r in 0..READERS {
        let oracles = oracles.clone();
        let client = KvClient::connect(transport.connect().expect("dial"));
        let label = label.to_string();
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(0xB5297A4D + r as u64);
            // Per-reader observation floor: versions a single client sees
            // for one key must never go backwards.
            let mut floor = vec![0u64; KEYS];
            for _ in 0..OPS_PER_READER {
                let k = (rng.next() as usize) % KEYS;
                let oracle = &oracles[k];
                let lo = oracle.last_acked.load(Ordering::Acquire);
                let got = client.get(&key(k)).expect("get answered");
                let hi = oracle.max_issued.load(Ordering::Acquire);
                match got {
                    Some(v) => {
                        let version = decode(&v);
                        assert!(
                            version >= lo,
                            "{label}: key {k} returned version {version}, \
                             older than last acked {lo} (stale cache read)"
                        );
                        assert!(
                            version <= hi,
                            "{label}: key {k} returned version {version} \
                             beyond max issued {hi}"
                        );
                        assert!(
                            version >= floor[k],
                            "{label}: key {k} went backwards: saw {version} \
                             after {}",
                            floor[k]
                        );
                        floor[k] = version;
                    }
                    None => {
                        // Not-found is only consistent if nothing was ever
                        // acked or a DELETE could be the latest applied
                        // write in the read's window.
                        assert!(
                            lo == 0 || oracle.any_delete_in(lo, hi),
                            "{label}: key {k} returned not-found but last \
                             acked write {lo} was a PUT with no delete \
                             through {hi}"
                        );
                    }
                }
            }
            client.close();
        }));
    }
    for h in handles {
        h.join().expect("oracle thread");
    }

    // Quiesced final sweep: with writers done, every key must read exactly
    // its last acked state — through whatever the cache now holds.
    let client = KvClient::connect(transport.connect().expect("dial"));
    client.ping(true).expect("drain + quiesce");
    for k in 0..KEYS {
        let oracle = &oracles[k];
        let last = oracle.last_acked.load(Ordering::Acquire);
        let expect = if last == 0 {
            None
        } else {
            let deletes = oracle.deletes.lock().unwrap();
            (!deletes[(last - 1) as usize]).then(|| encode(last))
        };
        assert_eq!(
            client.get(&key(k)).expect("final get"),
            expect,
            "{label}: final state of key {k} diverged from oracle"
        );
    }
    client.close();

    let obs = server.obs();
    assert_eq!(
        obs.cache_tripwire.get(),
        0,
        "{label}: cache coherence tripwire fired"
    );
    server.shutdown();
}

fn capacity_label(capacity: usize) -> &'static str {
    match capacity {
        0 => "off",
        c if c < 1 << 20 => "tiny",
        _ => "unbounded",
    }
}

fn sweep_capacity(capacity: usize) {
    for shards in [1usize, 2, 4] {
        let label = format!("cache={} shards={shards}", capacity_label(capacity));
        run_oracle(shards, HotCacheConfig::with_capacity(capacity), &label);
    }
}

#[test]
fn oracle_with_cache_disabled() {
    sweep_capacity(0);
}

#[test]
fn oracle_with_tiny_thrashing_cache() {
    // A few entries per replica: constant eviction + admission pressure.
    sweep_capacity(4 << 10);
}

#[test]
fn oracle_with_unbounded_cache() {
    sweep_capacity(64 << 20);
}

#[test]
fn oracle_with_admit_all_and_fifo() {
    // The alternate policy pair must uphold the same consistency bound.
    let cache = HotCacheConfig {
        capacity_bytes: 8 << 10,
        admission: AdmissionKind::AdmitAll,
        eviction: cachekv_server::EvictionKind::Fifo,
        ..HotCacheConfig::default()
    };
    run_oracle(2, cache, "cache=tiny-fifo shards=2");
}

/// Round-invalidation race: readers hammer one ultra-hot key while
/// writers rotate its value through group-commit rounds. Each reader's
/// observed version sequence must be monotonic, and the coherence
/// tripwire must stay at zero.
#[test]
fn hot_key_version_rotation_is_monotonic() {
    const HOT_WRITES: u64 = 600;
    const HOT_READERS: usize = 4;

    let (server, transport) = start(2, HotCacheConfig::with_capacity(64 << 20));
    let issued = Arc::new(AtomicU64::new(0));
    let acked = Arc::new(AtomicU64::new(0));
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let write_gate = Arc::new(Mutex::new(()));

    let mut handles = Vec::new();
    for _ in 0..2 {
        let issued = issued.clone();
        let acked = acked.clone();
        let write_gate = write_gate.clone();
        let client = KvClient::connect(transport.connect().expect("dial"));
        handles.push(std::thread::spawn(move || {
            loop {
                let _guard = write_gate.lock().unwrap();
                let version = issued.load(Ordering::Acquire) + 1;
                if version > HOT_WRITES {
                    break;
                }
                issued.store(version, Ordering::Release);
                client.put(b"the-hot-key", &encode(version)).expect("put");
                acked.store(version, Ordering::Release);
            }
            client.close();
        }));
    }
    for _ in 0..HOT_READERS {
        let issued = issued.clone();
        let acked = acked.clone();
        let done = done.clone();
        let client = KvClient::connect(transport.connect().expect("dial"));
        handles.push(std::thread::spawn(move || {
            let mut floor = 0u64;
            while !done.load(Ordering::Acquire) {
                let lo = acked.load(Ordering::Acquire);
                let got = client.get(b"the-hot-key").expect("get");
                let hi = issued.load(Ordering::Acquire);
                match got {
                    None => assert_eq!(lo, 0, "hot key vanished after version {lo} acked"),
                    Some(v) => {
                        let version = decode(&v);
                        assert!(
                            (lo..=hi).contains(&version),
                            "hot key version {version} outside acked window [{lo}, {hi}]"
                        );
                        assert!(
                            version >= floor,
                            "hot key went backwards: {version} after {floor}"
                        );
                        floor = version;
                    }
                }
            }
            client.close();
        }));
    }
    // First two handles are the writers.
    let readers = handles.split_off(2);
    for h in handles {
        h.join().expect("hot writer");
    }
    done.store(true, Ordering::Release);
    for h in readers {
        h.join().expect("hot reader");
    }

    let obs = server.obs();
    assert_eq!(obs.cache_tripwire.get(), 0, "coherence tripwire fired");
    assert!(
        obs.cache_invalidations.get() > 0,
        "rotating a cached hot key through {HOT_WRITES} rounds must invalidate"
    );
    server.shutdown();
}

/// Deterministic hit accounting: on one quiescent connection, the second
/// GET of a key is served by the calling thread's replica; with the cache
/// off, hits must stay exactly zero.
#[test]
fn hit_and_miss_accounting() {
    // Cache on: fill on first read, hit on second.
    let (server, transport) = start(1, HotCacheConfig::with_capacity(64 << 20));
    let client = KvClient::connect(transport.connect().expect("dial"));
    client.put(b"warm", b"value").expect("put");
    client.ping(true).expect("quiesce");
    assert_eq!(client.get(b"warm").unwrap(), Some(b"value".to_vec()));
    assert_eq!(client.get(b"warm").unwrap(), Some(b"value".to_vec()));
    let obs = server.obs();
    assert!(obs.cache_fills.get() >= 1, "first read must fill");
    assert!(obs.cache_hits.get() >= 1, "second read must hit");
    // Runtime toggle: disabling purges and stops serving; the data is
    // still correct from the engine.
    assert!(!server.cache().set_enabled(false));
    assert_eq!(server.cache().bytes(), 0);
    let hits_frozen = obs.cache_hits.get();
    assert_eq!(client.get(b"warm").unwrap(), Some(b"value".to_vec()));
    assert_eq!(
        obs.cache_hits.get(),
        hits_frozen,
        "disabled cache must not hit"
    );
    assert!(server.cache().set_enabled(true));
    client.close();
    server.shutdown();

    // Cache off at build time: zero hits, zero bytes, still correct.
    let (server, transport) = start(1, HotCacheConfig::disabled());
    let client = KvClient::connect(transport.connect().expect("dial"));
    client.put(b"cold", b"value").expect("put");
    for _ in 0..8 {
        assert_eq!(client.get(b"cold").unwrap(), Some(b"value".to_vec()));
    }
    let obs = server.obs();
    assert_eq!(obs.cache_hits.get(), 0);
    assert_eq!(obs.cache_bytes.get(), 0);
    assert!(!server.cache().has_capacity());
    client.close();
    server.shutdown();
}
