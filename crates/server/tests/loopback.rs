//! End-to-end service tests over the in-process loopback transport (plus a
//! TCP smoke test): CRUD, batches, pipelining, stats, multi-threaded races,
//! backpressure, shutdown draining, and the workload drivers running
//! against [`RemoteStore`].

use cachekv::{CacheKv, CacheKvConfig};
use cachekv_cache::{CacheConfig, Hierarchy};
use cachekv_lsm::KvStore;
use cachekv_pmem::{LatencyConfig, PmemConfig, PmemDevice};
use cachekv_server::{
    BatchOp, BatchReply, KvClient, KvServer, LoopbackTransport, RemoteStore, Request, Response,
    ServerConfig, TcpTransport,
};
use cachekv_workloads::{fill, run_ops, run_ycsb, DbBench, KeyGen, ValueGen, YcsbWorkload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One CacheKV engine on its own simulated device + hierarchy (shards must
/// not share a device: each store owns the whole PMEM layout).
fn engine_shard() -> Arc<dyn KvStore> {
    let dev = Arc::new(PmemDevice::new(
        PmemConfig::paper_scaled().with_latency(LatencyConfig::zero()),
    ));
    let hier = Arc::new(Hierarchy::new(dev, CacheConfig::paper()));
    Arc::new(CacheKv::create(hier, CacheKvConfig::test_small()))
}

fn start_loopback(shards: usize, cfg: ServerConfig) -> (KvServer, Arc<LoopbackTransport>) {
    let transport = LoopbackTransport::new();
    let stores = (0..shards).map(|_| engine_shard()).collect();
    let server = KvServer::start(stores, transport.clone(), cfg);
    (server, transport)
}

fn client(transport: &Arc<LoopbackTransport>) -> KvClient {
    KvClient::connect(transport.connect().expect("loopback dial"))
}

#[test]
fn crud_roundtrip_over_loopback() {
    let (server, transport) = start_loopback(2, ServerConfig::default());
    let c = client(&transport);

    assert_eq!(c.get(b"missing").unwrap(), None);
    c.put(b"alpha", b"1").unwrap();
    c.put(b"beta", b"2").unwrap();
    assert_eq!(c.get(b"alpha").unwrap(), Some(b"1".to_vec()));
    assert_eq!(c.get(b"beta").unwrap(), Some(b"2".to_vec()));
    c.put(b"alpha", b"updated").unwrap();
    assert_eq!(c.get(b"alpha").unwrap(), Some(b"updated".to_vec()));
    c.delete(b"alpha").unwrap();
    assert_eq!(c.get(b"alpha").unwrap(), None);
    assert_eq!(c.get(b"beta").unwrap(), Some(b"2".to_vec()));
    c.ping(false).unwrap();
    c.ping(true).unwrap(); // drains queues + quiesces every shard

    let obs = server.obs();
    assert_eq!(obs.puts.get(), 3);
    assert_eq!(obs.deletes.get(), 1);
    assert_eq!(obs.gets.get(), 6);
    assert!(obs.group_commits.get() >= 1);
    c.close();
    server.shutdown();
}

#[test]
fn batch_spans_shards_and_sees_own_writes() {
    let (server, transport) = start_loopback(2, ServerConfig::default());
    let c = client(&transport);

    // Enough keys to hit both shards with near-certainty; each batch GET
    // follows the PUT of the same key, so it must observe it (per-shard
    // submission order is preserved through the queue).
    let mut ops = Vec::new();
    for i in 0..32u32 {
        let k = format!("batch-key-{i}").into_bytes();
        ops.push(BatchOp::Put {
            key: k.clone(),
            value: format!("v{i}").into_bytes(),
        });
        ops.push(BatchOp::Get { key: k });
    }
    ops.push(BatchOp::Get {
        key: b"batch-absent".to_vec(),
    });
    let replies = c.batch(ops).unwrap();
    assert_eq!(replies.len(), 65);
    for i in 0..32usize {
        assert!(matches!(replies[2 * i], BatchReply::Ok), "put {i}");
        match &replies[2 * i + 1] {
            BatchReply::Value(v) => assert_eq!(v, format!("v{i}").as_bytes()),
            other => panic!("get {i} returned {other:?}"),
        }
    }
    assert!(matches!(replies[64], BatchReply::NotFound));

    // Empty batch is a no-op, not an error.
    assert_eq!(c.batch(Vec::new()).unwrap().len(), 0);
    c.close();
    server.shutdown();
}

#[test]
fn pipelined_puts_share_group_commits() {
    let (server, transport) = start_loopback(1, ServerConfig::default());
    let c = client(&transport);

    // Issue 200 puts without waiting, then collect the acks: the committer
    // drains whatever accumulated, so in-flight requests get folded into
    // shared commit rounds.
    let pendings: Vec<_> = (0..200u32)
        .map(|i| {
            c.submit(&Request::Put {
                key: format!("p{i}").into_bytes(),
                value: vec![b'x'; 64],
            })
            .unwrap()
        })
        .collect();
    for p in pendings {
        assert!(matches!(p.wait().unwrap(), Response::Ok));
    }
    let obs = server.obs();
    assert_eq!(obs.puts.get(), 200);
    let commits = obs.group_commits.get();
    assert!((1..=200).contains(&commits));
    // Histograms saw every round and every entry.
    let export = obs.registry.export();
    let batch_size = &export.histograms["server.group_commit.batch_size"];
    assert_eq!(batch_size.count, commits);
    assert_eq!(batch_size.sum, 200);
    for i in (0..200u32).step_by(37) {
        assert_eq!(
            c.get(format!("p{i}").as_bytes()).unwrap(),
            Some(vec![b'x'; 64])
        );
    }
    c.close();
    server.shutdown();
}

#[test]
fn stats_document_has_server_and_shard_layers() {
    let (server, transport) = start_loopback(2, ServerConfig::default());
    let c = client(&transport);
    for i in 0..10u32 {
        c.put(format!("s{i}").as_bytes(), b"v").unwrap();
    }
    let doc = c.stats().unwrap();
    let v = cachekv_obs::Json::parse(&doc).expect("stats doc parses");
    let server_counters = v
        .get("server")
        .and_then(|s| s.get("counters"))
        .and_then(cachekv_obs::Json::as_obj)
        .expect("server.counters");
    assert!(server_counters["server.puts"].as_u64().unwrap() >= 10);
    // Both shard snapshots and the merged snapshot round-trip as full
    // StatsSnapshots (so validate_metrics-style tooling can consume them).
    for label in ["shard0", "shard1"] {
        let snap = v.get("shards").and_then(|s| s.get(label)).expect(label);
        let parsed = cachekv_obs::StatsSnapshot::from_json(snap).expect(label);
        assert_eq!(parsed.system, "CacheKV");
    }
    let merged = v.get("merged").expect("merged snapshot");
    let merged = cachekv_obs::StatsSnapshot::from_json(merged).expect("merged parses");
    assert_eq!(merged.system, "CacheKV-server");
    assert!(merged.memory.counters.contains_key("server.requests"));
    assert!(merged.memory.histograms.contains_key("server.put_ns"));
    c.close();
    server.shutdown();
}

#[test]
fn four_client_threads_race_cleanly() {
    let (server, transport) = start_loopback(2, ServerConfig::default());
    let c = Arc::new(client(&transport));

    let errors = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let c = c.clone();
            let errors = errors.clone();
            s.spawn(move || {
                for i in 0..150u32 {
                    let key = format!("t{t}-k{i}");
                    if c.put(key.as_bytes(), format!("t{t}-v{i}").as_bytes())
                        .is_err()
                    {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match c.get(key.as_bytes()) {
                        Ok(Some(v)) if v == format!("t{t}-v{i}").into_bytes() => {}
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    // Every thread's writes are durable and visible afterwards.
    for t in 0..4u32 {
        for i in (0..150u32).step_by(29) {
            assert_eq!(
                c.get(format!("t{t}-k{i}").as_bytes()).unwrap(),
                Some(format!("t{t}-v{i}").into_bytes())
            );
        }
    }
    assert_eq!(server.obs().puts.get(), 600);
    server.shutdown();
}

/// Minimal in-memory store with a tunable per-put stall, for exercising
/// queue backpressure and shutdown draining without engine timing noise.
struct SlowMapStore {
    map: parking_lot::Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    put_delay: Duration,
}

impl SlowMapStore {
    fn new(put_delay: Duration) -> Arc<Self> {
        Arc::new(SlowMapStore {
            map: parking_lot::Mutex::new(HashMap::new()),
            put_delay,
        })
    }
}

impl KvStore for SlowMapStore {
    fn put(&self, key: &[u8], value: &[u8]) -> cachekv_lsm::Result<()> {
        if !self.put_delay.is_zero() {
            std::thread::sleep(self.put_delay);
        }
        self.map.lock().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &[u8]) -> cachekv_lsm::Result<Option<Vec<u8>>> {
        Ok(self.map.lock().get(key).cloned())
    }

    fn delete(&self, key: &[u8]) -> cachekv_lsm::Result<()> {
        self.map.lock().remove(key);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "slow-map"
    }
}

#[test]
fn full_queue_backpressures_and_still_acks_everything() {
    let store = SlowMapStore::new(Duration::from_millis(2));
    let transport = LoopbackTransport::new();
    let server = KvServer::start(
        vec![store.clone() as Arc<dyn KvStore>],
        transport.clone(),
        ServerConfig {
            shard_queue_cap: 2,
            group_commit_max: 2,
            ..Default::default()
        },
    );
    let c = client(&transport);

    // Far more in-flight requests than cap * commit_max: the reader thread
    // must block on the full queue (backpressure) yet every put still acks.
    let pendings: Vec<_> = (0..64u32)
        .map(|i| {
            c.submit(&Request::Put {
                key: format!("bp{i}").into_bytes(),
                value: b"v".to_vec(),
            })
            .unwrap()
        })
        .collect();
    for p in pendings {
        assert!(matches!(p.wait().unwrap(), Response::Ok));
    }
    let obs = server.obs();
    assert_eq!(obs.puts.get(), 64);
    assert!(
        obs.backpressure_waits.get() > 0,
        "a queue of 2 must have filled under 64 pipelined puts"
    );
    assert_eq!(store.map.lock().len(), 64);
    c.close();
    server.shutdown();
}

#[test]
fn shutdown_drains_acked_and_accepted_writes() {
    let store = SlowMapStore::new(Duration::from_millis(1));
    let transport = LoopbackTransport::new();
    let server = KvServer::start(
        vec![store.clone() as Arc<dyn KvStore>],
        transport.clone(),
        ServerConfig {
            shard_queue_cap: 128,
            group_commit_max: 8,
            ..Default::default()
        },
    );
    let c = client(&transport);
    let pendings: Vec<_> = (0..40u32)
        .map(|i| {
            c.submit(&Request::Put {
                key: format!("d{i}").into_bytes(),
                value: b"v".to_vec(),
            })
            .unwrap()
        })
        .collect();
    for p in pendings {
        assert!(matches!(p.wait().unwrap(), Response::Ok));
    }
    server.shutdown();
    // Every acked write survived the drain.
    let map = store.map.lock();
    for i in 0..40u32 {
        assert!(map.contains_key(format!("d{i}").as_bytes()), "d{i} lost");
    }
}

#[test]
fn requests_after_shutdown_fail_cleanly() {
    let (server, transport) = start_loopback(1, ServerConfig::default());
    let c = client(&transport);
    c.put(b"k", b"v").unwrap();
    server.shutdown();
    // The connection was force-closed; the client reports Disconnected
    // rather than hanging.
    assert!(c.put(b"k2", b"v").is_err());
    assert!(
        transport.connect().is_none(),
        "closed transport refuses dials"
    );
}

#[test]
fn tcp_transport_smoke() {
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr();
    let server = KvServer::start(vec![engine_shard()], transport, ServerConfig::default());
    let c = KvClient::connect(TcpTransport::connect(addr).expect("dial"));
    c.put(b"tcp-key", b"tcp-value").unwrap();
    assert_eq!(c.get(b"tcp-key").unwrap(), Some(b"tcp-value".to_vec()));
    let replies = c
        .batch(vec![
            BatchOp::Put {
                key: b"tb".to_vec(),
                value: b"1".to_vec(),
            },
            BatchOp::Get {
                key: b"tb".to_vec(),
            },
        ])
        .unwrap();
    assert!(matches!(&replies[1], BatchReply::Value(v) if v == b"1"));
    c.ping(true).unwrap();
    assert_eq!(server.obs().connections_total.get(), 1);
    c.close();
    server.shutdown();
}

#[test]
fn scan_merges_shards_and_pages_match_one_shot() {
    let (server, transport) = start_loopback(2, ServerConfig::default());
    let c = client(&transport);

    // Populate via batches (keys hash across both shards), then delete a
    // stripe so the wire scan must also suppress tombstones.
    let skey = |i: u32| format!("sk{i:05}").into_bytes();
    let sval = |i: u32| format!("val-{i}").into_bytes();
    let mut expected = std::collections::BTreeMap::new();
    for chunk in (0..300u32).collect::<Vec<_>>().chunks(100) {
        let ops = chunk
            .iter()
            .map(|&i| BatchOp::Put {
                key: skey(i),
                value: sval(i),
            })
            .collect();
        c.batch(ops).unwrap();
    }
    for i in 0..300u32 {
        expected.insert(skey(i), sval(i));
    }
    for i in (0..300u32).step_by(7) {
        c.delete(&skey(i)).unwrap();
        expected.remove(&skey(i));
    }
    let want: Vec<(Vec<u8>, Vec<u8>)> = expected
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    // One-shot unbounded scan: the cross-shard merge in sorted order.
    let (one_shot, more) = c.scan(b"", b"", 10_000, None).unwrap();
    assert!(!more, "300 keys fit one page");
    assert_eq!(one_shot, want, "one-shot scan diverged from the model");

    // Paged with a tiny limit, following continuation cursors: the
    // concatenated pages must be byte-identical to the one-shot scan.
    let mut paged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut resume: Option<Vec<u8>> = None;
    loop {
        let (items, more) = c.scan(b"", b"", 7, resume.as_deref()).unwrap();
        assert!(items.len() <= 7);
        paged.extend(items);
        if !more {
            break;
        }
        resume = Some(paged.last().unwrap().0.clone());
    }
    assert_eq!(paged, one_shot, "paged scan diverged from one-shot");

    // Bounded range with a truncating limit: `more` flags the cut.
    let (bounded, more) = c.scan(&skey(50), &skey(150), 20, None).unwrap();
    let want_bounded: Vec<(Vec<u8>, Vec<u8>)> = expected
        .range(skey(50)..skey(150))
        .take(20)
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(bounded, want_bounded);
    assert!(more, "the range holds more than 20 keys");

    // Inverted and empty ranges come back empty, not as errors.
    let (empty, more) = c.scan(&skey(200), &skey(100), 100, None).unwrap();
    assert!(empty.is_empty() && !more);

    let obs = server.obs();
    assert!(obs.scans.get() >= 3);
    assert!(obs.scan_items.get() >= one_shot.len() as u64);
    c.close();
    server.shutdown();
}

#[test]
fn remote_store_scan_follows_continuations_past_the_page_cap() {
    let (server, transport) = start_loopback(1, ServerConfig::default());
    let c = Arc::new(client(&transport));
    let remote: Arc<dyn KvStore> = Arc::new(RemoteStore::new(c.clone()));

    // More keys than MAX_SCAN_PAGE, so one unbounded RemoteStore scan must
    // transparently follow at least one continuation cursor.
    let n = (cachekv_server::MAX_SCAN_PAGE + 200) as u32;
    let skey = |i: u32| format!("pg{i:06}").into_bytes();
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let ops = chunk
            .iter()
            .map(|&i| BatchOp::Put {
                key: skey(i),
                value: format!("v{i}").into_bytes(),
            })
            .collect();
        c.batch(ops).unwrap();
    }
    let all = remote.scan(b"", b"", usize::MAX).unwrap();
    assert_eq!(all.len(), n as usize);
    for (i, (k, v)) in all.iter().enumerate() {
        assert_eq!(k, &skey(i as u32), "key {i} out of place");
        assert_eq!(v, format!("v{i}").as_bytes());
    }
    assert!(
        server.obs().scans.get() >= 2,
        "a scan past the page cap must take multiple SCAN requests"
    );
    // A limited scan is the same stream truncated.
    let first = remote.scan(b"", b"", 10).unwrap();
    assert_eq!(first, all[..10]);
    server.shutdown();
}

#[test]
fn workload_drivers_run_against_remote_store() {
    let (server, transport) = start_loopback(2, ServerConfig::default());
    let remote: Arc<dyn KvStore> = Arc::new(RemoteStore::new(Arc::new(client(&transport))));
    let key = KeyGen::paper();
    let val = ValueGen::new(64);

    // db_bench-style fill + read, then a mixed YCSB-A phase, all through
    // the wire. The drivers panic on any op error, so clean completion is
    // the assertion.
    fill(&remote, 400, &key, &val);
    let wr = run_ops(&remote, DbBench::FillRandom, 400, 100, 4, &key, &val);
    assert_eq!(wr.ops, 400);
    let rd = run_ops(&remote, DbBench::ReadRandom, 400, 100, 4, &key, &val);
    assert_eq!(rd.ops, 400);
    let mixed = run_ycsb(&remote, YcsbWorkload::A, 400, 100, 4, &key, &val);
    assert_eq!(mixed.ops, 400);

    // quiesce goes over the wire as PING(sync); snapshot_json yields the
    // merged StatsSnapshot.
    remote.quiesce();
    let snap = remote.snapshot_json().expect("remote snapshot");
    let snap = cachekv_obs::StatsSnapshot::parse(&snap).expect("parses");
    assert_eq!(snap.system, "CacheKV-server");
    assert!(snap.memory.counters["server.requests"] > 0);
    assert!(server.obs().pings.get() >= 1);
    server.shutdown();
}
