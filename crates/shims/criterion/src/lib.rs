//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! timing loop instead of criterion's statistical machinery. Good enough to
//! keep `cargo bench` runnable and comparable run-to-run; not a substitute
//! for real criterion numbers.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, name, f);
        self
    }

    /// Called by `criterion_main!` after all groups run; a no-op here.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &full, f);
        self
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(c: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: grow the iteration count until the routine fills the warm-up
    // budget, so the measurement loop runs a sensible number of iterations.
    let mut iters = 1u64;
    let warm_up_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_up_start.elapsed() >= c.warm_up_time || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Measurement: fixed samples of `iters` iterations each, bounded by the
    // measurement budget.
    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    let measure_start = Instant::now();
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if measure_start.elapsed() >= c.measurement_time {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let min = samples.first().copied().unwrap_or(f64::NAN);
    let max = samples.last().copied().unwrap_or(f64::NAN);
    println!("{name:<40} time: [{min:>10.1} ns {median:>10.1} ns {max:>10.1} ns] ({} samples x {iters} iters)", samples.len());
}

/// Declare a group of benchmark targets, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's own `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }
}
