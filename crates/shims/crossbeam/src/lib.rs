//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::channel::{unbounded, bounded, Sender,
//! Receiver}`; this shim provides unbounded and bounded MPMC channels
//! (cloneable on both ends, like crossbeam's) over a mutex-protected
//! deque.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded channel frees a slot.
        space: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half. Cloneable; the channel disconnects when every sender
    /// is dropped.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half. Cloneable (MPMC): each message is delivered to
    /// exactly one receiver.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without requiring T: Debug, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The (bounded) channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    fn chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages
    /// (`cap` is clamped to at least 1; crossbeam's zero-capacity
    /// rendezvous channel is not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        chan(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.chan.cap {
                while q.len() >= cap {
                    if self.chan.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    q = self.chan.space.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }

        /// Send without blocking: on a bounded channel at capacity the
        /// value comes back as [`TrySendError::Full`].
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.chan.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.chan.space.notify_one();
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                self.chan.space.notify_one();
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: wake senders blocked on a full
                // bounded channel so they observe the disconnect.
                self.chan.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn disconnect_unblocks_receiver() {
            let (tx, rx) = unbounded::<u8>();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_each_get_one_message() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = [a, b];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn send_to_dropped_receivers_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            assert!(tx.try_send(1).is_ok());
            assert!(tx.try_send(2).is_ok());
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            assert!(tx.try_send(3).is_ok());
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1u32).unwrap();
            let t = std::thread::spawn(move || tx.send(2).is_ok());
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap());
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn bounded_send_unblocks_on_disconnect() {
            let (tx, rx) = bounded(1);
            tx.send(1u32).unwrap();
            let t = std::thread::spawn(move || tx.send(2).is_err());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(rx);
            assert!(t.join().unwrap(), "send errors once receivers are gone");
        }
    }
}
