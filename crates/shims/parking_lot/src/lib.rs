//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it uses — `Mutex`, `RwLock`, and
//! `Condvar` with parking_lot semantics (no lock poisoning: a panicking
//! holder simply releases the lock) — implemented over `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutex that, unlike `std::sync::Mutex`, never poisons: if a holder
/// panics the lock is simply released, matching parking_lot.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so `Condvar::wait`
/// can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s, parking_lot style
/// (wait takes `&mut guard` instead of consuming it).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock without poisoning, mirroring parking_lot's API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A one-time initialization flag (subset of parking_lot::Once).
pub struct Once {
    inner: std::sync::Once,
    done: AtomicBool,
}

impl Once {
    pub const fn new() -> Self {
        Once {
            inner: std::sync::Once::new(),
            done: AtomicBool::new(false),
        }
    }

    pub fn call_once(&self, f: impl FnOnce()) {
        self.inner.call_once(|| {
            f();
            self.done.store(true, Ordering::Release);
        });
    }

    pub fn state_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
