//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace uses: `Strategy` with `prop_map`,
//! integer-range and tuple strategies, `any::<T>()`, `Just`, weighted
//! `prop_oneof!`, `prop::collection::{vec, btree_map, btree_set, hash_set}`,
//! the `proptest!` test macro with `proptest_config`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are sampled deterministically
//! from a per-test seed; there is no shrinking — a failing case reports its
//! case index and seed so it can be replayed exactly.

pub mod test_runner {
    /// Failure raised by `prop_assert*` inside a generated test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Subset of proptest's run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// Deterministic source of randomness handed to strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            // SplitMix64: full-period, trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Drive one `proptest!`-generated test: `cases` deterministic
    /// iterations, panicking with a replayable case index on failure.
    pub fn run(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = name.bytes().fold(0xCAC4_E5EE_D000_0001u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01B3)
        });
        for i in 0..config.cases {
            let seed = base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::seed(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case {i}/{} (seed {seed:#018x}) failed: {msg}",
                        config.cases
                    )
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`. Unlike upstream
    /// proptest there is no value tree / shrinking: `generate` samples one
    /// value directly from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            })*
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            })*
        };
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                if roll < *w as u64 {
                    return s.generate(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Helper used by `prop_oneof!` so every arm coerces to the same boxed
    /// strategy type via inference.
    pub fn union_arm<V, S>(weight: u32, s: S) -> (u32, Box<dyn Strategy<Value = V>>)
    where
        S: Strategy<Value = V> + 'static,
    {
        (weight, Box::new(s))
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// Half-open size bound for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    fn pick_len(rng: &mut TestRng, size: &SizeRange) -> usize {
        size.lo + rng.below((size.hi - size.lo) as u64) as usize
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, &self.size);
            let mut out = BTreeMap::new();
            // Key collisions shrink the map, so over-draw; a dense key
            // space may still come up short of `target`, which is fine.
            for _ in 0..target * 10 + 16 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, &self.size);
            let mut out = BTreeSet::new();
            for _ in 0..target * 10 + 16 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, &self.size);
            let mut out = HashSet::new();
            for _ in 0..target * 10 + 16 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Weighted (or unweighted) choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Fallible assertion: returns `TestCaseError::Fail` instead of panicking so
/// the runner can attach the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion, mirroring `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@impl $config:expr;
        $(#[test] fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                $crate::test_runner::run(&config, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), prop_rng);)+
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` shorthand module.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::seed(1);
        let s = 10u64..20;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_weights_and_types() {
        let mut rng = TestRng::seed(2);
        let s = prop_oneof![
            3 => (0u8..10).prop_map(|x| x as u32),
            1 => Just(99u32),
        ];
        let mut small = 0;
        let mut just = 0;
        for _ in 0..4000 {
            match s.generate(&mut rng) {
                99 => just += 1,
                v if v < 10 => small += 1,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(
            small > 2 * just,
            "weight 3 arm should dominate: {small} vs {just}"
        );
        assert!(just > 0);
    }

    #[test]
    fn collections_honour_size_ranges() {
        let mut rng = TestRng::seed(3);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let m =
                crate::collection::btree_map(0u32..1000, any::<bool>(), 1..8).generate(&mut rng);
            assert!((1..8).contains(&m.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = crate::collection::vec((0u16..300, any::<u8>()), 1..50);
        let a = s.generate(&mut TestRng::seed(7));
        let b = s.generate(&mut TestRng::seed(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(
            xs in prop::collection::vec(0u32..100, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            for x in &xs {
                prop_assert!(*x < 100, "x = {}", x);
            }
            prop_assert_eq!(flag, flag);
        }
    }
}
